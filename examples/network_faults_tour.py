#!/usr/bin/env python3
"""A tour of the pluggable network layer: loss, partitions, and healing.

The simulator's links are reliable by default, but every scenario can swap in
a :class:`~repro.runtime.spec.NetworkSpec` describing per-link adversity —
message loss, duplication, jitter, per-direction latency penalties, and timed
partitions with heal events.  The scenario builder checks the combination
against the paper's assumption table: adversity that voids the declared
system family's guarantees must be acknowledged with ``.adversarial()``.

This example runs the Figure 9 consensus (HΩ + HΣ, any number of crashes)
through three networks of increasing hostility and shows the headline of the
E9 fault-envelope experiment in miniature: safety never breaks, termination
does — unless the detector stabilises after the partition heals, which makes
every process re-broadcast over the restored links.

Run with:  python examples/network_faults_tour.py
"""

from __future__ import annotations

from repro.runtime import (
    Engine,
    ScenarioValidationError,
    composed,
    lossy,
    partitioned,
    scenario,
)

#: Split processes {0, 1} away from {2, 3, 4} at t=5.
CUT = [[0, 1], [2, 3, 4]]


def build(name: str, *, network=None, stabilization: float = 10.0):
    builder = (
        scenario(name)
        .processes(5)
        .distinct_ids(2)
        .detectors("HOmega", "HSigma", stabilization=stabilization)
        .consensus("homega_hsigma")
        .horizon(400.0)
        .seed(11)
    )
    if network is not None:
        builder = builder.network(network).adversarial()
    return builder.build()


def report(title: str, record) -> None:
    metrics = record.metrics
    decided = "decided" if metrics["decided"] else "STALLED"
    when = f" at t={metrics['decision_time']:.1f}" if metrics["decided"] else ""
    safe = "safe" if metrics["safe"] else "UNSAFE"
    print(f"  {title:<38} {decided}{when}  ({safe})")


def main() -> None:
    engine = Engine()

    print("the assumption table at work:")
    try:
        # Unbounded loss voids HAS termination; the builder refuses it unless
        # the scenario admits it runs outside the paper's guarantees.
        scenario("rejected").processes(5).distinct_ids(2).network(lossy(0.3)).detectors(
            "HOmega", "HSigma", stabilization=10.0
        ).consensus("homega_hsigma").build()
        raise AssertionError("unbounded loss was accepted without .adversarial()")
    except ScenarioValidationError as error:
        print(f"  {error}\n")

    print("figure 9 consensus under increasingly hostile networks:")
    report("reliable links (the default)", engine.run(build("reliable")))
    report(
        "20% loss on every link",
        engine.run(build("lossy", network=lossy(0.2))),
    )
    report(
        "partition {0,1}|{2,3,4}, never heals",
        engine.run(
            build(
                "split",
                network=partitioned({"start": 5.0, "end": None, "groups": CUT}),
            )
        ),
    )

    print("\nhealing is only as good as the traffic that follows it:")
    healed = partitioned({"start": 5.0, "end": 45.0, "groups": CUT})
    report(
        "heals at t=45, detector stable at 10",
        engine.run(build("healed-early-stab", network=healed)),
    )
    report(
        "heals at t=45, detector stable at 60",
        engine.run(build("healed-late-stab", network=healed, stabilization=60.0)),
    )

    print("\ncomposition: loss and a healing partition together")
    record = engine.run(
        build(
            "storm",
            network=composed(lossy(0.1), healed),
            stabilization=60.0,
        )
    )
    report("10% loss + healing partition", record)
    print(
        f"\n  every run above stayed safe; only termination is negotiable.\n"
        f"  (specs serialize too: network section = "
        f"{record.config['network']})"
    )


if __name__ == "__main__":
    main()
