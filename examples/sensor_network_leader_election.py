#!/usr/bin/env python3
"""Sensor network leader election with shared identifiers (Figure 6, no oracle).

The paper motivates homonymy with sensor networks: guaranteeing unique
identifiers across a fleet of cheap motes is often impossible, so several
motes end up sharing an identifier (e.g. a hardware batch number).  This
example runs the paper's Figure 6 algorithm — the ◇HP / HΩ implementation for
partially synchronous systems — on such a fleet:

* 9 motes drawn from 3 hardware batches (so each identifier is shared),
* two motes die during the run (battery failure),
* links become timely only after an unknown stabilization time (GST).

The output shows each mote's elected leader identifier and multiplicity
converging to the smallest surviving batch identifier, with the exact number
of surviving motes of that batch — which is all that HΩ promises, and exactly
what the consensus layer of the paper needs.

Run with:  python examples/sensor_network_leader_election.py
"""

from __future__ import annotations

from repro.algorithms import OhpPollingProgram
from repro.detectors import check_diamond_hp, check_homega_election
from repro.detectors.base import OutputKeys
from repro.membership import random_identities
from repro.sim import CrashSchedule, PartiallySynchronousTiming, Simulation, build_system
from repro.sim.failures import FailurePattern

KEYS = OutputKeys()


def main() -> None:
    # A fleet of 9 motes whose identifiers are drawn from 3 hardware batches.
    fleet = random_identities(9, domain_size=3, seed=7, prefix="batch-")
    print("fleet:", fleet.describe())
    for process in fleet.processes:
        print(f"  mote {process.index}: identifier {fleet.identity_of(process)!r}")

    # Two motes die mid-run.
    victims = {fleet.processes[2]: 18.0, fleet.processes[5]: 26.0}
    crash_schedule = CrashSchedule.at_times(victims)
    print("\nbattery failures:", {p.index: t for p, t in victims.items()})

    # Partially synchronous network: GST and δ exist but are unknown to motes.
    timing = PartiallySynchronousTiming(
        gst=15.0, delta=1.0, min_latency=0.1, pre_gst_loss=0.2, pre_gst_max_latency=20.0
    )
    # A gentler timeout increment keeps the adaptive timeout from overshooting
    # when many pre-GST replies arrive late at once (the paper's +1-per-message
    # rule is the default; the increment size is an implementation knob).
    system = build_system(
        membership=fleet,
        timing=timing,
        program_factory=lambda pid, identity: OhpPollingProgram(timeout_increment=0.25),
        crash_schedule=crash_schedule,
        seed=11,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=240.0)
    pattern = FailurePattern(fleet, crash_schedule)

    print("\nfinal leader view of every surviving mote:")
    for process in sorted(pattern.correct):
        leader = trace.final_value(process, KEYS.H_LEADER)
        multiplicity = trace.final_value(process, KEYS.H_MULTIPLICITY)
        print(f"  mote {process.index}: leader batch {leader!r} with {multiplicity} surviving mote(s)")

    hp_result = check_diamond_hp(trace, pattern)
    homega_result = check_homega_election(trace, pattern)
    print("\n◇HP convergence:", "ok" if hp_result.ok else f"FAILED {hp_result.violations}")
    print("HΩ election    :", "ok" if homega_result.ok else f"FAILED {homega_result.violations}")
    if hp_result.stabilization_time is not None:
        print(f"converged at t={hp_result.stabilization_time:.1f} "
              f"(GST was 15.0, last crash at 26.0)")


if __name__ == "__main__":
    main()
