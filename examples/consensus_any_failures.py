#!/usr/bin/env python3
"""Consensus that survives a majority of crashes (Figure 9: HΩ + HΣ).

Figure 8 needs a majority of correct processes; Figure 9 replaces the counting
quorums by the HΣ failure detector and tolerates any number of crashes without
even knowing how many processes exist.  This example declares a 7-process
homonymous system in which 4 processes — a majority — crash, and shows that
the survivors still decide a single proposed value.

It also shows the requirement table at work: asking the *majority-based*
Figure 8 algorithm to run the same crash schedule is rejected at build time,
before any simulation happens.

Run with:  python examples/consensus_any_failures.py
"""

from __future__ import annotations

from repro.runtime import Engine, ScenarioValidationError, cascading, scenario


def main() -> None:
    # 7 processes in three homonymy groups (3 + 2 + 2 share identifiers);
    # four of them crash one after the other — a majority is gone by t=26.
    build = lambda consensus: (
        scenario("any-failures")
        .processes(7)
        .homonyms([3, 2, 2])
        .crashes(cascading(4, first_at=8.0, interval=6.0))
        .detectors("HOmega", "HSigma", stabilization=30.0)
        .consensus(consensus)
        .horizon(600.0)
        .seed(13)
        .build()
    )

    # The paper's assumption table, enforced: Figure 8 cannot take this.
    try:
        build("homega_majority")
        raise AssertionError("the majority algorithm accepted 4 of 7 crashes")
    except ScenarioValidationError as error:
        print("figure 8 rejected, as the paper requires:")
        print(f"  {error}\n")

    # Figure 9 can: HΣ quorums replace majority counting.
    spec = build("homega_hsigma")
    membership = spec.membership.build()
    print("membership:", membership.describe())
    print("crashes   : 4 of 7, cascading from t=8 every 6 time units")

    record = Engine().run(spec)
    metrics = record.metrics
    print("\noutcome of the survivors:")
    print(f"  validity+agreement : {'ok' if metrics['safe'] else 'VIOLATED'}")
    print(f"  termination        : {'ok' if metrics['decided'] else 'VIOLATED'}")
    print(f"  decided in         : {metrics['rounds']} round(s), "
          f"last decision at t={metrics['decision_time']:.1f}")
    print(f"  messages           : {metrics['broadcasts']} broadcasts, "
          f"{metrics['message_copies']} link copies")

    # The same scenario across 10 seeds, two worker processes.
    records = Engine(jobs=2).run_many(spec.with_seed(seed) for seed in range(10))
    decided = sum(1 for r in records if r.metrics["decided"])
    safe = all(r.metrics["safe"] for r in records)
    print(f"\nsweep over seeds 0..9: {decided}/10 decided, "
          f"all safe: {'ok' if safe else 'VIOLATED'}")


if __name__ == "__main__":
    main()
