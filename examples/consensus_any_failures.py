#!/usr/bin/env python3
"""Consensus that survives a majority of crashes (Figure 9: HΩ + HΣ).

Figure 8 needs a majority of correct processes; Figure 9 replaces the counting
quorums by the HΣ failure detector and tolerates any number of crashes without
even knowing how many processes exist.  This example runs a 7-process
homonymous system in which 4 processes — a majority — crash, and shows that
the survivors still decide a single proposed value.

Run with:  python examples/consensus_any_failures.py
"""

from __future__ import annotations

from repro.consensus import HOmegaHSigmaConsensus, validate_consensus
from repro.detectors import HOmegaOracle, HSigmaOracle
from repro.membership import grouped_identities
from repro.sim import AsynchronousTiming, Simulation, build_system
from repro.sim.failures import FailurePattern
from repro.workloads import cascading_crashes


def main() -> None:
    # 7 processes in three homonymy groups (3 + 2 + 2 share identifiers).
    membership = grouped_identities([3, 2, 2], prefix="site-")
    print("membership:", membership.describe())

    # Four processes crash one after the other: a majority is gone by t=26.
    crash_schedule = cascading_crashes(membership, 4, first_at=8.0, interval=6.0)
    print("crashes:", {event.process.index: event.time for event in crash_schedule.events})

    proposals = {process: f"proposal-{process.index}" for process in membership.processes}
    detectors = {
        "HOmega": lambda services: HOmegaOracle(
            services, stabilization_time=30.0, noise_period=5.0
        ),
        "HSigma": lambda services: HSigmaOracle(services, stabilization_time=30.0),
    }
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=2.0),
        program_factory=lambda pid, identity: HOmegaHSigmaConsensus(proposals[pid]),
        crash_schedule=crash_schedule,
        detectors=detectors,
        seed=13,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=600.0, stop_when=lambda sim: sim.all_correct_decided())

    pattern = FailurePattern(membership, crash_schedule)
    verdict = validate_consensus(trace, pattern, proposals)
    print(f"\ncorrect processes: {sorted(p.index for p in pattern.correct)} "
          f"(only {len(pattern.correct)} of {membership.size} survive)")
    print("decisions of the survivors:")
    for process in sorted(pattern.correct):
        decision = trace.decision_of(process)
        print(f"  process {process.index} decided {decision.value!r} at t={decision.time:.1f}")
    print()
    print(f"validity    : {'ok' if verdict.validity_ok else 'VIOLATED'}")
    print(f"agreement   : {'ok' if verdict.agreement_ok else 'VIOLATED'}")
    print(f"termination : {'ok' if verdict.termination_ok else 'VIOLATED'}")
    print(f"messages    : {trace.broadcast_invocations} broadcasts, "
          f"{trace.message_copies_sent} link copies")


if __name__ == "__main__":
    main()
