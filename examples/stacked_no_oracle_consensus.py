#!/usr/bin/env python3
"""End-to-end consensus with no oracle: Figure 6 stacked under Figure 8.

The paper's headline combination: HΩ — unlike its anonymous counterpart AΩ —
is implementable under partial synchrony, so stacking the Figure 6
implementation underneath the Figure 8 consensus algorithm yields consensus in
a homonymous, partially synchronous system with a majority of correct
processes and *no failure-detector oracle anywhere*: everything below the
application is ordinary message passing.

Run with:  python examples/stacked_no_oracle_consensus.py
"""

from __future__ import annotations

from repro.algorithms import OhpPollingProgram
from repro.consensus import HOmegaMajorityConsensus, validate_consensus
from repro.membership import grouped_identities
from repro.sim import (
    CompositeProgram,
    CrashSchedule,
    PartiallySynchronousTiming,
    Simulation,
    build_system,
)
from repro.sim.failures import FailurePattern


def main() -> None:
    membership = grouped_identities([2, 2, 1], prefix="replica-")
    proposals = {process: f"command-{process.index}" for process in membership.processes}
    crash_schedule = CrashSchedule.at_times({membership.processes[3]: 14.0})
    print("membership:", membership.describe())
    print("crash: process 3 at t=14")

    def factory(pid, identity):
        # Each process runs the Figure 6 polling detector and the Figure 8
        # consensus algorithm side by side; the consensus layer queries the
        # detector through the locally attached "HOmega" view.
        detector = OhpPollingProgram(detector_name="HOmega", record_outputs=False)
        consensus = HOmegaMajorityConsensus(proposals[pid], n=membership.size)
        return CompositeProgram(detector, consensus)

    # Eventually timely links: before GST=20 messages may be arbitrarily slow
    # (but are not lost — Figure 8 sends each message exactly once).
    timing = PartiallySynchronousTiming(
        gst=20.0, delta=1.0, min_latency=0.1, pre_gst_loss=0.0, pre_gst_max_latency=60.0
    )
    system = build_system(
        membership=membership,
        timing=timing,
        program_factory=factory,
        crash_schedule=crash_schedule,
        seed=19,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=600.0, stop_when=lambda sim: sim.all_correct_decided())

    pattern = FailurePattern(membership, crash_schedule)
    verdict = validate_consensus(trace, pattern, proposals)
    print("\ndecisions:")
    for process, decision in sorted(trace.decisions.items()):
        print(f"  process {process.index} decided {decision.value!r} at t={decision.time:.1f}")
    print()
    print(f"validity    : {'ok' if verdict.validity_ok else 'VIOLATED'}")
    print(f"agreement   : {'ok' if verdict.agreement_ok else 'VIOLATED'}")
    print(f"termination : {'ok' if verdict.termination_ok else 'VIOLATED'}")
    print(f"GST was 20.0; last decision at t={verdict.last_decision_time:.1f}")
    print(f"total message cost: {trace.broadcast_invocations} broadcasts "
          f"({trace.message_copies_sent} link copies), "
          f"including the detector's polling traffic")


if __name__ == "__main__":
    main()
