#!/usr/bin/env python3
"""Quickstart: consensus among homonymous processes in four short steps.

1. Build a homonymous membership (five processes, two of which share the
   identifier ``"A"`` — nobody knows the membership in advance).
2. Pick a crash schedule (one process fails mid-run).
3. Enrich the asynchronous system with an HΩ failure-detector oracle and run
   the paper's Figure 8 consensus algorithm.
4. Validate the run: validity, agreement, and termination must all hold.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.consensus import HOmegaMajorityConsensus, validate_consensus
from repro.detectors import HOmegaOracle
from repro.membership import Membership
from repro.sim import AsynchronousTiming, CrashSchedule, Simulation, build_system
from repro.sim.failures import FailurePattern


def main() -> None:
    # Step 1 — a homonymous membership: ids A, A, B, C, C.
    membership = Membership.of(["A", "A", "B", "C", "C"])
    print("membership:", membership.describe())
    print("I(Π) =", sorted(membership.identity_multiset()))

    # Step 2 — the process with the largest index crashes at time 12.
    victim = membership.processes[-1]
    crash_schedule = CrashSchedule.at_times({victim: 12.0})
    print(f"crash schedule: {victim!r} crashes at t=12")

    # Step 3 — every process proposes its own value and runs Figure 8,
    # querying an HΩ oracle that stabilises at t=20.
    proposals = {process: f"value-from-{process.index}" for process in membership.processes}
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=2.0),
        program_factory=lambda pid, identity: HOmegaMajorityConsensus(
            proposals[pid], n=membership.size
        ),
        crash_schedule=crash_schedule,
        detectors={
            "HOmega": lambda services: HOmegaOracle(
                services, stabilization_time=20.0, noise_period=5.0
            )
        },
        seed=42,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=400.0, stop_when=lambda sim: sim.all_correct_decided())

    # Step 4 — validate and report.
    pattern = FailurePattern(membership, crash_schedule)
    verdict = validate_consensus(trace, pattern, proposals)
    print()
    print("decisions:")
    for process, decision in sorted(trace.decisions.items()):
        identity = membership.identity_of(process)
        print(f"  {process!r} (id {identity!r}) decided {decision.value!r} at t={decision.time:.1f}")
    print()
    print(f"validity    : {'ok' if verdict.validity_ok else 'VIOLATED'}")
    print(f"agreement   : {'ok' if verdict.agreement_ok else 'VIOLATED'}")
    print(f"termination : {'ok' if verdict.termination_ok else 'VIOLATED'}")
    print(f"decided in  : {verdict.max_decision_round} round(s), "
          f"last decision at t={verdict.last_decision_time:.1f}")


if __name__ == "__main__":
    main()
