#!/usr/bin/env python3
"""Quickstart: consensus among homonymous processes in four short steps.

1. *Describe* the run with the fluent scenario builder: a homonymous
   membership (five processes, ids A, A, B, C, C), a crash at t=12, an HΩ
   failure-detector oracle, and the paper's Figure 8 consensus algorithm.
   The builder validates the combination against the paper's requirement
   table (try asking Figure 8 to survive 3 of 5 crashes — it refuses).
2. The result is *data*: a ScenarioSpec that round-trips through JSON, so
   runs can be logged, diffed, and shipped to worker processes.
3. *Execute* it through the Engine and read the structured RunRecord.
4. *Sweep* it: the same spec across many seeds, fanned out over two cores —
   identical rows to a serial run, just faster.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.runtime import Engine, ScenarioSpec, crashes_at, scenario

def main() -> None:
    # Step 1 — declare the scenario (membership, crashes, detectors, algorithm).
    spec = (
        scenario("quickstart")
        .identities(["A", "A", "B", "C", "C"])
        .crashes(crashes_at({4: 12.0}))
        .detectors("HOmega", stabilization=20.0)
        .consensus("homega_majority")
        .horizon(400.0)
        .seed(42)
        .build()
    )
    membership = spec.membership.build()
    print("membership:", membership.describe())
    print("I(Π) =", sorted(membership.identity_multiset()))
    print("crash schedule: process 4 crashes at t=12")

    # Step 2 — the spec is serializable data and round-trips exactly.
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    print("\nspec round-trips through JSON:", len(spec.to_json()), "bytes")

    # Step 3 — run it and read the structured record.
    record = Engine().run(spec)
    print("\none run (seed 42):")
    print(f"  decided     : {'ok' if record.metrics['decided'] else 'VIOLATED'}")
    print(f"  safe        : {'ok' if record.metrics['safe'] else 'VIOLATED'}")
    print(f"  decided in  : {record.metrics['rounds']} round(s), "
          f"last decision at t={record.metrics['decision_time']:.1f}")
    print(f"  cost        : {record.metrics['broadcasts']} broadcasts, "
          f"{record.metrics['message_copies']} link copies")

    # Step 4 — sweep the same scenario over 8 seeds on two cores.
    records = Engine(jobs=2).run_many(spec.with_seed(s) for s in range(8))
    decided = sum(1 for r in records if r.metrics["decided"])
    safe = all(r.metrics["safe"] for r in records)
    times = [
        r.metrics["decision_time"]
        for r in records
        if r.metrics["decision_time"] is not None
    ]
    mean_time = f"t={sum(times) / len(times):.1f}" if times else "n/a (none decided)"
    print(f"\nparallel sweep over seeds 0..7: {decided}/8 decided, "
          f"all safe: {'ok' if safe else 'VIOLATED'}, "
          f"mean decision time {mean_time}")


if __name__ == "__main__":
    main()
