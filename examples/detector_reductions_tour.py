#!/usr/bin/env python3
"""A tour of the failure-detector reductions (Figure 5 of the paper).

The paper relates its new homonymous detector classes to the classical and
anonymous ones through explicit transformations.  This example:

1. prints the relation graph (who can be obtained from whom, and by which
   theorem),
2. runs two of the transformations end-to-end over a simulated system —
   Σ → HΣ without membership knowledge (Figure 2) and AP → HΣ (Lemma 3) —
   and checks the emulated detector against the HΣ class properties,
3. confirms Corollary 1: Σ, HΣ, and AΣ are equivalent when identifiers are
   unique.

Run with:  python examples/detector_reductions_tour.py
"""

from __future__ import annotations

from repro.detectors import APOracle, SigmaOracle, check_hsigma
from repro.detectors.classes import DetectorClass
from repro.membership import anonymous_identities, unique_identities
from repro.reductions import (
    APToHSigma,
    SigmaToHSigmaUnknownMembership,
    equivalent_classes,
    is_stronger,
    paper_relations,
)
from repro.sim import AsynchronousTiming, CrashSchedule, Simulation, build_system
from repro.sim.failures import FailurePattern


def run_emulation(membership, program_factory, detectors, *, seed):
    crash_schedule = CrashSchedule.at_times({membership.processes[1]: 10.0})
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=1.5),
        program_factory=program_factory,
        crash_schedule=crash_schedule,
        detectors=detectors,
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=90.0)
    return check_hsigma(trace, FailurePattern(membership, crash_schedule))


def main() -> None:
    print("Relations proven or recalled by the paper (Figure 5):")
    for relation in paper_relations():
        arrow = f"{relation.source.value:>4} → {relation.target.value:<4}"
        print(f"  {arrow}  [{relation.model:^4}]  {relation.established_by}")

    print("\nReachability questions:")
    print("  AP strong enough for HΩ in anonymous systems?   ",
          is_stronger(DetectorClass.AP, DetectorClass.H_OMEGA, model="AAS"))
    print("  AΣ strong enough for HΩ in anonymous systems?   ",
          is_stronger(DetectorClass.A_SIGMA, DetectorClass.H_OMEGA, model="AAS"))

    print("\nCorollary 1 — equivalence classes with unique identifiers:")
    for group in equivalent_classes(model="AS"):
        print("  {" + ", ".join(sorted(c.value for c in group)) + "}")

    print("\nRunning Figure 2 (Σ → HΣ, membership unknown) on a 4-process system …")
    result = run_emulation(
        unique_identities(4),
        lambda pid, identity: SigmaToHSigmaUnknownMembership(period=1.0),
        {"Sigma": lambda s: SigmaOracle(s, stabilization_time=15.0)},
        seed=5,
    )
    print("  emulated HΣ satisfies validity/monotonicity/liveness/safety:",
          "ok" if result.ok else f"FAILED {result.violations}")

    print("Running Lemma 3 (AP → HΣ) on a 4-process anonymous system …")
    result = run_emulation(
        anonymous_identities(4),
        lambda pid, identity: APToHSigma(period=1.0),
        {"AP": lambda s: APOracle(s, stabilization_time=15.0)},
        seed=6,
    )
    print("  emulated HΣ satisfies validity/monotonicity/liveness/safety:",
          "ok" if result.ok else f"FAILED {result.violations}")


if __name__ == "__main__":
    main()
