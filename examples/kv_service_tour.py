#!/usr/bin/env python3
"""The replicated KV service: consensus serving real client traffic.

This is the grown-up version of ``replicated_log.py``: instead of three
hand-fed slots, a homonymous replica group runs ``repro.workloads.kv`` — a
replicated log driven by one consensus instance per slot, serving GET/SET/
CAS/DEL traffic from simulated closed-loop clients.  Each run's client
history is certified by the offline linearizability checker, and the
client-visible metrics (latency percentiles, throughput, staleness) come
back through the ordinary ``RunRecord``.

The tour runs the same service three ways: fault-free, with a replica crash
mid-run, and with lossy links (where the paper's retransmission-free
algorithms let requests starve — completion drops, correctness doesn't).

Run with:  python examples/kv_service_tour.py
"""

from __future__ import annotations

from repro.runtime import Engine, lossy, minority, scenario


def build_spec(fault: str, seed: int):
    """One KV scenario: 5 replicas over 3 identifiers, 3 zipf-skewed clients."""
    build = (
        scenario(f"kv-tour-{fault}")
        .homonyms([2, 2, 1])
        .detectors("HOmega", stabilization=10.0)
        .kv(clients=3, ops_per_client=4, skew="zipf", think_time=1.0, key_space=6)
        .horizon(600.0)
        .seed(seed)
    )
    if fault == "crash":
        build = build.crashes(minority(at=12.0, count=1))
    elif fault == "lossy":
        build = build.network(lossy(0.05)).adversarial()
    return build.build()


def main() -> None:
    engine = Engine()
    print("replicated KV service: 5 replicas (ids shared 2/2/1), 3 clients\n")
    for fault in ("none", "crash", "lossy"):
        record = engine.run(build_spec(fault, seed=7))
        metrics = record.metrics
        certified = "certified" if metrics["linearizable"] else "VIOLATED"
        print(f"fault={fault:<6} digest={record.digest}")
        print(
            f"  completed {metrics['ops_completed']}/{metrics['ops_issued']} ops, "
            f"p50={metrics['latency_p50']:.1f} p99={metrics['latency_p99']:.1f}, "
            f"{metrics['slots_committed']} slots committed"
        )
        print(f"  linearizability: {certified}\n")


if __name__ == "__main__":
    main()
