#!/usr/bin/env python3
"""A tiny replicated log built on repeated homonymous consensus.

The classic application of consensus is state-machine replication: replicas
agree on the command to place in each log slot, in order.  This example builds
a three-slot replicated log on top of the paper's Figure 8 algorithm in a
homonymous system — each slot is one consensus instance whose proposals are
the commands the replicas happen to have received from clients.

It demonstrates how a downstream user composes the library: memberships and
crash schedules from :mod:`repro.workloads`, one
:class:`~repro.workloads.scenarios.ConsensusScenario` per slot, and the
validator to certify every slot.

Run with:  python examples/replicated_log.py
"""

from __future__ import annotations

from repro.consensus import homega_majority_factory
from repro.membership import grouped_identities
from repro.workloads import minority_crashes, no_crashes
from repro.workloads.scenarios import ConsensusScenario


def agree_on_slot(membership, slot, client_commands, crash_schedule, seed):
    """Run one consensus instance for log slot ``slot`` and return its outcome."""
    proposals = {
        process: client_commands[process.index % len(client_commands)]
        for process in membership.processes
    }
    scenario = ConsensusScenario(
        membership=membership,
        # A named factory (not a lambda): picklable, and RunCache-eligible.
        consensus_factory=homega_majority_factory(n=membership.size),
        proposals=proposals,
        crash_schedule=crash_schedule,
        detector_stabilization=10.0,
        horizon=400.0,
        seed=seed,
        name=f"log-slot-{slot}",
    )
    trace, pattern, verdict = scenario.run()
    return proposals, verdict


def main() -> None:
    # Five replicas; two pairs share an identifier (e.g. cloned VM images).
    membership = grouped_identities([2, 2, 1], prefix="replica-")
    print("replica group:", membership.describe())

    # Commands submitted by clients; different replicas see different fronts
    # of the client stream, hence the differing proposals per slot.
    client_stream = [
        ["SET x=1", "SET x=2", "DEL y"],
        ["SET y=7", "SET x=2"],
        ["CAS z 0->4", "DEL y", "SET x=1"],
    ]

    log: list[str] = []
    for slot, commands in enumerate(client_stream):
        # From slot 1 on, one replica is down (a minority — Figure 8's limit).
        crash_schedule = no_crashes() if slot == 0 else minority_crashes(
            membership, at=5.0, count=1
        )
        proposals, verdict = agree_on_slot(
            membership, slot, commands, crash_schedule, seed=100 + slot
        )
        chosen = next(iter(set(verdict.decided_values.values())))
        log.append(chosen)
        status = "ok" if verdict.ok else f"PROBLEM: {verdict.violations}"
        print(f"\nslot {slot}: proposals {sorted(set(proposals.values()))}")
        print(f"  decided {chosen!r} in {verdict.max_decision_round} round(s) "
              f"[validity+agreement+termination: {status}]")

    print("\nfinal replicated log (identical on every live replica):")
    for slot, command in enumerate(log):
        print(f"  [{slot}] {command}")


if __name__ == "__main__":
    main()
