"""E3 benchmark — reductions between failure-detector classes (Figure 5)."""

from repro.experiments import run_e3


def test_e3_reductions(benchmark, print_result):
    result = benchmark.pedantic(
        run_e3, kwargs={"quick": True, "seed": 0}, iterations=1, rounds=3
    )
    print_result(result)
    assert result.summary["all_reductions_ok"]
    assert result.summary["corollary_1_sigma_hsigma_asigma_equivalent"]
    assert result.summary["ap_reaches_homega_in_aas"]
