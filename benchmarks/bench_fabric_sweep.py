"""The sweep fabric under the stopwatch: coordinator fan-out and early stopping.

Two questions, one row each in ``BENCH_core.json``:

* ``fabric_sweep_e1_workers3`` — what does full process isolation cost?  The
  quick E1 plan (13 runs) through the coordinator with 3 worker
  *subprocesses*, fresh state directory, no cache — so every round pays
  worker spawn, library import, framing, and journaling.  This is a
  wall-clock row (``kind: wallclock``, 150% budget like the transport rows):
  it measures OS process churn, not simulator compute, and jitters
  accordingly.  The determinism gate for this path is
  ``digest_manifest.py --fabric``, not this row.
* ``fabric_adaptive_e1`` vs ``fabric_fixed_grid_e1`` — what does
  convergence-based early stopping save?  The same three E1 cells swept with
  a fixed 16-seeds-per-cell grid and with :func:`repro.fabric.adaptive_sweep`
  (stop a cell when the 95% CI half-width on ``convergence_time`` is within
  10% of its mean).  The adaptive row records ``total_runs`` /
  ``fixed_grid_runs`` / ``runs_saved`` into the baseline, so "early stopping
  demonstrably saves work" is a committed number, not a claim.
"""

import tempfile

from repro.experiments.e1_ohp_convergence import _run_one as run_one_e1
from repro.fabric import adaptive_sweep, plan_experiments
from repro.fabric.coordinator import Coordinator
from repro.runtime import Engine

#: The quick E1 experiment executes 12 sweep configs plus 1 ablation run.
E1_QUICK_RUNS = 13

#: The adaptive-vs-fixed comparison grid: E1's quick cells at gst=10.
CELLS = [
    {"n": 4, "distinct_ids": d, "gst": 10.0, "delta": 1.0, "fixed_timeout": False}
    for d in (1, 2, 4)
]
MAX_SEEDS = 16


def _fabric_quick_e1(plan):
    with tempfile.TemporaryDirectory(prefix="bench-fabric-") as state_dir:
        result = Coordinator(plan, state_dir=state_dir, workers=3).run()
    assert len(result.results) == E1_QUICK_RUNS
    assert result.digests_complete
    return result


def test_fabric_sweep_e1_workers3(benchmark):
    """Quick E1 through the coordinator: plan once, spawn+execute per round."""
    plan = plan_experiments(["E1"], quick=True, seed=0)
    benchmark.pedantic(lambda: _fabric_quick_e1(plan), rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info["bench_core_key"] = "fabric_sweep_e1_workers3"
    benchmark.extra_info["runs_per_round"] = E1_QUICK_RUNS
    benchmark.extra_info["workers"] = 3
    benchmark.extra_info["kind"] = "wallclock"
    benchmark.extra_info["max_regression_pct"] = 150


def _fixed_grid():
    configs = [
        {**cell, "seed": index * MAX_SEEDS + k}
        for index, cell in enumerate(CELLS)
        for k in range(MAX_SEEDS)
    ]
    rows = Engine().sweep(run_one_e1, configs)
    assert len(rows) == len(CELLS) * MAX_SEEDS
    return rows


def _adaptive():
    report = adaptive_sweep(
        run_one_e1,
        CELLS,
        metric="convergence_time",
        max_seeds_per_cell=MAX_SEEDS,
        rel_tol=0.10,
    )
    assert report.all_converged
    assert report.total_runs < report.fixed_grid_runs
    for cell in report.cells:
        assert abs(cell.median - cell.mean) <= cell.half_width
    return report


def test_fabric_fixed_grid_e1(benchmark):
    """The baseline the adaptive allocator competes against: the full grid."""
    benchmark.pedantic(_fixed_grid, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info["bench_core_key"] = "fabric_fixed_grid_e1"
    benchmark.extra_info["runs_per_round"] = len(CELLS) * MAX_SEEDS


def test_fabric_adaptive_e1(benchmark):
    """Early stopping: same cells, converged CIs, a fraction of the seeds."""
    report = benchmark.pedantic(_adaptive, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info["bench_core_key"] = "fabric_adaptive_e1"
    benchmark.extra_info["runs_per_round"] = report.total_runs
    benchmark.extra_info["total_runs"] = report.total_runs
    benchmark.extra_info["fixed_grid_runs"] = report.fixed_grid_runs
    benchmark.extra_info["runs_saved"] = report.runs_saved
