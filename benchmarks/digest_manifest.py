"""Determinism-digest manifest over the quick E1–E9 sweeps.

Runs every experiment in quick mode (serially, in-process) while capturing the
determinism digest of each underlying simulation, then prints one folded
64-bit digest per experiment plus a manifest digest over all of them.

Two builds of the simulator that print the same manifest dispatched exactly
the same events, in the same order, for every run of every quick experiment —
which is the equivalence gate hot-path refactors must pass::

    PYTHONPATH=src python benchmarks/digest_manifest.py            # print
    PYTHONPATH=src python benchmarks/digest_manifest.py -o m.json  # save JSON
    PYTHONPATH=src python benchmarks/digest_manifest.py --check m.json

``--check`` exits non-zero on any mismatch against a previously saved
manifest, so a refactor branch can assert equivalence mechanically.
"""

from __future__ import annotations

import argparse
import json
import sys

import repro.sim.scheduler as scheduler_module
from repro.runtime import Engine
from repro.runtime.registry import EXPERIMENTS
from repro.experiments import ALL_EXPERIMENTS  # noqa: F401  (registers E1-E9)

_DIGEST_MASK = 0xFFFFFFFFFFFFFFFF
_FNV_PRIME = 1099511628211


def _fold(digests: list[int]) -> int:
    folded = 0
    for digest in digests:
        folded = ((folded * _FNV_PRIME) ^ digest) & _DIGEST_MASK
    return folded


def collect_manifest(seed: int = 0) -> dict[str, str]:
    """Run every experiment quick and return ``{experiment: folded digest}``."""
    manifest: dict[str, str] = {}
    original_run = scheduler_module.Simulation.run
    captured: list[int] = []

    def capturing_run(self, **kwargs):
        trace = original_run(self, **kwargs)
        captured.append(self.queue.digest)
        return trace

    scheduler_module.Simulation.run = capturing_run
    try:
        for name in EXPERIMENTS.names():
            captured.clear()
            runner = EXPERIMENTS.resolve(name)
            runner(quick=True, seed=seed, engine=Engine())
            manifest[name] = f"{_fold(captured):016x}"
    finally:
        scheduler_module.Simulation.run = original_run
    manifest["ALL"] = f"{_fold([int(v, 16) for k, v in sorted(manifest.items())]):016x}"
    return manifest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", metavar="FILE", help="write the manifest as JSON")
    parser.add_argument(
        "--check", metavar="FILE", help="compare against a saved manifest; non-zero on mismatch"
    )
    args = parser.parse_args(argv)

    manifest = collect_manifest(seed=args.seed)
    for name, digest in manifest.items():
        print(f"{name:>4}  {digest}")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"manifest written to {args.output}")

    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            expected = json.load(handle)
        mismatches = {
            name: (expected.get(name), digest)
            for name, digest in manifest.items()
            if expected.get(name) != digest
        }
        if mismatches:
            for name, (want, got) in mismatches.items():
                print(f"MISMATCH {name}: expected {want}, got {got}", file=sys.stderr)
            return 1
        print(f"manifest matches {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
