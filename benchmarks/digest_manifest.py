"""Determinism-digest manifest over the quick deterministic experiments (E1–E12).

Runs every experiment in quick mode while capturing the determinism digest of
each underlying simulation, then prints one folded 64-bit digest per
experiment plus two manifest digests: ``ALL`` folds the historical E1–E9
core (frozen so manifests saved before the KV workload landed keep
matching), and ``FULL`` folds every registered deterministic experiment
(E10, E12, and whatever lands next fold in here without moving ``ALL``).

Two builds of the simulator that print the same manifest dispatched exactly
the same events, in the same order, for every run of every quick experiment —
which is the equivalence gate hot-path refactors must pass.  The same gate
covers the execution stack: ``--jobs``/``--pool`` route the sweeps through
the warm (persistent) or cold (per-call) process pool, and the manifest must
be bit-identical to the serial one::

    PYTHONPATH=src python benchmarks/digest_manifest.py            # serial
    PYTHONPATH=src python benchmarks/digest_manifest.py -o m.json  # save JSON
    PYTHONPATH=src python benchmarks/digest_manifest.py --jobs 4 --pool warm --check m.json
    PYTHONPATH=src python benchmarks/digest_manifest.py --jobs 4 --pool cold --check m.json
    PYTHONPATH=src python benchmarks/digest_manifest.py --fabric 3 --check m.json

``--check`` exits non-zero on any mismatch against a previously saved
manifest, so a refactor branch can assert equivalence mechanically.

Capture mechanics: serially, ``Simulation.run`` is wrapped in-process (the
historical mechanism, so manifests stay comparable across PRs).  Through a
pool, a parent-side wrap never reaches the ``spawn``-started workers, so the
dispatched function is wrapped with
:func:`repro.runtime.run_with_digest_capture` instead — each worker returns
its runs' digests alongside the result and they are folded in input order,
which equals the serial execution order.
"""

from __future__ import annotations

import argparse
import json
import sys

import repro.sim.scheduler as scheduler_module
from repro.fabric.digests import CORE_EXPERIMENTS, fold_digests as _fold, fold_named as _fold_named
from repro.runtime import Engine, executor_for, run_with_digest_capture
from repro.runtime.registry import EXPERIMENTS
# Only ALL_EXPERIMENTS (the deterministic E1-E10) is folded: wall-clock
# experiments (E11's real backend) are registered too but have no stable
# digest, so the manifests iterate this dict, not EXPERIMENTS.names().
from repro.experiments import ALL_EXPERIMENTS


class _DigestCapturingExecutor:
    """Wrap an executor so worker-side digests land in ``sink``, in input order."""

    def __init__(self, inner, sink: list[int]) -> None:
        self._inner = inner
        self._sink = sink
        self.jobs = inner.jobs

    def imap(self, fn, items):
        tasks = [(fn, item) for item in items]
        inner_imap = getattr(self._inner, "imap", None)
        if inner_imap is not None:
            pairs = inner_imap(run_with_digest_capture, tasks)
        else:
            pairs = iter(self._inner.map(run_with_digest_capture, tasks))
        for result, digests in pairs:
            self._sink.extend(digests)
            yield result

    def map(self, fn, items):
        return list(self.imap(fn, items))

    def close(self) -> None:
        closer = getattr(self._inner, "close", None)
        if closer is not None:
            closer()


def _collect_serial(seed: int) -> dict[str, str]:
    """The historical in-process capture (comparable across PR manifests)."""
    manifest: dict[str, str] = {}
    original_run = scheduler_module.Simulation.run
    captured: list[int] = []

    def capturing_run(self, **kwargs):
        trace = original_run(self, **kwargs)
        captured.append(self.queue.digest)
        return trace

    scheduler_module.Simulation.run = capturing_run
    try:
        for name in ALL_EXPERIMENTS:
            captured.clear()
            runner = EXPERIMENTS.resolve(name)
            runner(quick=True, seed=seed, engine=Engine())
            manifest[name] = f"{_fold(captured):016x}"
    finally:
        scheduler_module.Simulation.run = original_run
    return manifest


def _collect_pooled(seed: int, jobs: int, pool: str) -> dict[str, str]:
    """Capture through a warm or cold process pool (digests travel with results)."""
    manifest: dict[str, str] = {}
    sink: list[int] = []
    executor = _DigestCapturingExecutor(executor_for(jobs, pool=pool), sink)
    try:
        for name in ALL_EXPERIMENTS:
            sink.clear()
            runner = EXPERIMENTS.resolve(name)
            # Any simulation an experiment might run in the parent process —
            # outside engine dispatch — lands in the same sink, in call order.
            previous = scheduler_module.DIGEST_SINK
            scheduler_module.DIGEST_SINK = sink
            try:
                runner(quick=True, seed=seed, engine=Engine(executor))
            finally:
                scheduler_module.DIGEST_SINK = previous
            manifest[name] = f"{_fold(sink):016x}"
    finally:
        executor.close()
    return manifest


def _collect_fabric(seed: int, workers: int) -> dict[str, str]:
    """Capture through the sweep fabric: plan, shard across workers, fold.

    ``repro.fabric`` plans every deterministic experiment, a coordinator fans
    the items out to worker subprocesses (in a throwaway state directory, no
    cache — every digest must come from a fresh execution), and the journaled
    digests are folded per experiment span.  The result must be bit-identical
    to :func:`_collect_serial`.
    """
    import tempfile

    from repro.fabric import plan_experiments
    from repro.fabric.coordinator import Coordinator

    plan = plan_experiments(list(ALL_EXPERIMENTS), quick=True, seed=seed)
    with tempfile.TemporaryDirectory(prefix="digest-fabric-") as state_dir:
        result = Coordinator(plan, state_dir=state_dir, workers=workers).run()
    if not result.digests_complete:
        raise RuntimeError("fabric run returned results without digest records")
    return result.experiment_digests()


def collect_manifest(
    seed: int = 0,
    *,
    jobs: int | None = None,
    pool: str = "warm",
    fabric: int | None = None,
) -> dict[str, str]:
    """Run every experiment quick and return ``{experiment: folded digest}``."""
    if fabric is not None:
        manifest = _collect_fabric(seed, fabric)
    elif jobs is not None and jobs > 1:
        manifest = _collect_pooled(seed, jobs, pool)
    else:
        manifest = _collect_serial(seed)
    experiment_names = list(manifest)
    core = [name for name in experiment_names if name in CORE_EXPERIMENTS]
    manifest["ALL"] = _fold_named(manifest, core)
    manifest["FULL"] = _fold_named(manifest, experiment_names)
    return manifest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run the sweeps through a process pool of N workers "
        "(default: serial, in-process)",
    )
    parser.add_argument(
        "--pool",
        choices=("warm", "cold"),
        default="warm",
        help="pool mode for --jobs > 1 (default: warm)",
    )
    parser.add_argument(
        "--fabric",
        type=int,
        default=None,
        metavar="N",
        help="run the sweeps through the distributed sweep fabric "
        "(repro.fabric coordinator + N worker subprocesses) instead of an "
        "in-process pool; the manifest must still be bit-identical",
    )
    parser.add_argument("-o", "--output", metavar="FILE", help="write the manifest as JSON")
    parser.add_argument(
        "--check", metavar="FILE", help="compare against a saved manifest; non-zero on mismatch"
    )
    args = parser.parse_args(argv)

    manifest = collect_manifest(
        seed=args.seed, jobs=args.jobs, pool=args.pool, fabric=args.fabric
    )
    for name, digest in manifest.items():
        print(f"{name:>4}  {digest}")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"manifest written to {args.output}")

    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            expected = json.load(handle)
        mismatches = {
            name: (expected.get(name), digest)
            for name, digest in manifest.items()
            if expected.get(name) != digest
        }
        if mismatches:
            for name, (want, got) in mismatches.items():
                print(f"MISMATCH {name}: expected {want}, got {got}", file=sys.stderr)
            return 1
        print(f"manifest matches {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
