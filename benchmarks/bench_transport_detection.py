"""Real-backend detection latency at two (hb_interval, hb_timeout) points.

Each row runs one 3-node heartbeat scenario on the **real** asyncio/TCP
backend (subprocesses, SIGKILL fault injection) and tracks the wall time of
the whole orchestrated run.  The detection latency itself is carried along
as ``median_detection_ms`` so the committed baseline doubles as a recorded
sim-vs-real data point.

These rows measure sockets, subprocess spawns, and OS scheduling — *not*
simulator hot paths — so they are flagged noisy: each entry sets
``max_regression_pct`` (honoured per-row by ``compare_bench.py``) far above
the default 25% gate.  A genuine hang still fails CI (the orchestrator and
the conftest alarm bound every run); a slow shared runner does not.

Run explicitly (the rows are too slow for the default bench loop)::

    PYTHONPATH=src python -m pytest benchmarks/bench_transport_detection.py \
        -q --benchmark-only
"""

from __future__ import annotations

import statistics

from repro.runtime import Engine
from repro.transport.__main__ import build_heartbeat_spec
from repro.transport.orchestrator import DEFAULT_TIME_SCALE
from repro.transport.validate import units_to_ms

#: Wall-clock rows tolerate big swings: shared runners schedule subprocesses
#: erratically, and the run length itself is dominated by the scenario
#: horizon, not by code under our control.
MAX_REGRESSION_PCT = 150.0


def _run_real(hb_interval: float, hb_timeout: float):
    record = Engine().run(
        build_heartbeat_spec(
            nodes=3,
            hb_interval=hb_interval,
            hb_timeout=hb_timeout,
            backend="real",
            time_scale=DEFAULT_TIME_SCALE,
        )
    )
    assert record.metrics["hb_detection_ok"], record.metrics
    return record


def _bench_point(benchmark, key: str, hb_interval: float, hb_timeout: float) -> None:
    latencies: list[float] = []

    def _round():
        record = _run_real(hb_interval, hb_timeout)
        latencies.append(record.metrics["hb_detection_time"])

    benchmark.pedantic(_round, rounds=3, iterations=1)
    benchmark.extra_info["bench_core_key"] = key
    benchmark.extra_info["kind"] = "transport_wallclock"
    benchmark.extra_info["max_regression_pct"] = MAX_REGRESSION_PCT
    benchmark.extra_info["median_detection_ms"] = round(
        units_to_ms(statistics.median(latencies), DEFAULT_TIME_SCALE), 3
    )


def test_transport_detection_i1_t3(benchmark):
    """Tight cell: 1-unit interval, 3-unit timeout (50 ms / 150 ms wall)."""
    _bench_point(benchmark, "transport_detect_i1_t3", hb_interval=1.0, hb_timeout=3.0)


def test_transport_detection_i2_t6(benchmark):
    """Slack cell: 2-unit interval, 6-unit timeout (100 ms / 300 ms wall)."""
    _bench_point(benchmark, "transport_detect_i2_t6", hb_interval=2.0, hb_timeout=6.0)
