"""E5 benchmark — Figure 9 consensus in HAS[HΩ, HΣ] under any number of crashes."""

from repro.experiments import run_e5


def test_e5_consensus_hsigma(benchmark, print_result):
    result = benchmark.pedantic(
        run_e5, kwargs={"quick": True, "seed": 0}, iterations=1, rounds=3
    )
    print_result(result)
    assert result.summary["all_terminated"]
    assert result.summary["all_safe"]
    assert result.summary["majority_crashed_all_terminated"]
