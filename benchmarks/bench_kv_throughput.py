"""KV service throughput: the quick E10 sweep, serial and warm-pool.

The tracked quantity is **runs per second** for the whole quick E10
experiment (12 KV service simulations: clients × key skew × fault model,
each with consensus-driven replication, simulated client populations, and
the per-run linearizability verdict folded into the metrics) under:

* ``kv_e10_serial`` — in-process, the reference compute floor;
* ``kv_e10_warm_pool_jobs2`` — the persistent :class:`WorkerPool`, warmed
  outside the timed rounds as in real use.

Unlike the pure-consensus sweeps, each E10 run carries the full workload
stack — replication slots, client think-time loops, anti-entropy sync, and
the Wing & Gong checker — so this row guards the end-to-end cost of the KV
subsystem, not just the simulator core.  Both modes produce bit-identical
determinism digests (``benchmarks/digest_manifest.py`` covers E10 under the
``FULL`` fold).

Results land in ``BENCH_core.json`` (schema ``bench-core/2``) via the suite
conftest; ``runs_per_round`` turns each median into ``runs_per_second``.
"""

from repro.experiments.e10_kv_service import run as run_e10
from repro.runtime import Engine

#: The quick E10 experiment executes 2 clients × 2 skews × 3 faults = 12 runs.
E10_QUICK_RUNS = 12


def _run_quick_e10(engine=None):
    result = run_e10(quick=True, seed=0, engine=engine)
    assert result.summary["all_linearizable"]
    return result


def _tag(benchmark, key):
    benchmark.extra_info["runs_per_round"] = E10_QUICK_RUNS
    benchmark.extra_info["bench_core_key"] = key


def test_kv_e10_serial(benchmark):
    """The compute floor: the whole quick E10 sweep in-process."""
    benchmark.pedantic(_run_quick_e10, rounds=9, iterations=1, warmup_rounds=1)
    _tag(benchmark, "kv_e10_serial")


def test_kv_e10_warm_pool_jobs2(benchmark):
    """Persistent pool, 2 workers: the parallel-dispatch configuration."""
    with Engine(jobs=2) as engine:
        _run_quick_e10(engine)  # spawn + warm the pool outside the timed rounds
        benchmark.pedantic(
            lambda: _run_quick_e10(engine), rounds=9, iterations=1, warmup_rounds=1
        )
    _tag(benchmark, "kv_e10_warm_pool_jobs2")
