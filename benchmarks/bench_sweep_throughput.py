"""Sweep-scale throughput: the quick E1 sweep through each execution mode.

The tracked quantity is **runs per second** for the whole quick E1 experiment
(12 sweep configurations + 1 ablation run = 13 simulations, including spec
materialisation, dispatch, metric extraction, and aggregation) under:

* ``sweep_e1_serial`` — in-process, the reference compute floor;
* ``sweep_e1_cold_pool_jobs{2,4}`` — the per-call :class:`ParallelExecutor`
  baseline: every ``Engine.sweep`` call spawns a fresh process pool, so each
  round pays worker startup (interpreter + library import) again;
* ``sweep_e1_warm_pool_jobs{2,4}`` — the persistent :class:`WorkerPool`: the
  pool is spawned and warmed once (outside the timed rounds, as in real use
  where one Engine serves a whole session) and every round reuses it.

The warm/cold gap is the orchestration overhead this layer exists to delete;
it is widest on spawn-start-method platforms (macOS, Windows, Linux from
Python 3.14 — and this repository's pools, which use ``spawn`` everywhere
for cross-platform determinism), where cold worker startup re-imports the
library on every call.  All modes produce bit-identical determinism digests
— ``benchmarks/digest_manifest.py --jobs N --pool warm|cold`` is the gate.

Results land in ``BENCH_core.json`` (schema ``bench-core/2``) via the suite
conftest; ``runs_per_round`` turns each median into ``runs_per_second``.
Nine rounds per mode (not the microbenchmarks' one): multi-process timings
jitter badly on small/contended machines, and the regression gate compares
medians, which need enough samples to be stable inside the 25% CI budget.
"""

from repro.experiments.e1_ohp_convergence import run as run_e1
from repro.runtime import Engine, executor_for

#: The quick E1 experiment executes 12 sweep configs plus 1 ablation run.
E1_QUICK_RUNS = 13


def _run_quick_e1(engine=None):
    result = run_e1(quick=True, seed=0, engine=engine)
    assert result.summary["adaptive_all_converged"]
    return result


def _tag(benchmark, key):
    benchmark.extra_info["runs_per_round"] = E1_QUICK_RUNS
    benchmark.extra_info["bench_core_key"] = key


def test_sweep_e1_serial(benchmark):
    """The compute floor: the whole quick E1 sweep in-process."""
    benchmark.pedantic(_run_quick_e1, rounds=9, iterations=1, warmup_rounds=1)
    _tag(benchmark, "sweep_e1_serial")


def _bench_cold(benchmark, jobs, key):
    engine = Engine(executor_for(jobs, pool="cold"))
    benchmark.pedantic(lambda: _run_quick_e1(engine), rounds=9, iterations=1, warmup_rounds=1)
    _tag(benchmark, key)


def _bench_warm(benchmark, jobs, key):
    with Engine(jobs=jobs) as engine:
        _run_quick_e1(engine)  # spawn + warm the pool outside the timed rounds
        benchmark.pedantic(
            lambda: _run_quick_e1(engine), rounds=9, iterations=1, warmup_rounds=1
        )
    _tag(benchmark, key)


def test_sweep_e1_cold_pool_jobs2(benchmark):
    """Per-call pool, 2 workers: worker startup on every sweep call."""
    _bench_cold(benchmark, 2, "sweep_e1_cold_pool_jobs2")


def test_sweep_e1_warm_pool_jobs2(benchmark):
    """Persistent pool, 2 workers: startup amortised to zero per call."""
    _bench_warm(benchmark, 2, "sweep_e1_warm_pool_jobs2")


def test_sweep_e1_cold_pool_jobs4(benchmark):
    """Per-call pool, 4 workers (the acceptance-gate baseline)."""
    _bench_cold(benchmark, 4, "sweep_e1_cold_pool_jobs4")


def test_sweep_e1_warm_pool_jobs4(benchmark):
    """Persistent pool, 4 workers (the acceptance-gate configuration)."""
    _bench_warm(benchmark, 4, "sweep_e1_warm_pool_jobs4")
