"""E4 benchmark — Figure 8 consensus in HAS[t < n/2, HΩ]."""

from repro.experiments import run_e4


def test_e4_consensus_majority(benchmark, print_result):
    result = benchmark.pedantic(
        run_e4, kwargs={"quick": True, "seed": 0}, iterations=1, rounds=3
    )
    print_result(result)
    assert result.summary["all_terminated"]
    assert result.summary["all_safe"]
