"""Compare two BENCH_core.json files and print the per-benchmark delta.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json [--max-regression PCT]

Prints one line per benchmark key (median seconds, ns/event or runs/sec when
available, and the relative change; negative = faster).  With
``--max-regression`` the comparison is a *gate*: the exit status is non-zero
when any shared benchmark's median slowed down by more than the given
percentage, or when a tracked benchmark vanished from the current results.
CI runs the gate at 25% — generous because shared runners are noisy, but a
real regression in any tracked median now fails the build instead of
scrolling past as information.  A baseline row may carry its own
``max_regression_pct`` which overrides the global budget for that row only
(the wall-clock transport rows use this: subprocess scheduling noise dwarfs
a sim median's jitter).  The committed baseline is refreshed deliberately,
not by CI.
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return payload.get("benchmarks", {})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="PCT",
        help="fail when any benchmark slows down by more than PCT percent",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    current = _load(args.current)
    keys = sorted(set(baseline) | set(current))
    width = max((len(key) for key in keys), default=10)
    over_budget: list[tuple[str, float, float]] = []
    missing_in_current: list[str] = []
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    for key in keys:
        old = baseline.get(key)
        new = current.get(key)
        if old is None or new is None:
            status = "baseline-only" if new is None else "new"
            if new is None:
                missing_in_current.append(key)
            known = old or new
            print(f"{key:<{width}}  {known['median_seconds']:>12.6f}  {'—':>12}  ({status})")
            continue
        old_median = old["median_seconds"]
        new_median = new["median_seconds"]
        change = (new_median - old_median) / old_median * 100.0
        # A baseline row may carry its own budget (wall-clock rows from the
        # real transport backend are far noisier than sim medians); it
        # overrides the global --max-regression for that row only.
        if args.max_regression is not None:
            limit = float(old.get("max_regression_pct", args.max_regression))
            if change > limit:
                over_budget.append((key, change, limit))
        per_event = ""
        if "median_ns_per_event" in new and "median_ns_per_event" in old:
            per_event = (
                f"   ({old['median_ns_per_event']:,.0f} → "
                f"{new['median_ns_per_event']:,.0f} ns/event)"
            )
        elif "runs_per_second" in new and "runs_per_second" in old:
            per_event = (
                f"   ({old['runs_per_second']:,.1f} → "
                f"{new['runs_per_second']:,.1f} runs/s)"
            )
        print(
            f"{key:<{width}}  {old_median:>12.6f}  {new_median:>12.6f}  "
            f"{change:>+7.1f}%{per_event}"
        )
    if args.max_regression is not None:
        # A benchmark that vanished from the current results is a failure in
        # gated mode: either it crashed (the worst regression of all) or its
        # coverage was silently dropped.
        if missing_in_current:
            print(
                f"FAIL: benchmark(s) missing from current results: "
                f"{', '.join(missing_in_current)}",
                file=sys.stderr,
            )
            return 1
        if over_budget:
            for key, change, limit in over_budget:
                print(
                    f"FAIL: {key} regressed {change:+.1f}% "
                    f"(budget {limit:.1f}%)",
                    file=sys.stderr,
                )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
