"""E2 benchmark — HΣ in synchronous homonymous systems (Figure 7)."""

from repro.experiments import run_e2


def test_e2_hsigma_synchronous(benchmark, print_result):
    result = benchmark.pedantic(
        run_e2, kwargs={"quick": True, "seed": 0}, iterations=1, rounds=3
    )
    print_result(result)
    assert result.summary["all_properties_hold"]
