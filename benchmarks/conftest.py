"""Shared configuration for the benchmark suite.

Each ``bench_eN_*`` module regenerates one experiment of EXPERIMENTS.md via
``pytest-benchmark`` (run with ``pytest benchmarks/ --benchmark-only``).  The
experiment tables are printed so a benchmark run doubles as a regeneration of
the reported numbers; pass ``-s`` to see them inline.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def print_result():
    """Print an ExperimentResult table and summary (visible with ``-s``)."""

    def _print(result):
        print()
        print(result.table())
        print(f"summary: {result.summary}")
        return result

    return _print
