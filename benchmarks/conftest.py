"""Shared configuration for the benchmark suite.

Each ``bench_eN_*`` module regenerates one experiment of EXPERIMENTS.md via
``pytest-benchmark`` (run with ``pytest benchmarks/ --benchmark-only``).  The
experiment tables are printed so a benchmark run doubles as a regeneration of
the reported numbers; pass ``-s`` to see them inline.

After every benchmark run, core-substrate benchmarks (those that set
``benchmark.extra_info["bench_core_key"]``) are folded into
``BENCH_core.json`` — median seconds per round and, when the benchmark
declares ``events_per_round``, median ns/event; ``runs_per_round`` (the
sweep-throughput benchmarks) likewise derives ``runs_per_second``.  The file
(schema ``bench-core/2``) is written to the repository root (override with
the ``BENCH_CORE_JSON`` environment variable) and the committed copy is the
perf baseline CI *enforces* — ``benchmarks/compare_bench.py
--max-regression`` fails the build when a tracked median regresses past the
budget::

    PYTHONPATH=src python -m pytest benchmarks/bench_core_microbenchmarks.py \
        --benchmark-only                  # refreshes BENCH_core.json
    python benchmarks/compare_bench.py old.json BENCH_core.json
"""

from __future__ import annotations

import json
import os
import platform

import pytest


@pytest.fixture
def print_result():
    """Print an ExperimentResult table and summary (visible with ``-s``)."""

    def _print(result):
        print()
        print(result.table())
        print(f"summary: {result.summary}")
        return result

    return _print


def pytest_sessionfinish(session, exitstatus):
    """Fold tagged core benchmarks into BENCH_core.json."""
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    entries: dict[str, dict] = {}
    for bench in benchmark_session.benchmarks:
        extra = getattr(bench, "extra_info", None) or {}
        key = extra.get("bench_core_key")
        if not key:
            continue
        median_seconds = bench.stats.median
        entry: dict = {
            "test": bench.name,
            "median_seconds": median_seconds,
            "rounds": bench.stats.rounds,
        }
        events = extra.get("events_per_round")
        if events:
            entry["events_per_round"] = events
            entry["median_ns_per_event"] = median_seconds * 1e9 / events
        runs = extra.get("runs_per_round")
        if runs:
            entry["runs_per_round"] = runs
            entry["runs_per_second"] = runs / median_seconds
        # Wall-clock rows (the real transport backend, the fabric
        # coordinator) carry their own regression budget and the measured
        # detection latency; topology scaling rows carry their scale and
        # per-process load; the adaptive-allocation row records how many runs
        # early stopping saved.  Pass those through so compare_bench.py can
        # gate each row on its own terms and the baseline doubles as a
        # recorded data point.
        for passthrough in (
            "kind",
            "max_regression_pct",
            "median_detection_ms",
            "mode",
            "n",
            "msgs_per_proc_round",
            "workers",
            "total_runs",
            "fixed_grid_runs",
            "runs_saved",
        ):
            if passthrough in extra:
                entry[passthrough] = extra[passthrough]
        entries[key] = entry
    if not entries:
        return
    target = os.environ.get(
        "BENCH_CORE_JSON", os.path.join(str(session.config.rootpath), "BENCH_core.json")
    )
    # Merge into the existing file: a filtered run (e.g. ``-k queue``) must
    # refresh only the benchmarks that actually ran, not clobber the rest of
    # the committed baseline.
    merged: dict[str, dict] = {}
    try:
        with open(target, encoding="utf-8") as handle:
            merged = dict(json.load(handle).get("benchmarks", {}))
    except (OSError, ValueError):
        pass
    merged.update(entries)
    payload = {
        "schema": "bench-core/2",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": {key: merged[key] for key in sorted(merged)},
    }
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nbench-core results written to {target}")
