"""E1 benchmark — ◇HP / HΩ convergence under partial synchrony (Figure 6)."""

from repro.experiments import run_e1


def test_e1_ohp_convergence(benchmark, print_result):
    result = benchmark.pedantic(
        run_e1, kwargs={"quick": True, "seed": 0}, iterations=1, rounds=3
    )
    print_result(result)
    assert result.summary["adaptive_all_converged"]
    assert result.summary["adaptive_all_homega_ok"]
    assert not result.summary["fixed_timeout_converged"]
