"""E8 benchmark — stacked system: Figure 6 HΩ implementation under Figure 8."""

from repro.experiments import run_e8


def test_e8_stacked_consensus(benchmark, print_result):
    result = benchmark.pedantic(
        run_e8, kwargs={"quick": True, "seed": 0}, iterations=1, rounds=3
    )
    print_result(result)
    assert result.summary["all_terminated"]
    assert result.summary["all_safe"]
