"""E7 benchmark — ablation of the Leaders' Coordination Phase."""

from repro.experiments import run_e7


def test_e7_coordination_ablation(benchmark, print_result):
    result = benchmark.pedantic(
        run_e7, kwargs={"quick": True, "seed": 0}, iterations=1, rounds=3
    )
    print_result(result)
    assert result.summary["both_variants_always_safe"]
    assert result.summary["with_coordination_termination_rate"] == 1.0
    assert (
        result.summary["mean_rounds_without_coordination"]
        > result.summary["mean_rounds_with_coordination"]
    )
