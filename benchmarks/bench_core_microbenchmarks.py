"""Micro-benchmarks of the core building blocks.

These are not paper experiments; they track the cost of the substrate itself
(one consensus run, one detector-convergence run, multiset algebra, quorum
safety checking) so performance regressions in the library are visible.
"""

from repro.consensus import HOmegaMajorityConsensus
from repro.detectors import HSigmaOracle, check_hsigma
from repro.detectors.probe import DetectorProbeProgram, hsigma_probes
from repro.identity import IdentityMultiset
from repro.membership import grouped_identities
from repro.sim import AsynchronousTiming, CrashSchedule, Simulation, build_system
from repro.sim.failures import FailurePattern
from repro.workloads import minority_crashes
from repro.workloads.scenarios import ConsensusScenario


def test_single_consensus_run(benchmark):
    """One Figure 8 consensus run on a 7-process homonymous system."""
    membership = grouped_identities([3, 2, 2])

    def run_once():
        scenario = ConsensusScenario(
            membership=membership,
            consensus_factory=lambda proposal: HOmegaMajorityConsensus(
                proposal, n=membership.size
            ),
            crash_schedule=minority_crashes(membership, at=8.0),
            detector_stabilization=15.0,
            horizon=400.0,
            seed=3,
        )
        _, _, verdict = scenario.run()
        return verdict

    verdict = benchmark(run_once)
    assert verdict.validity_ok and verdict.agreement_ok


def test_hsigma_oracle_probe_run(benchmark):
    """Sampling an HΣ oracle for 40 time units on a 6-process system."""
    membership = grouped_identities([2, 2, 2])
    schedule = CrashSchedule.at_times({membership.processes[1]: 10.0})

    def run_once():
        system = build_system(
            membership=membership,
            timing=AsynchronousTiming(min_latency=0.1, max_latency=1.0),
            program_factory=lambda pid, identity: DetectorProbeProgram(
                hsigma_probes(), period=1.0
            ),
            crash_schedule=schedule,
            detectors={"HSigma": lambda s: HSigmaOracle(s, stabilization_time=15.0)},
            seed=2,
        )
        simulation = Simulation(system)
        return simulation.run(until=40.0)

    trace = benchmark(run_once)
    result = check_hsigma(trace, FailurePattern(membership, schedule))
    assert result.ok, result.violations


def test_multiset_algebra(benchmark):
    """Union/intersection/inclusion over identifier multisets."""
    left = IdentityMultiset([f"id{i % 7}" for i in range(50)])
    right = IdentityMultiset([f"id{i % 5}" for i in range(40)])

    def run_once():
        union = left.union(right)
        shared = left.intersection(right)
        return shared.issubset(union) and left.difference(right).issubset(left)

    assert benchmark(run_once)


def test_sub_multiset_enumeration(benchmark):
    """Enumerating the label family used by the Σ → HΣ transformation."""
    universe = IdentityMultiset([f"id{i}" for i in range(8)])

    def run_once():
        return sum(1 for _ in universe.sub_multisets_containing("id0"))

    assert benchmark(run_once) == 128
