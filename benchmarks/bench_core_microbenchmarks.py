"""Micro-benchmarks of the core building blocks.

These are not paper experiments; they track the cost of the substrate itself
(the event queue's schedule/pop/cancel operations, the broadcast hot path,
one consensus run, one detector-convergence run, multiset algebra) so
performance regressions in the library are visible.

Benchmarks tagged with ``benchmark.extra_info["bench_core_key"]`` are folded
into ``BENCH_core.json`` by the suite's conftest after every benchmark run —
the committed copy at the repository root is the perf trajectory each PR
defends.  ``events_per_round`` turns a round's wall-clock into ns/event.
"""

from repro.consensus import HOmegaMajorityConsensus
from repro.detectors import HSigmaOracle, check_hsigma
from repro.detectors.probe import DetectorProbeProgram, hsigma_probes
from repro.experiments.e1_ohp_convergence import run as run_e1
from repro.identity import IdentityMultiset
from repro.membership import grouped_identities
from repro.sim import (
    AsynchronousTiming,
    ComposedLinks,
    CrashSchedule,
    EventQueue,
    JitterLinks,
    LossyLinks,
    Simulation,
    SynchronousTiming,
    build_system,
)
from repro.sim.failures import FailurePattern
from repro.sim.process import ProcessProgram
from repro.workloads import minority_crashes
from repro.workloads.scenarios import ConsensusScenario

#: Events per round of the raw event-queue benchmarks.
N_QUEUE_EVENTS = 2000


def _noop() -> None:
    pass


def test_event_queue_schedule_pop(benchmark):
    """Raw schedule + pop cycle cost of the event queue itself."""

    def cycle():
        queue = EventQueue()
        schedule = queue.schedule
        for i in range(N_QUEUE_EVENTS):
            schedule(float(i & 255), _noop)
        pops = 0
        while queue.pop_next() is not None:
            pops += 1
        return pops

    assert benchmark(cycle) == N_QUEUE_EVENTS
    # One schedule and one pop per event.
    benchmark.extra_info["events_per_round"] = 2 * N_QUEUE_EVENTS
    benchmark.extra_info["bench_core_key"] = "queue_schedule_pop"


def test_event_queue_schedule_cancel(benchmark):
    """Raw schedule + cancel cost (cancelled events are dropped lazily)."""

    def cycle():
        queue = EventQueue()
        schedule = queue.schedule
        handles = [schedule(float(i % 97), _noop) for i in range(N_QUEUE_EVENTS)]
        cancel = queue.cancel
        for handle in handles:
            cancel(handle)
        return len(queue)

    assert benchmark(cycle) == 0
    benchmark.extra_info["events_per_round"] = 2 * N_QUEUE_EVENTS
    benchmark.extra_info["bench_core_key"] = "queue_schedule_cancel"


def test_e1_quick_wallclock(benchmark):
    """Wall-clock of the whole quick E1 sweep (engine + sim + checks)."""
    result = benchmark.pedantic(lambda: run_e1(quick=True, seed=0), rounds=3, iterations=1)
    assert result.summary["adaptive_all_converged"]
    benchmark.extra_info["bench_core_key"] = "e1_quick_wallclock"


def test_single_consensus_run(benchmark):
    """One Figure 8 consensus run on a 7-process homonymous system."""
    membership = grouped_identities([3, 2, 2])

    def run_once():
        scenario = ConsensusScenario(
            membership=membership,
            consensus_factory=lambda proposal: HOmegaMajorityConsensus(
                proposal, n=membership.size
            ),
            crash_schedule=minority_crashes(membership, at=8.0),
            detector_stabilization=15.0,
            horizon=400.0,
            seed=3,
        )
        _, _, verdict = scenario.run()
        return verdict

    verdict = benchmark(run_once)
    assert verdict.validity_ok and verdict.agreement_ok


def test_hsigma_oracle_probe_run(benchmark):
    """Sampling an HΣ oracle for 40 time units on a 6-process system."""
    membership = grouped_identities([2, 2, 2])
    schedule = CrashSchedule.at_times({membership.processes[1]: 10.0})

    def run_once():
        system = build_system(
            membership=membership,
            timing=AsynchronousTiming(min_latency=0.1, max_latency=1.0),
            program_factory=lambda pid, identity: DetectorProbeProgram(
                hsigma_probes(), period=1.0
            ),
            crash_schedule=schedule,
            detectors={"HSigma": lambda s: HSigmaOracle(s, stabilization_time=15.0)},
            seed=2,
        )
        simulation = Simulation(system)
        return simulation.run(until=40.0)

    trace = benchmark(run_once)
    result = check_hsigma(trace, FailurePattern(membership, schedule))
    assert result.ok, result.violations


class _GossipProgram(ProcessProgram):
    """Broadcast-heavy load: one broadcast per process per time unit."""

    def setup(self, ctx):
        def chatter():
            for _ in range(60):
                ctx.broadcast("GOSSIP")
                yield ctx.sleep(1.0)

        ctx.spawn(chatter, name="chatter")


def _gossip_system(links, timing=None):
    membership = grouped_identities([3, 3])
    return build_system(
        membership=membership,
        timing=timing or AsynchronousTiming(min_latency=0.1, max_latency=1.0),
        program_factory=lambda pid, identity: _GossipProgram(),
        links=links,
        seed=4,
    )


def _events_per_gossip_run(links, timing=None) -> int:
    simulation = Simulation(_gossip_system(links, timing))
    simulation.run(until=70.0)
    return simulation.events_processed


def test_broadcast_heavy_run_default_links(benchmark):
    """6 processes gossiping for 60 time units over the default reliable links.

    This pins the broadcast hot path itself (2160 scheduled deliveries per
    run): event recycling, the tuple-keyed heap, batched timing draws, and
    index-addressed delivery callbacks all show up here.
    """
    trace = benchmark(lambda: Simulation(_gossip_system(None)).run(until=70.0))
    assert trace.message_copies_delivered == trace.message_copies_sent
    benchmark.extra_info["events_per_round"] = _events_per_gossip_run(None)
    benchmark.extra_info["bench_core_key"] = "broadcast_default_links"


def test_broadcast_heavy_run_synchronous_batched(benchmark):
    """The gossip load under HSS timing, where every broadcast's deliveries
    collapse into one batched heap entry (n recipients, one heap operation)."""
    timing = SynchronousTiming(step=1.0)
    trace = benchmark(lambda: Simulation(_gossip_system(None, timing)).run(until=70.0))
    assert trace.message_copies_delivered == trace.message_copies_sent
    benchmark.extra_info["events_per_round"] = _events_per_gossip_run(None, timing)
    benchmark.extra_info["bench_core_key"] = "broadcast_synchronous_batched"


def test_broadcast_heavy_run_under_adversarial_links(benchmark):
    """The same gossip load through a loss + jitter link pipeline.

    The difference against the default-links benchmark is the cost of the
    non-default link path (per-copy ``deliveries`` calls and their RNG draws).
    """
    links = ComposedLinks((LossyLinks(loss=0.1), JitterLinks(max_jitter=0.5)))
    trace = benchmark(lambda: Simulation(_gossip_system(links)).run(until=70.0))
    assert 0 < trace.message_copies_delivered < trace.message_copies_sent
    benchmark.extra_info["events_per_round"] = _events_per_gossip_run(links)
    benchmark.extra_info["bench_core_key"] = "broadcast_adversarial_links"


def test_multiset_algebra(benchmark):
    """Union/intersection/inclusion over identifier multisets."""
    left = IdentityMultiset([f"id{i % 7}" for i in range(50)])
    right = IdentityMultiset([f"id{i % 5}" for i in range(40)])

    def run_once():
        union = left.union(right)
        shared = left.intersection(right)
        return shared.issubset(union) and left.difference(right).issubset(left)

    assert benchmark(run_once)


def test_sub_multiset_enumeration(benchmark):
    """Enumerating the label family used by the Σ → HΣ transformation."""
    universe = IdentityMultiset([f"id{i}" for i in range(8)])

    def run_once():
        return sum(1 for _ in universe.sub_multisets_containing("id0"))

    assert benchmark(run_once) == 128
