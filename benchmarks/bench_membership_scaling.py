"""Sparse-monitoring scaling benchmarks: ring/gossip at n=100 and n=1,000.

Each row runs one deterministic E12-style detection scenario end to end
(build → simulate → check) and tracks wall time plus ns per delivered message
copy.  Together with ``membership_fullmesh_n100_1round`` — a *single* round
of the quadratic full-mesh monitor at the same scale — the committed rows
pin the O(n·k) vs O(n²) claim as a perf trajectory: the mesh burns ≈ n²
copies in one round while the ring completes a whole multi-round detection
scenario in a similar copy budget.

The rows carry ``msgs_per_proc_round`` so the baseline doubles as a recorded
data point of the scaling table (compare E12's summary).

Run explicitly::

    PYTHONPATH=src python -m pytest benchmarks/bench_membership_scaling.py \
        -q --benchmark-only
"""

from __future__ import annotations

from repro.runtime import Engine, asynchronous, crashes_at, scenario

_HB_INTERVAL = 1.0


def _detection_spec(mode: str, n: int, degree: int, hb_timeout: float):
    horizon = 10.0 + hb_timeout + 5.0 * _HB_INTERVAL + 3.0
    key = "successors" if mode == "ring" else "fanout"
    return (
        scenario(f"bench-{mode}-n{n}")
        .processes(n)
        .unique_ids()
        .timing(asynchronous(min_latency=0.01, max_latency=0.2))
        .crashes(crashes_at({n - 1: 10.0}))
        .program("heartbeat", hb_interval=_HB_INTERVAL, hb_timeout=hb_timeout)
        .topology(mode, **{key: degree})
        .check("topo_detection")
        .horizon(horizon)
        .seed(0)
        .build()
    )


def _bench_sparse(benchmark, key: str, mode: str, n: int, degree: int, hb_timeout: float):
    spec = _detection_spec(mode, n, degree, hb_timeout)
    outcomes = []

    def _round():
        outcomes.append(Engine().run(spec).metrics)

    benchmark.pedantic(_round, rounds=3, iterations=1)
    metrics = outcomes[-1]
    assert metrics["topo_detection_ok"], metrics
    copies = metrics["topo_detection_copies_sent"]
    rounds = metrics["topo_detection_end_time"] / _HB_INTERVAL
    benchmark.extra_info["bench_core_key"] = key
    benchmark.extra_info["events_per_round"] = copies
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["n"] = n
    benchmark.extra_info["msgs_per_proc_round"] = round(copies / n / rounds, 3)


def test_membership_ring_n100(benchmark):
    """Whole ring detection scenario at n=100 (k=3 successors)."""
    _bench_sparse(benchmark, "membership_ring_n100", "ring", 100, 3, 6.0)


def test_membership_ring_n1000(benchmark):
    """The headline scale: ring detection at n=1,000, still O(n·k)."""
    _bench_sparse(benchmark, "membership_ring_n1000", "ring", 1000, 3, 6.0)


def test_membership_gossip_n1000(benchmark):
    """Gossip diffusion at n=1,000 (fanout 3).

    The staleness timeout must cover the diffusion depth — a counter bump
    reaches the whole system in ≈ log₃(n) + tail rounds, so n=1,000 needs a
    longer window (12 intervals) than n≤100 (8) to stay suspicion-free.
    """
    _bench_sparse(benchmark, "membership_gossip_n1000", "gossip", 1000, 3, 12.0)


def test_membership_fullmesh_n100_1round(benchmark):
    """ONE round of the quadratic mesh at n=100 — the comparison yardstick.

    The horizon is shorter than ``hb_interval``, so every process broadcasts
    exactly one ping and answers each received ping with one broadcast ACK:
    ≈ n² + n²·(n−1) copies, no detection.  This is the per-round budget the
    sparse topologies replace.
    """
    spec = (
        scenario("bench-mesh-n100-1round")
        .processes(100)
        .unique_ids()
        .timing(asynchronous(min_latency=0.01, max_latency=0.2))
        .program("heartbeat", hb_interval=_HB_INTERVAL, hb_timeout=6.0)
        .check("hb_detection")
        .horizon(0.9 * _HB_INTERVAL)
        .seed(0)
        .build()
    )
    outcomes = []

    def _round():
        outcomes.append(Engine().run(spec).metrics)

    benchmark.pedantic(_round, rounds=3, iterations=1)
    metrics = outcomes[-1]
    copies = metrics["hb_detection_copies_sent"]
    assert copies >= 100 * 99, metrics  # at least the ping volley went out
    benchmark.extra_info["bench_core_key"] = "membership_fullmesh_n100_1round"
    benchmark.extra_info["events_per_round"] = copies
    benchmark.extra_info["mode"] = "full_mesh"
    benchmark.extra_info["n"] = 100
    benchmark.extra_info["msgs_per_proc_round"] = round(copies / 100, 3)
