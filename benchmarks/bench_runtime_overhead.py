"""Microbenchmark: Engine/spec dispatch overhead vs hand-wired build_system.

The runtime front door materialises memberships, timing models, crash
schedules, and detector factories from data on every run.  This benchmark
runs the *same* small consensus scenario both ways — declaratively through
:func:`repro.runtime.execute_spec` and directly through ``build_system`` +
``Simulation`` — so the dispatch overhead is visible as the difference
between the two timings (the simulation itself dominates; the overhead
should stay in the low single-digit percent).

The two paths must also *measure* the same run: identical seeds feed
identical RNG streams, so the assertion at the bottom pins byte-equal
metrics, which is exactly the serial/parallel determinism contract.
"""

from __future__ import annotations

from repro.consensus import HOmegaMajorityConsensus, validate_consensus
from repro.analysis.metrics import consensus_metrics
from repro.runtime import Engine, execute_spec, minority, scenario
from repro.runtime.engine import default_consensus_detectors, distinct_proposals
from repro.sim import AsynchronousTiming, Simulation, build_system
from repro.sim.failures import FailurePattern
from repro.workloads.crashes import minority_crashes
from repro.workloads.homonymy import membership_with_distinct_ids

_N = 5
_DISTINCT = 3
_STABILIZATION = 10.0
_HORIZON = 300.0
_SEED = 7

_SPEC = (
    scenario("bench-overhead")
    .processes(_N)
    .distinct_ids(_DISTINCT)
    .crashes(minority(at=6.0, count=1))
    .detectors("HOmega", "HSigma", stabilization=_STABILIZATION)
    .consensus("homega_majority")
    .horizon(_HORIZON)
    .seed(_SEED)
    .build()
)


def _run_direct() -> dict:
    """The hand-wired baseline: everything assembled inline."""
    membership = membership_with_distinct_ids(_N, _DISTINCT)
    proposals = distinct_proposals(membership)
    crash_schedule = minority_crashes(membership, at=6.0, count=1)
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=2.0),
        program_factory=lambda pid, identity: HOmegaMajorityConsensus(
            proposals[pid], n=membership.size
        ),
        crash_schedule=crash_schedule,
        detectors=default_consensus_detectors(_STABILIZATION),
        seed=_SEED,
    )
    simulation = Simulation(system)
    trace = simulation.run(
        until=_HORIZON, stop_when=lambda sim: sim.all_correct_decided()
    )
    pattern = FailurePattern(membership, crash_schedule)
    verdict = validate_consensus(trace, pattern, proposals, require_termination=False)
    metrics = consensus_metrics(trace, pattern, verdict)
    return {
        "decided": metrics.decided,
        "safe": metrics.safe,
        "decision_time": metrics.last_decision_time,
        "rounds": metrics.max_decision_round,
        "broadcasts": metrics.broadcasts,
        "message_copies": metrics.message_copies,
    }


def test_direct_build_system_dispatch(benchmark):
    """Baseline: one consensus run wired by hand."""
    row = benchmark(_run_direct)
    assert row["decided"] and row["safe"]


def test_engine_spec_dispatch(benchmark):
    """Same run through the declarative spec + execute_spec path."""
    record = benchmark(execute_spec, _SPEC)
    assert record.metrics["decided"] and record.metrics["safe"]


def test_engine_run_dispatch(benchmark):
    """Same run through Engine.run (adds record bookkeeping, no JSONL)."""
    engine = Engine()
    record = benchmark(engine.run, _SPEC)
    assert record.metrics["decided"] and record.metrics["safe"]


def test_paths_measure_identical_runs():
    """Dispatch overhead must not change what is measured."""
    assert _run_direct() == dict(execute_spec(_SPEC).metrics)
