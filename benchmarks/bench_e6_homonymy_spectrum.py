"""E6 benchmark — consensus cost across the homonymy spectrum vs baselines."""

from repro.experiments import run_e6


def test_e6_homonymy_spectrum(benchmark, print_result):
    result = benchmark.pedantic(
        run_e6, kwargs={"quick": True, "seed": 0}, iterations=1, rounds=3
    )
    print_result(result)
    assert result.summary["all_terminated"]
    assert result.summary["all_safe"]
