"""Per-run metrics extracted from traces and consensus verdicts."""

from __future__ import annotations

from dataclasses import dataclass

from ..consensus.validator import ConsensusVerdict
from ..sim.failures import FailurePattern
from ..sim.trace import RunTrace

__all__ = ["ConsensusRunMetrics", "consensus_metrics"]


@dataclass(frozen=True)
class ConsensusRunMetrics:
    """The cost and outcome figures of one consensus run."""

    decided: bool
    safe: bool
    last_decision_time: float | None
    max_decision_round: int | None
    broadcasts: int
    message_copies: int
    correct_processes: int
    faulty_processes: int

    @property
    def broadcasts_per_process(self) -> float:
        """Broadcast invocations divided by the system size."""
        total = self.correct_processes + self.faulty_processes
        return self.broadcasts / total if total else 0.0


def consensus_metrics(
    trace: RunTrace, pattern: FailurePattern, verdict: ConsensusVerdict
) -> ConsensusRunMetrics:
    """Summarise one consensus run."""
    return ConsensusRunMetrics(
        decided=verdict.termination_ok,
        safe=verdict.validity_ok and verdict.agreement_ok,
        last_decision_time=verdict.last_decision_time,
        max_decision_round=verdict.max_decision_round,
        broadcasts=trace.broadcast_invocations,
        message_copies=trace.message_copies_sent,
        correct_processes=len(pattern.correct),
        faulty_processes=len(pattern.faulty),
    )
