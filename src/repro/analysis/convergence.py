"""Detector-convergence analysis on recorded traces."""

from __future__ import annotations

import statistics
from typing import Iterable

from ..detectors.properties import CheckResult

__all__ = ["detector_convergence_time", "convergence_statistics"]


def detector_convergence_time(result: CheckResult) -> float | None:
    """The convergence (stabilization) time reported by a property check.

    Returns ``None`` when the check failed or the detector never settled — the
    caller decides how to count such runs (usually as "did not converge within
    the horizon").
    """
    if not result.ok:
        return None
    return result.stabilization_time


def convergence_statistics(times: Iterable[float | None]) -> dict[str, float]:
    """Aggregate a collection of convergence times.

    ``None`` entries (non-converged runs) are excluded from the timing
    statistics but reported through the ``converged_fraction`` field.
    """
    times = list(times)
    converged = [time for time in times if time is not None]
    if not times:
        return {"runs": 0, "converged_fraction": 0.0}
    summary: dict[str, float] = {
        "runs": float(len(times)),
        "converged_fraction": len(converged) / len(times),
    }
    if converged:
        summary.update(
            {
                "mean": statistics.fmean(converged),
                "median": statistics.median(converged),
                "min": min(converged),
                "max": max(converged),
            }
        )
    return summary
