"""Parameter sweeps and result aggregation for the experiment harness."""

from __future__ import annotations

import itertools
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from .tables import render_table

__all__ = [
    "ParameterSweep",
    "ExperimentResult",
    "aggregate_rows",
    "merge_row",
    "shard_bounds",
    "shard_items",
]


def shard_bounds(total: int, shard: int, shards: int) -> tuple[int, int]:
    """The ``[start, end)`` slice of shard ``shard`` out of ``shards``.

    The partition is contiguous and balanced: every shard gets
    ``total // shards`` items and the first ``total % shards`` shards get one
    extra.  Contiguity is what makes the partition *order-stable*: the
    concatenation of shards ``0 .. shards-1`` is exactly the original
    sequence, so merging sharded output back into input order is plain
    concatenation — no per-item bookkeeping.  This is the single audited
    code path under :meth:`ParameterSweep.slice`, the fabric chunk planner,
    and the experiment CLI's ``--shard i/N``.
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    if not 0 <= shard < shards:
        raise ValueError(f"shard must be in [0, {shards}), got {shard}")
    base, extra = divmod(total, shards)
    start = shard * base + min(shard, extra)
    return start, start + base + (1 if shard < extra else 0)


def shard_items(items: Sequence[Any], shard: int, shards: int) -> list:
    """The items of shard ``shard`` out of ``shards`` (see :func:`shard_bounds`)."""
    start, end = shard_bounds(len(items), shard, shards)
    return list(items[start:end])


def merge_row(config: Mapping[str, Any], outcome: Mapping[str, Any]) -> dict:
    """One result row: the config (minus bookkeeping) merged with the outcome."""
    row = {key: value for key, value in config.items() if key != "repetition"}
    row.update(outcome)
    return row


@dataclass(frozen=True)
class ExperimentResult:
    """The outcome of one experiment: raw rows, a rendered table, a summary."""

    experiment: str
    description: str
    rows: tuple[dict, ...]
    summary: dict = field(default_factory=dict)
    columns: tuple[str, ...] | None = None

    def table(self) -> str:
        """Render the result rows as an ASCII table."""
        return render_table(
            self.rows,
            columns=list(self.columns) if self.columns else None,
            title=f"{self.experiment}: {self.description}",
        )


class ParameterSweep:
    """Cartesian sweep over named parameter lists, with repetitions.

    >>> sweep = ParameterSweep({"n": [3, 5]}, repetitions=2)
    >>> configs = list(sweep)   # four configs, each with a distinct seed
    """

    def __init__(
        self,
        parameters: Mapping[str, Sequence[Any]],
        *,
        repetitions: int = 1,
        base_seed: int = 0,
    ) -> None:
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        self._parameters = {name: list(values) for name, values in parameters.items()}
        self._repetitions = repetitions
        self._base_seed = base_seed

    def __iter__(self):
        names = list(self._parameters)
        combinations = itertools.product(*(self._parameters[name] for name in names))
        for combo_index, combination in enumerate(combinations):
            for repetition in range(self._repetitions):
                config = dict(zip(names, combination))
                config["seed"] = self._base_seed + combo_index * self._repetitions + repetition
                config["repetition"] = repetition
                yield config

    def slice(self, shard: int, shards: int) -> list[dict]:
        """The configurations of shard ``shard`` out of ``shards``.

        The shards are disjoint, their union (in shard order) is exactly
        ``list(self)``, and each preserves the sweep's iteration order — the
        guarantees the fabric planner and ``--shard i/N`` both rely on; see
        :func:`shard_bounds` for the partition rule.
        """
        return shard_items(list(self), shard, shards)

    @property
    def total_runs(self) -> int:
        """The number of configurations the sweep yields (combos × reps)."""
        combos = 1
        for values in self._parameters.values():
            combos *= len(values)
        return combos * self._repetitions

    def __len__(self) -> int:
        return self.total_runs

    def run(self, run_one: Callable[[dict], dict], *, executor: Any | None = None) -> list[dict]:
        """Run ``run_one`` for every configuration and collect result rows.

        The configuration (minus the bookkeeping ``repetition`` field) is
        merged into each result row so downstream aggregation can group on it.
        ``executor`` (any object with ``map(fn, items) -> list``, e.g. a
        :class:`repro.runtime.ParallelExecutor`) fans the configurations out;
        rows always come back in sweep order.
        """
        configs = [dict(config) for config in self]
        # run_one always receives a copy, so a mutating run_one cannot
        # corrupt the merged rows (or differ between serial and parallel).
        if executor is None:
            outcomes = [run_one(dict(config)) for config in configs]
        else:
            outcomes = executor.map(run_one, [dict(config) for config in configs])
        return [merge_row(config, outcome) for config, outcome in zip(configs, outcomes)]


def aggregate_rows(
    rows: Iterable[Mapping[str, Any]],
    *,
    group_by: Sequence[str],
    metrics: Sequence[str],
    aggregator: Callable[[Sequence[float]], float] = statistics.fmean,
) -> list[dict]:
    """Group rows by the given keys and aggregate numeric metrics.

    Non-numeric or missing metric values are skipped; a group whose metric has
    no usable values reports ``None`` for it.  Boolean metrics are averaged as
    rates (True → 1.0), which is how the experiments report success fractions.
    """
    grouped: dict[tuple, list[Mapping[str, Any]]] = {}
    for row in rows:
        key = tuple(row.get(column) for column in group_by)
        grouped.setdefault(key, []).append(row)

    aggregated: list[dict] = []
    for key, members in grouped.items():
        entry: dict[str, Any] = dict(zip(group_by, key))
        entry["runs"] = len(members)
        for metric in metrics:
            values = [
                float(member[metric])
                for member in members
                if isinstance(member.get(metric), (int, float, bool))
            ]
            entry[metric] = aggregator(values) if values else None
        aggregated.append(entry)
    aggregated.sort(key=lambda entry: tuple(repr(entry[column]) for column in group_by))
    return aggregated
