"""Parameter sweeps and result aggregation for the experiment harness."""

from __future__ import annotations

import itertools
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from .tables import render_table

__all__ = ["ParameterSweep", "ExperimentResult", "aggregate_rows", "merge_row"]


def merge_row(config: Mapping[str, Any], outcome: Mapping[str, Any]) -> dict:
    """One result row: the config (minus bookkeeping) merged with the outcome."""
    row = {key: value for key, value in config.items() if key != "repetition"}
    row.update(outcome)
    return row


@dataclass(frozen=True)
class ExperimentResult:
    """The outcome of one experiment: raw rows, a rendered table, a summary."""

    experiment: str
    description: str
    rows: tuple[dict, ...]
    summary: dict = field(default_factory=dict)
    columns: tuple[str, ...] | None = None

    def table(self) -> str:
        """Render the result rows as an ASCII table."""
        return render_table(
            self.rows,
            columns=list(self.columns) if self.columns else None,
            title=f"{self.experiment}: {self.description}",
        )


class ParameterSweep:
    """Cartesian sweep over named parameter lists, with repetitions.

    >>> sweep = ParameterSweep({"n": [3, 5]}, repetitions=2)
    >>> configs = list(sweep)   # four configs, each with a distinct seed
    """

    def __init__(
        self,
        parameters: Mapping[str, Sequence[Any]],
        *,
        repetitions: int = 1,
        base_seed: int = 0,
    ) -> None:
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        self._parameters = {name: list(values) for name, values in parameters.items()}
        self._repetitions = repetitions
        self._base_seed = base_seed

    def __iter__(self):
        names = list(self._parameters)
        combinations = itertools.product(*(self._parameters[name] for name in names))
        for combo_index, combination in enumerate(combinations):
            for repetition in range(self._repetitions):
                config = dict(zip(names, combination))
                config["seed"] = self._base_seed + combo_index * self._repetitions + repetition
                config["repetition"] = repetition
                yield config

    @property
    def total_runs(self) -> int:
        """The number of configurations the sweep yields (combos × reps)."""
        combos = 1
        for values in self._parameters.values():
            combos *= len(values)
        return combos * self._repetitions

    def __len__(self) -> int:
        return self.total_runs

    def run(self, run_one: Callable[[dict], dict], *, executor: Any | None = None) -> list[dict]:
        """Run ``run_one`` for every configuration and collect result rows.

        The configuration (minus the bookkeeping ``repetition`` field) is
        merged into each result row so downstream aggregation can group on it.
        ``executor`` (any object with ``map(fn, items) -> list``, e.g. a
        :class:`repro.runtime.ParallelExecutor`) fans the configurations out;
        rows always come back in sweep order.
        """
        configs = [dict(config) for config in self]
        # run_one always receives a copy, so a mutating run_one cannot
        # corrupt the merged rows (or differ between serial and parallel).
        if executor is None:
            outcomes = [run_one(dict(config)) for config in configs]
        else:
            outcomes = executor.map(run_one, [dict(config) for config in configs])
        return [merge_row(config, outcome) for config, outcome in zip(configs, outcomes)]


def aggregate_rows(
    rows: Iterable[Mapping[str, Any]],
    *,
    group_by: Sequence[str],
    metrics: Sequence[str],
    aggregator: Callable[[Sequence[float]], float] = statistics.fmean,
) -> list[dict]:
    """Group rows by the given keys and aggregate numeric metrics.

    Non-numeric or missing metric values are skipped; a group whose metric has
    no usable values reports ``None`` for it.  Boolean metrics are averaged as
    rates (True → 1.0), which is how the experiments report success fractions.
    """
    grouped: dict[tuple, list[Mapping[str, Any]]] = {}
    for row in rows:
        key = tuple(row.get(column) for column in group_by)
        grouped.setdefault(key, []).append(row)

    aggregated: list[dict] = []
    for key, members in grouped.items():
        entry: dict[str, Any] = dict(zip(group_by, key))
        entry["runs"] = len(members)
        for metric in metrics:
            values = [
                float(member[metric])
                for member in members
                if isinstance(member.get(metric), (int, float, bool))
            ]
            entry[metric] = aggregator(values) if values else None
        aggregated.append(entry)
    aggregated.sort(key=lambda entry: tuple(repr(entry[column]) for column in group_by))
    return aggregated
