"""Run analysis: metrics extraction, convergence, sweeps, and table rendering."""

from .convergence import convergence_statistics, detector_convergence_time
from .metrics import ConsensusRunMetrics, consensus_metrics
from .runner import ExperimentResult, ParameterSweep, aggregate_rows
from .tables import format_value, render_series, render_table

__all__ = [
    "ConsensusRunMetrics",
    "ExperimentResult",
    "ParameterSweep",
    "aggregate_rows",
    "consensus_metrics",
    "convergence_statistics",
    "detector_convergence_time",
    "format_value",
    "render_series",
    "render_table",
]
