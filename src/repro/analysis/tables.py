"""Plain-text rendering of experiment tables and series.

The benchmarks and ``EXPERIMENTS.md`` present their results as fixed-width
ASCII tables — the closest a terminal gets to the paper's tables and figure
series.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = ["format_value", "render_table", "render_series"]


def format_value(value: Any) -> str:
    """Render one cell: floats get three significant decimals, None a dash."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "—"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dictionaries as a fixed-width table.

    Column order follows ``columns`` when given, otherwise the key order of
    the first row (later-only keys are appended).
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
        for row in rows[1:]:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered_rows = [[format_value(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered_rows))
        for index, column in enumerate(columns)
    ]
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in rendered_rows
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)


def render_series(
    points: Iterable[tuple[Any, Any]],
    *,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Render an ``(x, y)`` series as a two-column table (a textual "figure")."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return render_table(rows, columns=[x_label, y_label], title=title)
