"""Simulated client populations for the replicated KV service.

Clients are ordinary simulator processes: their think-times and arrivals draw
from the per-process deterministic RNG streams, their requests ride the same
(possibly lossy, partitioned, adversarial) links as the replication protocol,
and they crash if the crash schedule says so.  That is the point — the paper's
fault envelope applies to the *service*, traffic included, unchanged.

Two load shapes:

* **closed loop** — each client keeps at most one request outstanding and
  thinks (uniform around ``think_time``) between completions.  Offered load
  self-throttles when the service slows down.
* **open loop** — arrivals are a Poisson process of the configured ``rate``;
  requests are fired regardless of outstanding ones.  Offered load does not
  yield, which is how overload and staleness become visible.

Key choice is uniform or Zipf-skewed over a fixed key space; the operation
mix is configurable and defaults to a read-heavy blend.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from random import Random
from typing import Any

from ...sim.process import ProcessContext
from .commands import encode_command

__all__ = ["ClientLoad", "KVClientProgram", "DEFAULT_MIX"]

#: Read-heavy default operation mix.
DEFAULT_MIX = {"GET": 0.50, "SET": 0.30, "CAS": 0.12, "DEL": 0.08}

#: Fixed sampling order so RNG consumption is independent of dict ordering.
_OP_ORDER = ("GET", "SET", "CAS", "DEL")


@dataclass(frozen=True)
class ClientLoad:
    """The shape of one client's traffic.

    ``loop`` selects closed- (``think_time``) or open-loop (``rate``)
    behaviour; ``skew`` selects the key distribution over ``key_space`` keys.
    """

    ops: int = 10
    loop: str = "closed"
    think_time: float = 2.0
    rate: float = 0.5
    key_space: int = 8
    skew: str = "uniform"
    zipf_s: float = 1.2
    mix: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))

    def __post_init__(self) -> None:
        if self.loop not in ("closed", "open"):
            raise ValueError(f"loop must be 'closed' or 'open', got {self.loop!r}")
        if self.skew not in ("uniform", "zipf"):
            raise ValueError(f"skew must be 'uniform' or 'zipf', got {self.skew!r}")
        if self.ops < 0:
            raise ValueError("ops must be non-negative")
        if self.key_space < 1:
            raise ValueError("key_space must be at least 1")
        if self.think_time < 0 or self.rate <= 0:
            raise ValueError("think_time must be >= 0 and rate > 0")
        unknown = set(self.mix) - set(_OP_ORDER)
        if unknown:
            raise ValueError(f"unknown operations in mix: {sorted(unknown)}")
        if not any(self.mix.get(op, 0.0) > 0 for op in _OP_ORDER):
            raise ValueError("operation mix has no positive weight")

    def key_sampler(self) -> "KeySampler":
        return KeySampler(self)


class KeySampler:
    """Deterministic key sampling for one load shape."""

    __slots__ = ("key_space", "_cdf")

    def __init__(self, load: ClientLoad) -> None:
        self.key_space = load.key_space
        self._cdf: list[float] | None = None
        if load.skew == "zipf":
            weights = [1.0 / (rank**load.zipf_s) for rank in range(1, load.key_space + 1)]
            total = sum(weights)
            cdf, running = [], 0.0
            for weight in weights:
                running += weight / total
                cdf.append(running)
            cdf[-1] = 1.0
            self._cdf = cdf

    def sample(self, rng: Random) -> str:
        if self._cdf is None:
            index = rng.randrange(self.key_space)
        else:
            index = bisect_left(self._cdf, rng.random())
        return f"k{index}"


def sample_operation(rng: Random, mix: dict[str, float]) -> str:
    """Draw one operation kind from ``mix`` (fixed order, one RNG draw)."""
    total = sum(mix.get(op, 0.0) for op in _OP_ORDER)
    draw = rng.random() * total
    running = 0.0
    for op in _OP_ORDER:
        running += mix.get(op, 0.0)
        if draw <= running:
            return op
    return _OP_ORDER[-1]


class KVClientProgram:
    """One client process issuing :class:`ClientLoad`-shaped traffic."""

    def __init__(self, *, client_name: str, load: ClientLoad) -> None:
        self.client_name = client_name
        self.load = load
        self.issued = 0
        self.completed = 0
        self._outstanding: dict[str, tuple[str, str, tuple[Any, ...]]] = {}
        self._observed: dict[str, Any] = {}
        self._keys = load.key_sampler()

    @property
    def finished(self) -> bool:
        """Every operation issued and answered (drives ``stop_when``)."""
        return self.issued >= self.load.ops and not self._outstanding

    def setup(self, ctx: ProcessContext) -> None:
        ctx.on("KV_REPLY", lambda msg: self._on_reply(ctx, msg))
        ctx.spawn(lambda: self._run(ctx), name=f"{self.client_name}-loop")

    def _run(self, ctx: ProcessContext):
        load = self.load
        for index in range(load.ops):
            if load.loop == "closed":
                if load.think_time > 0:
                    yield ctx.sleep(ctx.random.uniform(0.0, 2.0 * load.think_time))
                request_id = self._issue(ctx, index)
                yield ctx.wait_until(
                    lambda request_id=request_id: request_id not in self._outstanding
                )
            else:
                yield ctx.sleep(ctx.random.expovariate(load.rate))
                self._issue(ctx, index)

    def _issue(self, ctx: ProcessContext, index: int) -> str:
        rng = ctx.random
        request_id = f"{self.client_name}:{index}"
        op = sample_operation(rng, self.load.mix)
        key = self._keys.sample(rng)
        if op == "SET":
            args: tuple[Any, ...] = (f"v-{self.client_name}-{index}",)
        elif op == "CAS":
            args = (self._observed.get(key), f"v-{self.client_name}-{index}")
        else:
            args = ()
        command = encode_command(request_id, op, key, *args)
        self.issued += 1
        self._outstanding[request_id] = (op, key, args)
        ctx.record("kv.op", (request_id, op, key, args))
        ctx.broadcast("KV_REQUEST", request_id=request_id, command=command)
        return request_id

    def _on_reply(self, ctx: ProcessContext, message: dict) -> None:
        request_id = message["request_id"]
        inflight = self._outstanding.pop(request_id, None)
        if inflight is None:
            return  # a duplicate reply from another replica
        self.completed += 1
        status, value = message["status"], message["value"]
        ctx.record("kv.done", (request_id, status, value, message["version"]))
        # Track the freshest value this client has seen per key, so CAS
        # expectations are realistic rather than uniformly stale.
        op, key, args = inflight
        if op == "GET":
            self._observed[key] = value
        elif op == "SET" and status == "ok":
            self._observed[key] = args[0]
        elif op == "CAS":
            self._observed[key] = args[1] if status == "ok" else value
        elif op == "DEL" and status == "ok":
            self._observed[key] = None
