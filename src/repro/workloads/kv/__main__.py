"""Run one certified KV scenario from the command line.

``python -m repro.workloads.kv`` builds a quick scenario, runs it, prints the
service metrics and the determinism digest, and exits non-zero unless the
client history is linearizable — which is how CI keeps a hard correctness
gate on the service.
"""

from __future__ import annotations

import argparse
import sys

from ...runtime import Engine, lossy, minority, scenario


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.kv",
        description="Run one replicated-KV scenario and certify linearizability.",
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--ops", type=int, default=6, help="operations per client")
    parser.add_argument("--skew", choices=("uniform", "zipf"), default="uniform")
    parser.add_argument("--read-mode", choices=("log", "local"), default="log")
    parser.add_argument(
        "--fault",
        choices=("none", "crash", "lossy"),
        default="none",
        help="fault envelope: crash one replica, or 5%% message loss",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None, help="executor parallelism")
    args = parser.parse_args(argv)

    builder = (
        scenario(f"kv-cli-{args.fault}")
        .homonyms([2, 2, 1])
        .detectors("HOmega", stabilization=10.0)
        .kv(
            clients=args.clients,
            ops_per_client=args.ops,
            skew=args.skew,
            read_mode=args.read_mode,
            think_time=1.0,
            key_space=6,
        )
        .horizon(600.0)
        .seed(args.seed)
    )
    if args.fault == "crash":
        builder = builder.crashes(minority(at=12.0, count=1))
    elif args.fault == "lossy":
        builder = builder.network(lossy(0.05)).adversarial()
    spec = builder.build()

    with Engine(jobs=args.jobs) as engine:
        record = engine.run(spec)

    print(f"scenario: {spec.name} (seed={spec.seed})  digest: {record.digest}")
    for key in sorted(record.metrics):
        print(f"  {key}: {record.metrics[key]}")
    if not record.metrics["linearizable"]:
        print("LINEARIZABILITY VIOLATED", file=sys.stderr)
        return 1
    print("linearizability: certified")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
