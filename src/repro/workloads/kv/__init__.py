"""A replicated key-value service workload over the paper's consensus.

This package promotes ``examples/replicated_log.py`` into a real subsystem:
a :class:`ReplicatedKV` state machine replicated through repeated consensus
instances (slot-per-instance, any registry algorithm), simulated open- and
closed-loop client populations with configurable key skew, an offline
linearizability checker, and client-visible service metrics (latency
percentiles, throughput, staleness).

The declarative entry point is the scenario builder's ``.kv()`` section::

    from repro.runtime import Engine, scenario

    spec = (
        scenario("kv-demo")
        .homonyms([2, 2, 1])
        .detectors("HOmega", stabilization=10.0)
        .kv(clients=4, ops_per_client=6, skew="zipf")
        .horizon(600.0)
        .build()
    )
    record = Engine().run(spec)
    assert record.metrics["linearizable"]

``python -m repro.workloads.kv`` runs one quick certified scenario from the
command line and exits non-zero unless the history linearizes (the CI gate).
"""

from .clients import DEFAULT_MIX, ClientLoad, KVClientProgram
from .commands import ApplyResult, ReplicatedKV, decode_command, encode_command
from .linearizability import (
    KVLinearizabilityResult,
    KVOperation,
    check_history,
    check_kv_linearizable,
    history_from_trace,
)
from .metrics import kv_metrics, percentile
from .replica import ReplicatedKVProgram
from .runner import execute_kv_spec

__all__ = [
    "ApplyResult",
    "ClientLoad",
    "DEFAULT_MIX",
    "KVClientProgram",
    "KVLinearizabilityResult",
    "KVOperation",
    "ReplicatedKV",
    "ReplicatedKVProgram",
    "check_history",
    "check_kv_linearizable",
    "decode_command",
    "encode_command",
    "execute_kv_spec",
    "history_from_trace",
    "kv_metrics",
    "percentile",
]
