"""An offline linearizability checker for KV run traces.

The checker is a Wing & Gong-style search: for each key independently (the
store has no cross-key operations, so the history is linearizable iff every
per-key sub-history is), try to build a legal sequential order of the
operations that respects real-time precedence — an operation whose response
preceded another's invocation must be linearized first.

The search is exponential in the worst case but small in practice because the
service serializes writes through consensus; memoizing on the
``(done-operations bitmask, store state)`` pair collapses the usual blow-up.
A per-key state budget turns pathological instances into an explicit
``undecided`` verdict instead of an endless search — and ``undecided`` fails
the ``ok`` flag, so a certification gate stays conservative.

Incomplete operations (invoked, never answered — the client crashed or the
run hit its horizon) are handled the standard way: a mutating operation with
no response *may* have taken effect at any point after its invocation, or
never; an unanswered read constrains nothing and is dropped.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any

from ...sim.trace import RunTrace

__all__ = [
    "KVOperation",
    "KVLinearizabilityResult",
    "check_history",
    "check_kv_linearizable",
    "history_from_trace",
]

#: Sentinel store state for an absent key (clients never write ``None``).
ABSENT = None


@dataclass(frozen=True, slots=True)
class KVOperation:
    """One client operation with its observed invoke/response interval."""

    request_id: str
    op: str
    key: str
    args: tuple[Any, ...]
    invoke: float
    response: float | None
    status: str | None
    value: Any
    version: int | None

    @property
    def completed(self) -> bool:
        return self.response is not None


@dataclass(frozen=True, slots=True)
class KVLinearizabilityResult:
    """The verdict; duck-types the ``CHECKS`` result protocol (``ok`` + time)."""

    ok: bool
    violations: tuple[str, ...]
    undecided: tuple[str, ...]
    ops_checked: int
    states_explored: int
    stabilization_time: float | None = None


def history_from_trace(trace: RunTrace) -> list[KVOperation]:
    """Pair ``kv.op`` invocations with ``kv.done`` responses across all clients."""
    invokes: dict[str, tuple[float, str, str, tuple[Any, ...]]] = {}
    responses: dict[str, tuple[float, str, Any, int | None]] = {}
    for process in trace.processes_with_records():
        for entry in trace.records_of(process, "kv.op"):
            request_id, op, key, args = entry.value
            invokes[request_id] = (entry.time, op, key, tuple(args))
        for entry in trace.records_of(process, "kv.done"):
            request_id, status, value, version = entry.value
            if request_id not in responses:
                responses[request_id] = (entry.time, status, value, version)
    history = []
    for request_id, (invoke, op, key, args) in invokes.items():
        response = responses.get(request_id)
        history.append(
            KVOperation(
                request_id=request_id,
                op=op,
                key=key,
                args=args,
                invoke=invoke,
                response=response[0] if response else None,
                status=response[1] if response else None,
                value=response[2] if response else None,
                version=response[3] if response else None,
            )
        )
    history.sort(key=lambda operation: (operation.invoke, operation.request_id))
    return history


def _step(state: Any, operation: KVOperation) -> tuple[bool, Any]:
    """Apply ``operation`` to the per-key ``state``; ``(legal, new_state)``.

    For completed operations the recorded status/value must match what the
    state machine would produce; for incomplete mutations the effect is taken
    unconditionally (the caller also explores the never-took-effect branch).
    """
    op, args = operation.op, operation.args
    if op == "GET":
        if operation.completed and operation.value != state:
            return False, state
        return True, state
    if op == "SET":
        return True, args[0]
    if op == "CAS":
        expected, new = args
        if not operation.completed:
            # An unanswered CAS only takes effect if its expectation held.
            if state != expected:
                return False, state
            return True, new
        if operation.status == "ok":
            if state != expected:
                return False, state
            return True, new
        return (state != expected and operation.value == state), state
    if op == "DEL":
        if not operation.completed:
            return True, ABSENT
        if operation.status == "ok":
            if state is ABSENT:
                return False, state
            return True, ABSENT
        return state is ABSENT, state
    raise ValueError(f"unknown KV operation: {op!r}")


def _check_key(
    operations: list[KVOperation], max_states: int
) -> tuple[str, int]:
    """Search one key's sub-history; returns ``(verdict, states_explored)``.

    ``verdict`` is ``"ok"``, ``"violation"``, or ``"undecided"`` (budget hit).
    """
    operations = [
        operation
        for operation in operations
        if operation.completed or operation.op != "GET"
    ]
    if not operations:
        return "ok", 0
    count = len(operations)
    completed_mask = 0
    for index, operation in enumerate(operations):
        if operation.completed:
            completed_mask |= 1 << index
    seen: set[tuple[int, Any]] = set()
    stack: list[tuple[int, Any]] = [(0, ABSENT)]
    while stack:
        if len(seen) > max_states:
            return "undecided", len(seen)
        done, state = stack.pop()
        if (done & completed_mask) == completed_mask:
            return "ok", len(seen)
        if (done, state) in seen:
            continue
        seen.add((done, state))
        # An operation may be linearized next only if its invocation does not
        # follow the response of some other remaining *completed* operation.
        earliest_response = min(
            (
                operations[index].response
                for index in range(count)
                if not done & (1 << index) and operations[index].completed
            ),
            default=None,
        )
        for index in range(count):
            bit = 1 << index
            if done & bit:
                continue
            operation = operations[index]
            if earliest_response is not None and operation.invoke > earliest_response:
                continue
            if not operation.completed:
                # Branch 1: the lost mutation never takes effect.
                stack.append((done | bit, state))
            legal, new_state = _step(state, operation)
            if legal:
                stack.append((done | bit, new_state))
    return "violation", len(seen)


def check_history(
    history: list[KVOperation], *, max_states_per_key: int = 200_000
) -> KVLinearizabilityResult:
    """Check a full multi-key history key by key."""
    by_key: dict[str, list[KVOperation]] = defaultdict(list)
    for operation in history:
        by_key[operation.key].append(operation)
    violations: list[str] = []
    undecided: list[str] = []
    states_total = 0
    for key in sorted(by_key):
        verdict, states = _check_key(by_key[key], max_states_per_key)
        states_total += states
        if verdict == "violation":
            violations.append(key)
        elif verdict == "undecided":
            undecided.append(key)
    return KVLinearizabilityResult(
        ok=not violations and not undecided,
        violations=tuple(violations),
        undecided=tuple(undecided),
        ops_checked=len(history),
        states_explored=states_total,
    )


def check_kv_linearizable(trace: RunTrace, pattern: Any = None) -> KVLinearizabilityResult:
    """Registry-compatible adapter: certify the KV history of ``trace``."""
    del pattern  # real-time order comes from the trace, not the failure pattern
    return check_history(history_from_trace(trace))
