"""Commands and the replicated key-value state machine.

Commands travel three hops — client → replica (as a ``KV_REQUEST``), replica →
consensus (as a slot proposal), consensus → every replica's store (as the
committed slot value) — so they are encoded as compact JSON strings: hashable,
picklable, deterministic, and *orderable*, which matters because the paper's
coordination phase breaks leader ties with ``min()`` over proposals.

:class:`ReplicatedKV` is the deterministic state machine each replica replays
the committed log into.  Applying the same command sequence always yields the
same store, and the per-request-id dedupe table makes replay idempotent: a
command that reaches the log twice (clients re-broadcast, consensus instances
can adopt an already-committed proposal) mutates the store only once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ApplyResult",
    "ReplicatedKV",
    "decode_command",
    "encode_command",
]

#: The operations the service understands.
OPERATIONS = ("GET", "SET", "CAS", "DEL")


def encode_command(request_id: str, op: str, key: str, *args: Any) -> str:
    """Encode one client command as a canonical JSON string."""
    if op not in OPERATIONS:
        raise ValueError(f"unknown KV operation: {op!r}")
    return json.dumps([request_id, op, key, *args], separators=(",", ":"))


def decode_command(command: str) -> tuple[str, str, str, tuple[Any, ...]]:
    """Decode a command string into ``(request_id, op, key, args)``."""
    request_id, op, key, *args = json.loads(command)
    return request_id, op, key, tuple(args)


@dataclass(frozen=True, slots=True)
class ApplyResult:
    """The client-visible outcome of applying one command.

    ``status`` is ``"ok"`` for successful operations, ``"fail"`` for a CAS
    whose expectation did not hold, and ``"miss"`` for deleting an absent key.
    ``version`` is the key's per-key monotone version after the command.
    """

    status: str
    value: Any
    version: int


class ReplicatedKV:
    """A deterministic key-value store with per-key versions and dedupe."""

    __slots__ = ("_store", "_versions", "_applied", "commands_applied")

    def __init__(self) -> None:
        self._store: dict[str, Any] = {}
        self._versions: dict[str, int] = {}
        self._applied: dict[str, ApplyResult] = {}
        self.commands_applied = 0

    def read(self, key: str) -> tuple[Any, int]:
        """A local (possibly stale) read: ``(value-or-None, version)``."""
        return self._store.get(key), self._versions.get(key, 0)

    def result_for(self, request_id: str) -> ApplyResult | None:
        """The recorded outcome of an already-applied request, if any."""
        return self._applied.get(request_id)

    def apply(self, command: str) -> ApplyResult | None:
        """Apply one committed command; ``None`` if it was a duplicate."""
        request_id, op, key, args = decode_command(command)
        if request_id in self._applied:
            return None
        result = self._execute(op, key, args)
        self._applied[request_id] = result
        self.commands_applied += 1
        return result

    def _execute(self, op: str, key: str, args: tuple[Any, ...]) -> ApplyResult:
        version = self._versions.get(key, 0)
        if op == "GET":
            return ApplyResult("ok", self._store.get(key), version)
        if op == "SET":
            (value,) = args
            self._store[key] = value
            self._versions[key] = version + 1
            return ApplyResult("ok", value, version + 1)
        if op == "CAS":
            expected, new = args
            if self._store.get(key) != expected:
                return ApplyResult("fail", self._store.get(key), version)
            self._store[key] = new
            self._versions[key] = version + 1
            return ApplyResult("ok", new, version + 1)
        if op == "DEL":
            if key not in self._store:
                return ApplyResult("miss", None, version)
            del self._store[key]
            self._versions[key] = version + 1
            return ApplyResult("ok", None, version + 1)
        raise ValueError(f"unknown KV operation: {op!r}")

    def snapshot(self) -> dict[str, Any]:
        """A copy of the live store (for assertions and debugging)."""
        return dict(self._store)

    def __len__(self) -> int:
        return len(self._store)
