"""Materialise and execute a KV scenario spec (the engine's KV branch).

:func:`execute_kv_spec` mirrors :func:`repro.runtime.engine.execute_spec` for
specs with a ``kv`` section: the scenario's membership becomes the *replica
group* (homonymy, crash schedule, and the chosen algorithm's assumptions all
judged against it), and ``kv.clients`` uniquely-named client processes are
appended to the simulated system.  Replicas and clients share one event
queue, one link model, and one crash schedule scope, so the full fault
envelope (loss, partitions, jitter, crashes, detector stabilization) applies
to the service end to end.

Detector oracles are *replica-scoped*: the spec's detector factories are
wrapped so each oracle sees only the replica membership and the replica
failure pattern — clients are traffic sources, not consensus participants,
and must not dilute leader election or quorum ground truth.  The engine
still attaches a (trivial) view to client processes, which the oracles
tolerate by construction.

Everything here is module-level and picklable, so KV specs fan out across
the pool executors exactly like consensus specs.
"""

from __future__ import annotations

from typing import Any, Mapping

from ...membership import Membership
from ...sim import Simulation, build_system
from ...sim.failures import FailurePattern
from ...sim.system import DetectorServices
from .clients import ClientLoad, KVClientProgram
from .metrics import kv_metrics
from .replica import ReplicatedKVProgram

__all__ = ["execute_kv_spec"]


class _RegistryConsensusFactory:
    """Builds one consensus instance per log slot from a registry entry."""

    def __init__(self, consensus: str, membership: Membership, params: Mapping[str, Any]):
        from ...runtime.registry import CONSENSUS

        self._entry = CONSENSUS.resolve(consensus)
        self._membership = membership
        self._params = dict(params)

    def __call__(self, proposal: Any):
        program = self._entry.build(proposal, self._membership, self._params)
        # Per-slot instances must not spam the trace with per-round records
        # (hundreds of slots per run) nor claim the process-level decision.
        program.record_outputs = False
        return program


class _ReplicaScopedDetector:
    """Wraps a detector factory so the oracle sees only the replica group."""

    def __init__(self, factory, membership: Membership, pattern: FailurePattern):
        self._factory = factory
        self._membership = membership
        self._pattern = pattern

    def __call__(self, services: DetectorServices):
        scoped = DetectorServices(
            membership=self._membership,
            failure_pattern=self._pattern,
            clock=services.clock,
            rng_streams=services.rng_streams,
            schedule=services.schedule,
            poke_all=services.poke_all,
        )
        return self._factory(scoped)


def execute_kv_spec(spec) -> "Any":
    """Run one KV scenario and return its :class:`~repro.runtime.engine.RunRecord`."""
    from ...runtime.engine import RunRecord
    from ...runtime.registry import CHECKS, DETECTORS

    kv = spec.kv
    replica_membership = spec.membership.build()
    replica_count = replica_membership.size
    replica_identities = [
        replica_membership.identity_of(process) for process in replica_membership.processes
    ]
    client_names = [f"client-{index}" for index in range(kv.clients)]
    full_membership = Membership.of(replica_identities + client_names)

    # The crash schedule is authored over the replica group (clients are not
    # crash targets); replica pids keep their indices in the full membership,
    # so the same schedule is valid for both.
    schedule = spec.crashes.build(replica_membership)
    replica_pattern = FailurePattern(replica_membership, schedule)

    consensus_factory = _RegistryConsensusFactory(
        kv.consensus, replica_membership, kv.consensus_params
    )
    load_options: dict[str, Any] = dict(
        ops=kv.ops_per_client,
        loop=kv.loop,
        think_time=kv.think_time,
        rate=kv.rate,
        key_space=kv.key_space,
        skew=kv.skew,
        zipf_s=kv.zipf_s,
    )
    if kv.mix is not None:
        load_options["mix"] = dict(kv.mix)
    load = ClientLoad(**load_options)

    clients: list[KVClientProgram] = []

    def factory(pid, identity):
        if pid.index < replica_count:
            return ReplicatedKVProgram(
                consensus_factory=consensus_factory,
                read_mode=kv.read_mode,
                sync_period=kv.sync_period,
                max_slots=kv.max_slots,
            )
        program = KVClientProgram(client_name=str(identity), load=load)
        clients.append(program)
        return program

    detectors = {
        detector.name: _ReplicaScopedDetector(
            DETECTORS.resolve(detector.name)(detector.params),
            replica_membership,
            replica_pattern,
        )
        for detector in spec.detectors
    }

    system = build_system(
        membership=full_membership,
        timing=spec.timing.build(),
        program_factory=factory,
        crash_schedule=schedule,
        detectors=detectors,
        links=None if spec.network.is_reliable else spec.network.build(),
        seed=spec.seed,
        name=spec.name,
    )
    simulation = Simulation(system)
    trace = simulation.run(
        until=spec.horizon,
        stop_when=lambda sim: all(client.finished for client in clients),
    )

    metrics = kv_metrics(trace)
    pattern = FailurePattern(full_membership, schedule)
    for check in spec.checks:
        result = CHECKS.resolve(check)(trace, pattern)
        metrics[f"{check}_ok"] = result.ok
        metrics[f"{check}_time"] = result.stabilization_time
    return RunRecord(
        scenario=spec.name,
        seed=spec.seed,
        config=spec.to_dict(),
        metrics=metrics,
        digest=simulation.digest,
    )
