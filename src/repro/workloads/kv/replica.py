"""The replica program: a consensus-driven replicated log feeding a KV store.

Replication is slot-per-instance state-machine replication: slot ``k`` of the
log is decided by a fresh consensus instance shared by all replicas, built
from a pluggable factory (any of the paper's algorithms).  Each instance runs
inside a :class:`_SlotContext` — a thin proxy over the real process context
that suffixes every message kind with ``#s{k}``, so the phase messages of
concurrent instances cannot cross-talk, and that redirects ``decide`` into
the replica's commit callback (the real ``ctx.decide`` records only a
process's *first* decision, which would swallow every slot after the first).

A replica proposes its oldest pending client command for the next slot,
waits for the slot to commit, applies the committed command to its local
:class:`~repro.workloads.kv.commands.ReplicatedKV` store in log order, and
broadcasts the reply.  Because clients broadcast requests to everyone, the
replicas' pending queues agree up to message loss, and consensus picks one
proposal per slot.

The paper's algorithms do not retransmit, so a lossy link can starve a
replica of a slot's entire phase traffic.  The ``KV_SYNC`` anti-entropy task
bounds that: replicas periodically announce how far they have applied, and
any replica that is ahead re-broadcasts the missing committed slots as
``KV_COMMIT`` messages, which lagging replicas can consume *without* having
started the slot's instance.  Losses during an undecided slot still stall
exactly as the paper's termination analysis (E9) predicts.
"""

from __future__ import annotations

from typing import Any, Callable

from ...sim.message import Message
from ...sim.process import ProcessContext, ProcessProgram
from .commands import ReplicatedKV, decode_command

__all__ = ["ReplicatedKVProgram"]

#: How many committed slots one KV_SYNC round re-broadcasts at most.
_SYNC_BATCH = 8


class _SlotContext:
    """A per-slot proxy over :class:`ProcessContext` for consensus instances.

    Message kinds gain a ``#s{slot}`` suffix (instance isolation), spawned
    task names gain a slot prefix (debuggability), per-instance trace records
    are namespaced, and ``decide`` feeds the replica's commit callback instead
    of the process-level decision slot.
    """

    __slots__ = ("_ctx", "_slot", "_decide_cb")

    def __init__(
        self, ctx: ProcessContext, slot: int, decide_cb: Callable[[int, Any], None]
    ) -> None:
        self._ctx = ctx
        self._slot = slot
        self._decide_cb = decide_cb

    # -- scoped communication -------------------------------------------
    def broadcast(self, kind: str, **fields: Any) -> None:
        self._ctx.broadcast(f"{kind}#s{self._slot}", **fields)

    def on(self, kind: str, handler: Callable[[Message], None]) -> None:
        self._ctx.on(f"{kind}#s{self._slot}", handler)

    def spawn(self, task: Any, *, name: str = "") -> None:
        self._ctx.spawn(task, name=f"s{self._slot}-{name or 'task'}")

    # -- scoped trace output --------------------------------------------
    def record(self, key: str, value: Any) -> None:
        self._ctx.record(f"kv.s{self._slot}.{key}", value)

    def decide(self, value: Any) -> None:
        self._decide_cb(self._slot, value)

    # -- plain delegation -------------------------------------------------
    @property
    def identity(self):
        return self._ctx.identity

    @property
    def now(self):
        return self._ctx.now

    @property
    def random(self):
        return self._ctx.random

    def sleep(self, duration):
        return self._ctx.sleep(duration)

    def wait_until(self, predicate):
        return self._ctx.wait_until(predicate)

    def next_synchronous_step(self):
        return self._ctx.next_synchronous_step()

    def detector(self, name: str):
        return self._ctx.detector(name)

    def has_detector(self, name: str) -> bool:
        return self._ctx.has_detector(name)

    def attach_detector(self, name: str, view: Any) -> None:
        self._ctx.attach_detector(name, view)


class ReplicatedKVProgram(ProcessProgram):
    """One replica of the consensus-replicated KV service."""

    def __init__(
        self,
        *,
        consensus_factory: Callable[[Any], Any],
        read_mode: str = "log",
        sync_period: float = 10.0,
        max_slots: int = 4096,
    ) -> None:
        if read_mode not in ("log", "local"):
            raise ValueError(f"read_mode must be 'log' or 'local', got {read_mode!r}")
        self._factory = consensus_factory
        self.read_mode = read_mode
        self.sync_period = sync_period
        self.max_slots = max_slots
        self.store = ReplicatedKV()
        self.log: dict[int, str] = {}
        self.applied_slots = 0
        self._pending: dict[str, str] = {}  # request_id -> command, FIFO

    def setup(self, ctx: ProcessContext) -> None:
        ctx.on("KV_REQUEST", lambda msg: self._on_request(ctx, msg))
        ctx.on("KV_SYNC", lambda msg: self._on_sync(ctx, msg))
        ctx.on("KV_COMMIT", lambda msg: self._commit(msg["slot"], msg["value"]))
        ctx.spawn(lambda: self._replication_loop(ctx), name="kv-replication")
        if self.sync_period > 0:
            ctx.spawn(lambda: self._sync_loop(ctx), name="kv-sync")

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------
    def _on_request(self, ctx: ProcessContext, message: Message) -> None:
        request_id, command = message["request_id"], message["command"]
        previous = self.store.result_for(request_id)
        if previous is not None:
            self._reply(ctx, request_id, previous)
            return
        _, op, key, _args = decode_command(command)
        if op == "GET" and self.read_mode == "local":
            value, version = self.store.read(key)
            ctx.record("kv.local_read", (request_id, key, version))
            ctx.broadcast(
                "KV_REPLY", request_id=request_id, status="ok", value=value, version=version
            )
            return
        self._pending.setdefault(request_id, command)

    # ------------------------------------------------------------------
    # Replication (Task "kv-replication")
    # ------------------------------------------------------------------
    def _replication_loop(self, ctx: ProcessContext):
        while self.applied_slots < self.max_slots:
            slot = self.applied_slots
            yield ctx.wait_until(
                lambda slot=slot: slot in self.log or bool(self._pending)
            )
            if slot not in self.log:
                proposal = next(iter(self._pending.values()))
                instance = self._factory(proposal)
                instance.record_outputs = False
                instance.setup(_SlotContext(ctx, slot, self._commit))
                yield ctx.wait_until(lambda slot=slot: slot in self.log)
            self._apply(ctx, slot)

    def _commit(self, slot: int, value: str) -> None:
        # First commit wins; consensus agreement makes later ones identical.
        self.log.setdefault(slot, value)

    def _apply(self, ctx: ProcessContext, slot: int) -> None:
        command = self.log[slot]
        request_id, _op, _key, _args = decode_command(command)
        self._pending.pop(request_id, None)
        result = self.store.apply(command)
        self.applied_slots += 1
        ctx.record("kv.commit", (slot, command))
        if result is not None:
            self._reply(ctx, request_id, result)

    def _reply(self, ctx: ProcessContext, request_id: str, result) -> None:
        ctx.broadcast(
            "KV_REPLY",
            request_id=request_id,
            status=result.status,
            value=result.value,
            version=result.version,
        )

    # ------------------------------------------------------------------
    # Anti-entropy (Task "kv-sync")
    # ------------------------------------------------------------------
    def _sync_loop(self, ctx: ProcessContext):
        while True:
            yield ctx.sleep(self.sync_period)
            ctx.broadcast("KV_SYNC", applied=self.applied_slots)

    def _on_sync(self, ctx: ProcessContext, message: Message) -> None:
        theirs = message["applied"]
        if theirs >= self.applied_slots:
            return
        for slot in range(theirs, min(self.applied_slots, theirs + _SYNC_BATCH)):
            if slot in self.log:
                ctx.broadcast("KV_COMMIT", slot=slot, value=self.log[slot])

    def describe(self) -> str:
        return f"ReplicatedKVProgram(read_mode={self.read_mode})"
