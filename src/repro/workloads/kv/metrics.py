"""Client-visible service metrics computed from a KV run trace.

Everything is derived offline from the deterministic trace: operation
latencies (paired ``kv.op`` / ``kv.done`` records), throughput, replication
progress (``kv.commit`` records), staleness of local-mode reads against the
authoritative commit timeline, and the linearizability verdict.  The result
is a flat dict of JSON-safe scalars so it can ride in ``RunRecord.metrics``
through sweeps, JSONL reports, caching, and streaming unchanged.
"""

from __future__ import annotations

from typing import Any

from ...sim.trace import RunTrace
from .commands import ReplicatedKV
from .linearizability import check_history, history_from_trace

__all__ = ["kv_metrics", "percentile"]


def percentile(values: list[float], fraction: float) -> float:
    """Linear-interpolated percentile; ``0.0`` for an empty series."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def _commit_timeline(trace: RunTrace) -> dict[int, tuple[float, str]]:
    """``slot -> (earliest apply time across replicas, committed command)``."""
    commits: dict[int, tuple[float, str]] = {}
    for process in trace.processes_with_records():
        for entry in trace.records_of(process, "kv.commit"):
            slot, command = entry.value
            known = commits.get(slot)
            if known is None or entry.time < known[0]:
                commits[slot] = (entry.time, command)
    return commits


def _version_history(
    commits: dict[int, tuple[float, str]]
) -> dict[str, list[tuple[float, int]]]:
    """Per-key ``(commit_time, version)`` steps, replayed in slot order."""
    replay = ReplicatedKV()
    history: dict[str, list[tuple[float, int]]] = {}
    for slot in sorted(commits):
        time, command = commits[slot]
        result = replay.apply(command)
        if result is None:
            continue
        _, version = replay.read(_command_key(command))
        history.setdefault(_command_key(command), []).append((time, version))
    return history


def _command_key(command: str) -> str:
    from .commands import decode_command

    return decode_command(command)[2]


def _staleness(trace: RunTrace, commits: dict[int, tuple[float, str]]) -> dict[str, Any]:
    """Compare local-mode reads against the authoritative version timeline."""
    versions = _version_history(commits)
    local_reads = 0
    stale_reads = 0
    max_lag = 0
    for process in trace.processes_with_records():
        for entry in trace.records_of(process, "kv.local_read"):
            _request_id, key, seen_version = entry.value
            local_reads += 1
            authoritative = 0
            for time, version in versions.get(key, ()):
                if time <= entry.time:
                    authoritative = version
                else:
                    break
            if seen_version < authoritative:
                stale_reads += 1
                max_lag = max(max_lag, authoritative - seen_version)
    return {
        "local_reads": local_reads,
        "stale_reads": stale_reads,
        "stale_read_rate": stale_reads / local_reads if local_reads else 0.0,
        "staleness_max_lag": max_lag,
    }


def kv_metrics(trace: RunTrace) -> dict[str, Any]:
    """The full client-visible metrics dict for one KV run."""
    history = history_from_trace(trace)
    completed = [operation for operation in history if operation.completed]
    latencies = [operation.response - operation.invoke for operation in completed]
    end_time = trace.end_time
    commits = _commit_timeline(trace)
    verdict = check_history(history)
    metrics: dict[str, Any] = {
        "ops_issued": len(history),
        "ops_completed": len(completed),
        "completion_rate": len(completed) / len(history) if history else 1.0,
        "throughput": len(completed) / end_time if end_time > 0 else 0.0,
        "latency_mean": sum(latencies) / len(latencies) if latencies else 0.0,
        "latency_p50": percentile(latencies, 0.50),
        "latency_p95": percentile(latencies, 0.95),
        "latency_p99": percentile(latencies, 0.99),
        "slots_committed": len(commits),
        "linearizable": verdict.ok,
        "lin_violations": len(verdict.violations),
        "lin_undecided": len(verdict.undecided),
        "lin_ops_checked": verdict.ops_checked,
    }
    metrics.update(_staleness(trace, commits))
    return metrics
