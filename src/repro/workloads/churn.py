"""Membership-churn workloads: schedules, scenario specs, and the checker.

The churn scenario family exercises the dynamic-membership program
(:mod:`repro.algorithms.membership`) under a sparse monitoring topology:
founders monitor each other over a ring or gossip overlay while late joiners
arrive through an introducer, leavers announce and vanish, and flappers go
silent and recover with a bumped incarnation.  Everything is derived from a
seed, so the scenarios stay inside the determinism digest.

``check_membership_churn`` reconstructs the ground truth purely from trace
records (every process narrates its own lifecycle: ``join_requested``,
``churn_join``, ``churn_leave``, ``churn_down``, ``churn_up``) plus the
simulator's crash ledger, then judges the run:

* every crash that happened at least one *settle window* before the horizon
  must be declared by some correct active member (``declared_dead``);
* a declaration against a process that never crashed, never went down, and
  had not left is a *false suspicion*;
* every join requested a settle window before the horizon must complete.

The settle window is ``hb_timeout + 3·hb_interval`` — read from the
``churn_config`` record the programs emit, so the checker never needs the
spec.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # runtime.spec imports this package; keep the cycle lazy
    from ..runtime.spec import ScenarioSpec

__all__ = [
    "churn_schedule",
    "churn_spec",
    "check_membership_churn",
]

#: Record key of the self-narrated lifecycle events (program side).
JOIN_REQUESTED = "join_requested"
JOINED = "churn_join"
LEFT = "churn_leave"
WENT_DOWN = "churn_down"
CAME_UP = "churn_up"
DECLARED_DEAD = "declared_dead"
CONFIG = "churn_config"


# ----------------------------------------------------------------------
# Schedule generation
# ----------------------------------------------------------------------
def churn_schedule(
    n: int,
    *,
    joins: int = 0,
    leaves: int = 0,
    flaps: int = 0,
    horizon: float = 60.0,
    window: tuple[float, float] = (0.25, 0.55),
    down_duration: float = 8.0,
    seed: int = 0,
):
    """A seeded :class:`~repro.sim.failures.ChurnSchedule` over ``n`` indices.

    Roles are disjoint and deterministic: the top ``joins`` indices join late,
    indices ``1..leaves`` leave voluntarily, the next ``flaps`` indices go
    down and recover.  Index 0 — the default introducer — is never churned.
    Event *times* are drawn from ``random.Random(seed)`` inside
    ``[window[0]·horizon, window[1]·horizon]``, leaving the tail of the run
    for detection and view convergence.
    """
    from ..sim.failures import ChurnEvent, ChurnSchedule

    if joins + leaves + flaps == 0:
        return ChurnSchedule.none()
    if 1 + leaves + flaps > n - joins:
        raise ValueError(
            f"churn roles do not fit: n={n} needs at least "
            f"{1 + leaves + flaps + joins} indices (1 introducer + "
            f"{leaves} leavers + {flaps} flappers + {joins} joiners)"
        )
    rng = random.Random(seed)
    start, end = window[0] * horizon, window[1] * horizon
    events: list[ChurnEvent] = []
    for joiner in range(n - joins, n):
        events.append(ChurnEvent(joiner, "join", round(rng.uniform(start, end), 3)))
    for leaver in range(1, 1 + leaves):
        events.append(ChurnEvent(leaver, "leave", round(rng.uniform(start, end), 3)))
    for flapper in range(1 + leaves, 1 + leaves + flaps):
        down_at = round(rng.uniform(start, end), 3)
        events.append(ChurnEvent(flapper, "down", down_at))
        events.append(ChurnEvent(flapper, "up", round(down_at + down_duration, 3)))
    return ChurnSchedule(tuple(events))


def churn_spec(
    n: int,
    *,
    topology: str = "ring",
    degree: int = 3,
    joins: int = 0,
    leaves: int = 0,
    flaps: int = 0,
    crashes: Mapping[int, float] | None = None,
    hb_interval: float = 1.0,
    hb_timeout: float = 6.0,
    horizon: float = 60.0,
    down_duration: float = 8.0,
    seed: int = 0,
    name: str = "",
) -> "ScenarioSpec":
    """A complete membership-churn scenario spec.

    ``topology`` is ``"ring"`` (``degree`` successors) or ``"gossip"``
    (``degree`` fanout); the membership program is sparse-only, so
    ``"full_mesh"`` is rejected by the builder.  ``crashes`` optionally mixes
    simulator-enforced crashes (by index) into the churn.
    """
    from ..runtime.builder import scenario
    from ..runtime.spec import asynchronous, crashes_at

    schedule = churn_schedule(
        n,
        joins=joins,
        leaves=leaves,
        flaps=flaps,
        horizon=horizon,
        down_duration=down_duration,
        seed=seed,
    )
    params = {"successors" if topology == "ring" else "fanout": degree}
    build = (
        scenario(name or f"churn-{topology}{degree}-n{n}")
        .processes(n)
        .unique_ids()
        .timing(asynchronous(min_latency=0.01, max_latency=0.2))
        .topology(topology, **params)
        .program(
            "membership",
            hb_interval=hb_interval,
            hb_timeout=hb_timeout,
            churn=schedule.to_dict(),
            introducer=0,
        )
        .check("membership_churn")
        .horizon(horizon)
        .seed(seed)
    )
    if crashes:
        build = build.crashes(crashes_at(dict(crashes)))
    return build.build()


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------
def check_membership_churn(trace, pattern):
    """Judge a churn run from the trace alone (records + crash ledger)."""
    from ..detectors.properties import CheckResult
    from ..transport.validate import median_iqr

    processes = pattern.membership.processes
    crashes = {process.index: when for process, when in trace.crashes.items()}

    # -- reconstruct the per-index lifecycle from the self-narrated records --
    life: dict[int, dict[str, Any]] = {}
    hb_interval, hb_timeout = 1.0, 6.0
    for process in processes:
        index = process.index
        entry: dict[str, Any] = {
            "requested": None,
            "joined": None,
            "left": None,
            "downs": [],
            "ups": [],
        }
        for record in trace.records_of(process):
            if record.key == CONFIG:
                hb_interval = record.value["hb_interval"]
                hb_timeout = record.value["hb_timeout"]
            elif record.key == JOIN_REQUESTED:
                entry["requested"] = record.time
            elif record.key == JOINED:
                entry["joined"] = record.time
            elif record.key == LEFT:
                entry["left"] = record.time
            elif record.key == WENT_DOWN:
                entry["downs"].append(record.time)
            elif record.key == CAME_UP:
                entry["ups"].append(record.time)
        life[index] = entry
    settle = hb_timeout + 3.0 * hb_interval
    end = trace.end_time

    def ever_down_by(index: int, at: float) -> bool:
        return any(down <= at for down in life[index]["downs"])

    violations: list[str] = []
    false_suspicions = 0
    removal_latencies: dict[int, float] = {}
    missed_removals: list[int] = []

    # -- suspicion accounting ------------------------------------------------
    for observer in sorted(pattern.correct):
        if life[observer.index]["left"] is not None:
            continue  # a leaver's trailing state is not a monitoring opinion
        for record in trace.records_of(observer, DECLARED_DEAD):
            target, at = record.value, record.time
            crashed_by = crashes.get(target)
            if crashed_by is not None and at >= crashed_by:
                continue  # correct detection of a real crash
            if ever_down_by(target, at):
                continue  # correct suspicion of a silent (down) member
            left_at = life.get(target, {}).get("left")
            if left_at is not None and at >= left_at:
                continue  # the LEAVE announcement lost the race; benign
            false_suspicions += 1
            violations.append(
                f"{observer!r} falsely suspected active index {target} at t={at}"
            )

    # -- removal accounting (simulator-enforced crashes) ---------------------
    for victim, t_fail in sorted(crashes.items()):
        if end - t_fail < settle:
            continue  # crashed too close to the horizon to demand detection
        t_detect = None
        for observer in pattern.correct:
            for record in trace.records_of(observer, DECLARED_DEAD):
                if record.value != victim or record.time < t_fail:
                    continue
                if t_detect is None or record.time < t_detect:
                    t_detect = record.time
        if t_detect is None:
            missed_removals.append(victim)
            violations.append(
                f"crash of index {victim} at t={t_fail} was never declared"
            )
        else:
            removal_latencies[victim] = t_detect - t_fail

    # -- join accounting -----------------------------------------------------
    join_latencies: list[float] = []
    failed_joins: list[int] = []
    for index, entry in sorted(life.items()):
        if entry["requested"] is None:
            continue
        if entry["joined"] is not None:
            join_latencies.append(entry["joined"] - entry["requested"])
        elif index not in crashes and end - entry["requested"] >= settle:
            failed_joins.append(index)
            violations.append(
                f"index {index} requested to join at t={entry['requested']} "
                f"and never completed"
            )

    leaves_announced = sum(1 for entry in life.values() if entry["left"] is not None)
    recoveries = sum(len(entry["ups"]) for entry in life.values())

    removal_stats = median_iqr(list(removal_latencies.values()))
    join_stats = median_iqr(join_latencies)
    return CheckResult(
        ok=not violations,
        violations=tuple(violations),
        stabilization_time=None if removal_stats is None else removal_stats["median"],
        details={
            "removal_latencies": {str(k): v for k, v in removal_latencies.items()},
            "metrics": {
                "joins_completed": len(join_latencies),
                "joins_failed": len(failed_joins),
                "median_join_latency": None if join_stats is None else join_stats["median"],
                "removals_detected": len(removal_latencies),
                "removals_missed": len(missed_removals),
                "median_removal_latency": (
                    None if removal_stats is None else removal_stats["median"]
                ),
                "false_suspicions": false_suspicions,
                "leaves_announced": leaves_announced,
                "recoveries": recoveries,
                "copies_sent": trace.message_copies_sent,
                "end_time": end,
            },
        },
    )
