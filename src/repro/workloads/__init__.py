"""Workload generation: homonymy patterns, crash schedules, scenarios.

These helpers build the parameter space the experiments sweep over: how
identifiers are shared (:mod:`repro.workloads.homonymy`), who crashes and when
(:mod:`repro.workloads.crashes`), and complete consensus scenarios combining
both with a timing model and detector stabilization times
(:mod:`repro.workloads.scenarios`).
"""

from .churn import check_membership_churn, churn_schedule, churn_spec
from .crashes import (
    cascading_crashes,
    crash_fraction,
    leader_targeted_crashes,
    minority_crashes,
    no_crashes,
)
from .homonymy import homonymy_spectrum, membership_with_distinct_ids
from .scenarios import ConsensusScenario, DetectorScenario

__all__ = [
    "ConsensusScenario",
    "DetectorScenario",
    "cascading_crashes",
    "check_membership_churn",
    "churn_schedule",
    "churn_spec",
    "crash_fraction",
    "homonymy_spectrum",
    "leader_targeted_crashes",
    "membership_with_distinct_ids",
    "minority_crashes",
    "no_crashes",
]
