"""Crash-schedule generators used by the experiments."""

from __future__ import annotations

import random

from ..errors import ConfigurationError
from ..membership import Membership
from ..sim.clock import Time
from ..sim.failures import CrashEvent, CrashSchedule

__all__ = [
    "no_crashes",
    "minority_crashes",
    "crash_fraction",
    "cascading_crashes",
    "leader_targeted_crashes",
]


def no_crashes() -> CrashSchedule:
    """No process ever crashes."""
    return CrashSchedule.none()


def minority_crashes(
    membership: Membership, *, at: Time = 10.0, stagger: Time = 2.0, count: int | None = None
) -> CrashSchedule:
    """Crash a minority of the processes (the largest minority by default).

    Victims are chosen deterministically from the end of the process list so
    the smallest identifiers — the likely leaders — stay alive; see
    :func:`leader_targeted_crashes` for the opposite choice.
    """
    maximum_minority = (membership.size - 1) // 2
    if count is None:
        count = maximum_minority
    if count > membership.size - 1:
        raise ConfigurationError("at least one process must stay correct")
    victims = list(membership.processes)[-count:] if count else []
    return CrashSchedule.crash_processes(victims, time=at, stagger=stagger)


def crash_fraction(
    membership: Membership,
    fraction: float,
    *,
    at: Time = 10.0,
    stagger: Time = 2.0,
    seed: int = 0,
) -> CrashSchedule:
    """Crash a random ``fraction`` of the processes (capped at ``n − 1``)."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must lie in [0, 1]")
    count = min(int(round(fraction * membership.size)), membership.size - 1)
    if count <= 0:
        return CrashSchedule.none()
    rng = random.Random(seed)
    victims = rng.sample(list(membership.processes), k=count)
    return CrashSchedule.crash_processes(victims, time=at, stagger=stagger)


def cascading_crashes(
    membership: Membership,
    count: int,
    *,
    first_at: Time = 5.0,
    interval: Time = 10.0,
    partial_broadcast_fraction: float | None = None,
) -> CrashSchedule:
    """Crash ``count`` processes one after another, ``interval`` apart.

    With ``partial_broadcast_fraction`` set, each victim's final broadcast is
    only partially delivered — the paper's "crash while broadcasting" case.
    """
    if count > membership.size - 1:
        raise ConfigurationError("at least one process must stay correct")
    victims = list(membership.processes)[-count:] if count else []
    events = tuple(
        CrashEvent(
            process=victim,
            time=first_at + index * interval,
            partial_broadcast_fraction=partial_broadcast_fraction,
        )
        for index, victim in enumerate(sorted(victims))
    )
    return CrashSchedule(events)


def leader_targeted_crashes(
    membership: Membership, count: int, *, at: Time = 10.0, stagger: Time = 2.0
) -> CrashSchedule:
    """Crash the processes carrying the smallest identifiers.

    The HΩ implementations and oracles elect the smallest correct identifier,
    so killing exactly those processes forces leader re-election — the most
    adversarial crash placement for leader-based consensus.
    """
    if count > membership.size - 1:
        raise ConfigurationError("at least one process must stay correct")
    by_identity = sorted(
        membership.processes, key=lambda process: (repr(membership.identity_of(process)), process)
    )
    victims = by_identity[:count]
    return CrashSchedule.crash_processes(victims, time=at, stagger=stagger)
