"""Complete runnable scenarios: system + detectors + algorithm + horizon.

A scenario bundles everything one run needs, so experiments and examples can
describe *what* they evaluate declaratively and leave the mechanics (building
the system, attaching the detectors, running to the stop condition, validating
the outcome) to the scenario's ``run`` method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..consensus import ConsensusVerdict, validate_consensus
from ..consensus.base import ConsensusProgram
from ..detectors import HOmegaOracle, HSigmaOracle
from ..identity import ProcessId
from ..membership import Membership
from ..sim import (
    AsynchronousTiming,
    CrashSchedule,
    Simulation,
    TimingModel,
    build_system,
)
from ..sim.failures import FailurePattern
from ..sim.trace import RunTrace

__all__ = ["ConsensusScenario", "DetectorScenario"]


@dataclass
class DetectorScenario:
    """A system whose processes only run a given program (detector study)."""

    membership: Membership
    program_factory: Callable[[ProcessId, Any], Any]
    timing: TimingModel
    crash_schedule: CrashSchedule = field(default_factory=CrashSchedule.none)
    detectors: Mapping[str, Any] = field(default_factory=dict)
    horizon: float = 200.0
    seed: int = 0
    name: str = ""

    def run(self) -> tuple[RunTrace, FailurePattern]:
        """Execute the scenario and return the trace and failure pattern."""
        system = build_system(
            membership=self.membership,
            timing=self.timing,
            program_factory=self.program_factory,
            crash_schedule=self.crash_schedule,
            detectors=self.detectors,
            seed=self.seed,
            name=self.name,
        )
        simulation = Simulation(system)
        trace = simulation.run(until=self.horizon)
        return trace, simulation.failure_pattern


@dataclass
class ConsensusScenario:
    """One consensus run: membership, crashes, detectors, proposals, horizon."""

    membership: Membership
    consensus_factory: Callable[[Any], ConsensusProgram]
    proposals: Mapping[ProcessId, Any] | None = None
    crash_schedule: CrashSchedule = field(default_factory=CrashSchedule.none)
    detectors: Mapping[str, Any] | None = None
    timing: TimingModel = field(
        default_factory=lambda: AsynchronousTiming(min_latency=0.1, max_latency=2.0)
    )
    detector_stabilization: float = 20.0
    horizon: float = 500.0
    seed: int = 0
    name: str = ""

    def resolved_proposals(self) -> dict[ProcessId, Any]:
        """The proposal of every process (distinct defaults when not given)."""
        if self.proposals is not None:
            return dict(self.proposals)
        return {
            process: f"value-{process.index}" for process in self.membership.processes
        }

    def resolved_detectors(self) -> dict[str, Any]:
        """The detector attachments (HΩ and HΣ oracles when not given)."""
        if self.detectors is not None:
            return dict(self.detectors)
        stabilization = self.detector_stabilization
        return {
            "HOmega": lambda services: HOmegaOracle(
                services, stabilization_time=stabilization, noise_period=5.0
            ),
            "HSigma": lambda services: HSigmaOracle(
                services, stabilization_time=stabilization
            ),
        }

    def run(self) -> tuple[RunTrace, FailurePattern, ConsensusVerdict]:
        """Execute the run and validate the outcome."""
        proposals = self.resolved_proposals()
        system = build_system(
            membership=self.membership,
            timing=self.timing,
            program_factory=lambda pid, identity: self.consensus_factory(proposals[pid]),
            crash_schedule=self.crash_schedule,
            detectors=self.resolved_detectors(),
            seed=self.seed,
            name=self.name,
        )
        simulation = Simulation(system)
        trace = simulation.run(
            until=self.horizon, stop_when=lambda sim: sim.all_correct_decided()
        )
        verdict = validate_consensus(
            trace, simulation.failure_pattern, proposals, require_termination=False
        )
        return trace, simulation.failure_pattern, verdict
