"""Homonymy-pattern generators used by the experiments.

The paper stresses that homonymy is a spectrum whose extremes are the
classical unique-identifier systems and the anonymous systems.  The helpers
here materialise points on that spectrum: memberships of ``n`` processes with
a chosen number of *distinct* identifiers, distributed as evenly as possible.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..membership import Membership

__all__ = ["membership_with_distinct_ids", "homonymy_spectrum"]


def membership_with_distinct_ids(n: int, distinct: int, *, prefix: str = "id") -> Membership:
    """A membership of ``n`` processes using exactly ``distinct`` identifiers.

    Processes are spread as evenly as possible over the identifiers:
    ``membership_with_distinct_ids(5, 2)`` produces groups of sizes 3 and 2.
    ``distinct = n`` gives a classical unique-identifier system and
    ``distinct = 1`` an anonymous one.
    """
    if n <= 0:
        raise ConfigurationError("n must be positive")
    if not 1 <= distinct <= n:
        raise ConfigurationError(
            f"the number of distinct identifiers must lie in [1, n]; got {distinct} for n={n}"
        )
    identities = [f"{prefix}{index % distinct}" for index in range(n)]
    return Membership.of(sorted(identities))


def homonymy_spectrum(n: int, *, points: int | None = None) -> list[Membership]:
    """Memberships of size ``n`` sweeping from anonymous to unique identifiers.

    ``points`` bounds how many spectrum points are returned (always including
    the two extremes); by default every possible number of distinct
    identifiers from 1 to ``n`` is used.
    """
    if n <= 0:
        raise ConfigurationError("n must be positive")
    distinct_counts = list(range(1, n + 1))
    if points is not None:
        if points < 2:
            raise ConfigurationError("a spectrum needs at least its two extremes")
        step = max(1, (n - 1) // (points - 1))
        distinct_counts = sorted({1, n, *range(1, n + 1, step)})
    return [membership_with_distinct_ids(n, distinct) for distinct in distinct_counts]
