"""Membership descriptions and homonymy patterns.

A *membership* is the formal object ``Π`` together with the identifier map
``id(·)``.  Algorithms never receive a :class:`Membership`; they receive only
their own identifier (the "no initial knowledge of the membership" adversary).
The simulator, failure patterns, oracles, and property checkers all work in
terms of the membership.

The module also provides the identifier-assignment generators used by the
workloads: unique identifiers (classical ``AS`` systems), a single shared
identifier (anonymous ``AAS`` systems), grouped/homonymous assignments, and
random assignments from a bounded identifier domain.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .errors import ConfigurationError
from .identity import ANONYMOUS_IDENTITY, Identity, IdentityMultiset, ProcessId

__all__ = [
    "Membership",
    "DynamicMembership",
    "unique_identities",
    "anonymous_identities",
    "grouped_identities",
    "random_identities",
    "identities_from_multiplicities",
]


@dataclass(frozen=True)
class Membership:
    """The set of processes ``Π`` and the identifier map ``id(·)``.

    ``identities`` maps every :class:`ProcessId` in the system to its
    identifier.  The mapping is total: a process without an identifier is not
    representable (the paper treats "no identity" as the default identifier).
    """

    identities: Mapping[ProcessId, Identity]
    _by_identity: Mapping[Identity, tuple[ProcessId, ...]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.identities:
            raise ConfigurationError("a membership must contain at least one process")
        frozen = dict(self.identities)
        object.__setattr__(self, "identities", frozen)
        grouped: dict[Identity, list[ProcessId]] = {}
        for process, identity in frozen.items():
            grouped.setdefault(identity, []).append(process)
        object.__setattr__(
            self,
            "_by_identity",
            {identity: tuple(sorted(members)) for identity, members in grouped.items()},
        )
        # The ordered process tuple is read once per broadcast; sort it once.
        object.__setattr__(self, "_processes", tuple(sorted(frozen)))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, identities: Sequence[Identity]) -> "Membership":
        """Build a membership from a sequence of identifiers.

        Process ``p_i`` receives ``identities[i]``.  This is the most common
        constructor in tests and examples::

            Membership.of(["A", "A", "B"])   # the paper's running example
        """
        return cls({ProcessId(index): identity for index, identity in enumerate(identities)})

    # ------------------------------------------------------------------
    # Size and membership queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """``n = |Π|``."""
        return len(self.identities)

    @property
    def processes(self) -> tuple[ProcessId, ...]:
        """All processes, ordered by internal index."""
        return self._processes

    @property
    def distinct_identities(self) -> frozenset:
        """The set of distinct identifiers (``ℓ`` in the paper's notation)."""
        return frozenset(self._by_identity)

    def identity_of(self, process: ProcessId) -> Identity:
        """Return ``id(p)``."""
        try:
            return self.identities[process]
        except KeyError:
            raise ConfigurationError(f"{process!r} is not part of this membership") from None

    def processes_with_identity(self, identity: Identity) -> tuple[ProcessId, ...]:
        """Return ``P({identity})`` — the processes carrying ``identity``."""
        return self._by_identity.get(identity, ())

    def homonyms_of(self, process: ProcessId) -> tuple[ProcessId, ...]:
        """Return the processes sharing ``process``'s identifier (including itself)."""
        return self.processes_with_identity(self.identity_of(process))

    def identity_multiset(self, processes: Iterable[ProcessId] | None = None) -> IdentityMultiset:
        """Return ``I(S)`` for ``S`` = ``processes`` (default: the whole of ``Π``)."""
        if processes is None:
            processes = self.processes
        return IdentityMultiset(self.identity_of(process) for process in processes)

    def multiplicity(self, identity: Identity) -> int:
        """Return ``mult_{I(Π)}(identity)``."""
        return len(self._by_identity.get(identity, ()))

    def processes_with_identity_in(self, identities: IdentityMultiset) -> tuple[ProcessId, ...]:
        """Return ``P(I)`` — processes whose identifier appears in the multiset."""
        support = identities.support()
        return tuple(
            process for process in self.processes if self.identity_of(process) in support
        )

    # ------------------------------------------------------------------
    # Character of the system
    # ------------------------------------------------------------------
    @property
    def is_uniquely_identified(self) -> bool:
        """``True`` when all identifiers are distinct (classical ``AS`` system)."""
        return len(self._by_identity) == self.size

    @property
    def is_anonymous(self) -> bool:
        """``True`` when every process has the same identifier (``AAS`` system)."""
        return len(self._by_identity) == 1

    @property
    def homonymy_degree(self) -> int:
        """The largest number of processes sharing one identifier."""
        return max(len(members) for members in self._by_identity.values())

    def describe(self) -> str:
        """Short human-readable description used in experiment tables."""
        if self.is_uniquely_identified:
            flavour = "unique"
        elif self.is_anonymous:
            flavour = "anonymous"
        else:
            flavour = "homonymous"
        return (
            f"{flavour} n={self.size} "
            f"ids={len(self._by_identity)} max-mult={self.homonymy_degree}"
        )


# ----------------------------------------------------------------------
# Identifier-assignment generators (workload building blocks)
# ----------------------------------------------------------------------
def unique_identities(n: int, *, prefix: str = "id") -> Membership:
    """A classical system: ``n`` processes, all identifiers distinct."""
    _require_positive(n)
    return Membership.of([f"{prefix}{index}" for index in range(n)])


def anonymous_identities(n: int, *, identity: Identity = ANONYMOUS_IDENTITY) -> Membership:
    """An anonymous system: ``n`` processes all carrying the default identifier."""
    _require_positive(n)
    return Membership.of([identity] * n)


def grouped_identities(group_sizes: Sequence[int], *, prefix: str = "grp") -> Membership:
    """A homonymous system with explicit group sizes.

    ``grouped_identities([2, 1])`` reproduces the paper's running example: two
    processes share one identifier and a third has its own.
    """
    if not group_sizes:
        raise ConfigurationError("at least one group is required")
    identities: list[Identity] = []
    for group_index, size in enumerate(group_sizes):
        if size <= 0:
            raise ConfigurationError(f"group {group_index} has non-positive size {size}")
        identities.extend([f"{prefix}{group_index}"] * size)
    return Membership.of(identities)


def identities_from_multiplicities(multiplicities: Mapping[Identity, int]) -> Membership:
    """Build a membership directly from an ``{identity: multiplicity}`` mapping."""
    identities: list[Identity] = []
    for identity in sorted(multiplicities, key=repr):
        count = multiplicities[identity]
        if count <= 0:
            raise ConfigurationError(f"multiplicity of {identity!r} must be positive")
        identities.extend([identity] * count)
    return Membership.of(identities)


def random_identities(
    n: int,
    *,
    domain_size: int,
    seed: int | None = None,
    rng: random.Random | None = None,
    prefix: str = "rid",
) -> Membership:
    """Assign identifiers uniformly at random from a bounded domain.

    This models the paper's motivation of "independently randomly generated
    values as process ids (so that the same id can be chosen by more than one
    process)".  Smaller ``domain_size`` yields more homonymy.

    Draws come from an explicit source — pass either ``seed`` (a private
    ``random.Random(seed)`` is created, the historical behaviour) or ``rng``
    (an already-seeded stream, so churn generators that assemble several
    memberships stay reproducible under the determinism digest).  Exactly one
    of the two must be given; nothing ever falls back to the module-level
    ``random`` state.
    """
    _require_positive(n)
    if domain_size <= 0:
        raise ConfigurationError("domain_size must be positive")
    if (seed is None) == (rng is None):
        raise ConfigurationError(
            "random_identities needs exactly one randomness source: "
            "pass seed=... or an explicit rng=..."
        )
    if rng is None:
        rng = random.Random(seed)
    return Membership.of([f"{prefix}{rng.randrange(domain_size)}" for _ in range(n)])


# ----------------------------------------------------------------------
# Dynamic membership (churn ground truth)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DynamicMembership:
    """A static membership plus the churn timeline over it.

    The simulator's process set is fixed for a run, so churn is modelled over
    a membership that already contains every process that will *ever* be a
    member: founders are active from t=0, joiners activate at their ``join``
    event, leavers deactivate at ``leave``, and down/up windows suspend a
    member without removing it.  This object is the *ground truth* the
    ``membership_churn`` check compares the programs' converged views
    against; programs themselves never see it.

    ``events`` is a :class:`repro.sim.failures.ChurnSchedule`.
    """

    membership: Membership
    events: "object"  # ChurnSchedule; typed loosely to avoid a sim import cycle

    def __post_init__(self) -> None:
        size = self.membership.size
        for event in self.events.events:
            if event.index >= size:
                raise ConfigurationError(
                    f"churn event names index {event.index}, but the membership "
                    f"has only indices 0..{size - 1}"
                )

    def founders(self) -> tuple[int, ...]:
        """Indices active at t=0 (everyone that does not join later)."""
        joiners = self.events.joiners()
        return tuple(
            process.index
            for process in self.membership.processes
            if process.index not in joiners
        )

    def status_at(self, index: int, at: float) -> str:
        """The ground-truth status of ``index`` at time ``at``.

        One of ``"absent"`` (not yet joined), ``"active"``, ``"down"``
        (within a down/up window), or ``"left"``.
        """
        history = self.events.events_for(index)
        joined = index not in self.events.joiners()
        status = "active" if joined else "absent"
        for event in history:
            if event.time > at:
                break
            if event.kind == "join":
                status = "active"
            elif event.kind == "leave":
                status = "left"
            elif event.kind == "down":
                status = "down"
            elif event.kind == "up":
                status = "active"
        return status

    def members_at(self, at: float) -> tuple[int, ...]:
        """Indices whose ground-truth status at ``at`` is active or down."""
        return tuple(
            process.index
            for process in self.membership.processes
            if self.status_at(process.index, at) in ("active", "down")
        )


def _require_positive(n: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"the number of processes must be positive, got {n}")
