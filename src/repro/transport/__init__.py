"""The real asyncio/TCP transport backend (ROADMAP item 3).

Everything under this package executes the *same* :class:`ProcessProgram`
objects the discrete-event simulator runs — but as real OS processes
exchanging length-prefixed JSON frames over real sockets, with JSONL event
logs on a shared monotonic time base and a fault injector that kills or
suspends victims at scheduled times.

Layout:

* :mod:`~repro.transport.framing` — length-prefixed JSON message framing;
* :mod:`~repro.transport.events` — JSONL event logs (write + read);
* :mod:`~repro.transport.context` — the asyncio trampoline implementing
  :class:`~repro.context.AbstractProcessContext` over sockets;
* :mod:`~repro.transport.node` — one node process
  (``python -m repro.transport.node``);
* :mod:`~repro.transport.faults` — fault plans resolved from a spec's
  crash schedule;
* :mod:`~repro.transport.orchestrator` — spawns N nodes, injects faults,
  collects logs, synthesizes a :class:`~repro.runtime.engine.RunRecord`;
* :mod:`~repro.transport.validate` — the pure aggregation functions behind
  the sim-vs-real harness (median + IQR, heatmap/scatter CSVs) and the
  ``hb_detection`` trace check;
* ``python -m repro.transport`` — a small CLI front door for one-off runs.

Select the backend per run with ``ScenarioSpec(backend="real")`` (or
``scenario(...).backend("real", time_scale=0.05)``); ``Engine.run`` and
``execute_spec`` dispatch here without any program or detector changes.
"""

from .validate import (
    aggregate_cells,
    detection_outcome,
    heatmap_csv,
    median_iqr,
    scatter_csv,
)

__all__ = [
    "aggregate_cells",
    "detection_outcome",
    "heatmap_csv",
    "median_iqr",
    "scatter_csv",
]
