"""Length-prefixed JSON framing for the TCP transport.

Every frame on the wire is a 4-byte big-endian payload length followed by the
UTF-8 JSON encoding of one object.  TCP is a byte stream — without the prefix
two broadcasts sent back-to-back would arrive glued together (or a large one
split) and ``json.loads`` on a read chunk would be a correctness lottery.

The functions are deliberately tiny and synchronous-friendly: ``encode_frame``
returns bytes, ``decode_frames`` incrementally consumes a buffer (usable in
tests without sockets), and ``read_frame`` is the asyncio reader used by
nodes and the orchestrator.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

__all__ = ["MAX_FRAME_BYTES", "encode_frame", "decode_frames", "read_frame", "FramingError"]

_LENGTH = struct.Struct(">I")

#: Upper bound on one frame's payload; a peer announcing more is corrupt
#: (or hostile) and the connection is dropped instead of buffering gigabytes.
MAX_FRAME_BYTES = 1 << 20


class FramingError(ValueError):
    """A frame violated the wire format (oversized or truncated length)."""


def encode_frame(payload: Any) -> bytes:
    """Serialize one JSON-encodable object into a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FramingError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def decode_frames(buffer: bytearray) -> list[Any]:
    """Consume every complete frame at the front of ``buffer`` (in place).

    Returns the decoded objects; any trailing partial frame is left in the
    buffer for the next read.
    """
    frames: list[Any] = []
    while True:
        if len(buffer) < _LENGTH.size:
            return frames
        (length,) = _LENGTH.unpack_from(buffer)
        if length > MAX_FRAME_BYTES:
            raise FramingError(f"announced frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
        end = _LENGTH.size + length
        if len(buffer) < end:
            return frames
        body = bytes(buffer[_LENGTH.size : end])
        del buffer[:end]
        frames.append(json.loads(body.decode("utf-8")))


async def read_frame(reader: asyncio.StreamReader) -> Any | None:
    """Read exactly one frame, or ``None`` on a clean EOF between frames."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise FramingError("connection closed mid-frame") from error
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FramingError(f"announced frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FramingError("connection closed mid-frame") from error
    return json.loads(body.decode("utf-8"))
