"""One node of a real-backend run: ``python -m repro.transport.node``.

The orchestrator spawns N of these as OS subprocesses.  Each node

1. listens on its TCP port and dials every peer (retrying until the full
   mesh is up — peers come up in arbitrary order);
2. reports ``node_ready`` to the orchestrator's control socket and waits for
   the ``start`` frame carrying ``t0``, the common scenario origin on the
   shared monotonic time base (epoch-relative seconds);
3. builds its :class:`ProcessProgram` from the registry — the *same* entry a
   sim run would build — and drives it with the asyncio trampoline
   (:class:`~repro.transport.context.RealNodeRuntime`);
4. appends every observable event (``msg_send``/``msg_recv``, ``ctx.record``
   keys such as ``hb_ping_sent``/``hb_ack_recv``/``declared_dead``,
   ``decide``) to its JSONL log, each line stamped with both epoch-relative
   wall seconds and scenario time units;
5. exits on its own once the horizon elapses (or on a ``stop`` control
   frame) — unless the fault injector gets it first, which is the point.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from .context import RealNodeRuntime
from .events import EventLog
from .framing import FramingError, encode_frame, read_frame

__all__ = ["main"]

#: How long a node keeps retrying its outbound dials before giving up.
MESH_DEADLINE_SECONDS = 20.0
_RETRY_DELAY = 0.05


async def _serve_peer(runtime: RealNodeRuntime, reader: asyncio.StreamReader, writer) -> None:
    """Feed every frame of one inbound connection to the runtime."""
    try:
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return
            runtime.deliver_wire(frame)
    except (FramingError, ConnectionError):
        return
    finally:
        writer.close()


async def _dial(host: str, port: int, deadline: float):
    """Dial one peer, retrying until it is up (or the deadline passes)."""
    while True:
        try:
            return await asyncio.open_connection(host, port)
        except OSError:
            if time.monotonic() > deadline:
                raise
            await asyncio.sleep(_RETRY_DELAY)


async def _run_node(args: argparse.Namespace) -> int:
    from ..runtime.registry import PROGRAMS

    identity = json.loads(args.identity)
    peers = json.loads(args.peers)
    params = json.loads(args.program_params)

    log = EventLog(
        args.log,
        epoch=args.epoch,
        time_scale=args.time_scale,
        node={"index": args.index, "identity": identity},
    )
    runtime = RealNodeRuntime(
        index=args.index,
        identity=identity,
        log=log,
        time_scale=args.time_scale,
        seed=args.seed,
    )

    server = await asyncio.start_server(
        lambda r, w: _serve_peer(runtime, r, w), args.host, args.port
    )
    deadline = time.monotonic() + MESH_DEADLINE_SECONDS
    for index, host, port in peers:
        _reader, writer = await _dial(host, port, deadline)
        runtime.add_peer(int(index), writer)
    log.log("node_ready", peers=len(peers))

    control_host, _, control_port = args.control.rpartition(":")
    control_reader, control_writer = await _dial(control_host, int(control_port), deadline)
    control_writer.write(encode_frame({"event": "node_ready", "index": args.index}))
    await control_writer.drain()

    start = await read_frame(control_reader)
    if not start or start.get("event") != "start":
        log.log("node_error", error=f"expected start frame, got {start!r}")
        return 1
    t0 = float(start["t0"])
    log.t0 = t0

    # Align the program start on the common origin (t0 is in the future by
    # the orchestrator's settle margin).
    await asyncio.sleep(max(0.0, (args.epoch + t0) - time.monotonic()))
    log.log("node_start", program=args.program)
    entry = PROGRAMS.resolve(args.program)
    runtime.start(entry.build(params))

    async def _until_stop_frame() -> None:
        frame = await read_frame(control_reader)
        if frame is not None and frame.get("event") == "stop":
            return
        await asyncio.sleep(MESH_DEADLINE_SECONDS + args.horizon * args.time_scale)

    horizon_wall = (args.epoch + t0 + args.horizon * args.time_scale) - time.monotonic()
    stopper = asyncio.ensure_future(_until_stop_frame())
    try:
        await asyncio.wait_for(asyncio.shield(stopper), timeout=max(0.0, horizon_wall))
    except asyncio.TimeoutError:
        pass
    finally:
        stopper.cancel()

    runtime.stop()
    log.log("node_stop")
    server.close()
    control_writer.close()
    log.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transport.node",
        description="One node process of a real-backend run (spawned by the orchestrator).",
    )
    parser.add_argument("--index", type=int, required=True, help="this node's process index")
    parser.add_argument("--identity", required=True, help="JSON identity (possibly shared)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True, help="TCP port to listen on")
    parser.add_argument(
        "--peers", required=True, help='JSON list of [index, host, port] to dial'
    )
    parser.add_argument(
        "--control", required=True, help="host:port of the orchestrator's control socket"
    )
    parser.add_argument(
        "--epoch", type=float, required=True, help="the run's monotonic-clock epoch"
    )
    parser.add_argument(
        "--time-scale", type=float, default=0.05, help="wall seconds per scenario time unit"
    )
    parser.add_argument("--program", required=True, help="PROGRAMS registry name")
    parser.add_argument("--program-params", default="{}", help="JSON program parameters")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--horizon", type=float, required=True, help="run length in scenario time units"
    )
    parser.add_argument("--log", required=True, help="JSONL event log path")
    args = parser.parse_args(argv)
    return asyncio.run(_run_node(args))


if __name__ == "__main__":
    sys.exit(main())
