"""One node of a real-backend run: ``python -m repro.transport.node``.

The orchestrator spawns N of these as OS subprocesses.  Each node

1. listens on its TCP port and dials every peer (retrying until the full
   mesh is up — peers come up in arbitrary order);
2. reports ``node_ready`` to the orchestrator's control socket and waits for
   the ``start`` frame carrying ``t0``, the common scenario origin on the
   shared monotonic time base (epoch-relative seconds);
3. builds its :class:`ProcessProgram` from the registry — the *same* entry a
   sim run would build — and drives it with the asyncio trampoline
   (:class:`~repro.transport.context.RealNodeRuntime`);
4. appends every observable event (``msg_send``/``msg_recv``, ``ctx.record``
   keys such as ``hb_ping_sent``/``hb_ack_recv``/``declared_dead``,
   ``decide``) to its JSONL log, each line stamped with both epoch-relative
   wall seconds and scenario time units;
5. exits on its own once the horizon elapses (or on a ``stop`` control
   frame) — unless the fault injector gets it first, which is the point.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time

from ..errors import ConfigurationError
from ..retry import RetryPolicy
from .context import RealNodeRuntime
from .events import EventLog
from .framing import FramingError, encode_frame, read_frame

__all__ = ["main", "ShapedLink", "validate_link_params", "LINK_PARAM_KEYS"]

#: Default mesh-dial deadline; override per run with ``--mesh-deadline`` (the
#: orchestrator forwards ``backend_params["mesh_deadline"]``) — slow CI
#: machines need more than 20 s to spawn and import N interpreters.
MESH_DEADLINE_SECONDS = 20.0

#: Backoff schedule for outbound dials: peers come up in arbitrary order, so
#: early dials *expect* connection-refused.  Decorrelated jitter (instead of
#: the old fixed 50 ms poll) keeps N nodes from hammering a slow peer's
#: accept queue in lockstep; the mesh deadline bounds the whole loop.
DIAL_RETRY = RetryPolicy(base=0.02, cap=0.25, max_attempts=1_000_000)

#: The keys a ``backend_params["link"]`` mapping may carry (see ShapedLink).
LINK_PARAM_KEYS = ("loss", "delay", "jitter", "duplicate", "seed")


def validate_link_params(params: dict) -> dict:
    """Normalize and bound-check a link-shaping mapping; raise on nonsense.

    Mirrors the envelopes of :mod:`repro.sim.links`: ``loss`` and
    ``duplicate`` are per-copy probabilities in ``[0, 1)``; ``delay`` and
    ``jitter`` are extra latency in scenario time units (scaled to wall
    seconds by the node's ``time_scale``); ``seed`` folds into each link's
    deterministic RNG stream.
    """
    if not isinstance(params, dict):
        raise ConfigurationError(f"link params must be a mapping, got {params!r}")
    unknown = sorted(set(params) - set(LINK_PARAM_KEYS))
    if unknown:
        raise ConfigurationError(
            f"unknown link param(s) {', '.join(unknown)}; "
            f"expected a subset of {LINK_PARAM_KEYS}"
        )
    out = {
        "loss": float(params.get("loss", 0.0)),
        "delay": float(params.get("delay", 0.0)),
        "jitter": float(params.get("jitter", 0.0)),
        "duplicate": float(params.get("duplicate", 0.0)),
        "seed": int(params.get("seed", 0)),
    }
    for probability in ("loss", "duplicate"):
        if not 0.0 <= out[probability] < 1.0:
            raise ConfigurationError(
                f"link {probability} must be a probability in [0, 1), "
                f"got {out[probability]}"
            )
    for latency in ("delay", "jitter"):
        if out[latency] < 0.0:
            raise ConfigurationError(
                f"link {latency} must be non-negative, got {out[latency]}"
            )
    return out


class ShapedLink:
    """Loss/delay/duplication shaping on one outbound peer link.

    The real-backend twin of :mod:`repro.sim.links`: where the simulator
    transforms a copy's candidate delivery times, this wraps one peer's
    :class:`asyncio.StreamWriter` and decides per frame whether the copy is
    written at all (``loss``), written twice (``duplicate``), and how much
    extra latency it carries (``delay`` + uniform ``jitter``, in scenario
    time units, scaled by ``time_scale``).  Exposes the two writer methods
    the runtime uses (``write``/``is_closing``), so shaping is invisible to
    :class:`~repro.transport.context.RealNodeRuntime`.

    Draws come from a private RNG seeded ``(seed, sender, receiver)`` — the
    same campaign seed replays the same drop/duplicate pattern per link,
    which is what makes a lossy chaos campaign replayable.
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        *,
        sender: int,
        receiver: int,
        time_scale: float = 1.0,
        loss: float = 0.0,
        delay: float = 0.0,
        jitter: float = 0.0,
        duplicate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self._writer = writer
        self._time_scale = time_scale
        self._loss = loss
        self._delay = delay
        self._jitter = jitter
        self._duplicate = duplicate
        self._rng = random.Random(f"shaped-link:{seed}:{sender}:{receiver}")
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def write(self, frame: bytes) -> None:
        copies = 1
        if self._duplicate and self._rng.random() < self._duplicate:
            copies += 1
            self.duplicated += 1
        for _ in range(copies):
            if self._loss and self._rng.random() < self._loss:
                self.dropped += 1
                continue
            extra = self._delay
            if self._jitter:
                extra += self._rng.random() * self._jitter
            if extra > 0.0:
                self.delayed += 1
                asyncio.get_running_loop().call_later(
                    extra * self._time_scale, self._write_now, frame
                )
            else:
                self._write_now(frame)

    def _write_now(self, frame: bytes) -> None:
        if not self._writer.is_closing():
            self._writer.write(frame)

    def is_closing(self) -> bool:
        return self._writer.is_closing()

    def close(self) -> None:
        self._writer.close()


async def _serve_peer(runtime: RealNodeRuntime, reader: asyncio.StreamReader, writer) -> None:
    """Feed every frame of one inbound connection to the runtime."""
    try:
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return
            runtime.deliver_wire(frame)
    except (FramingError, ConnectionError):
        return
    finally:
        writer.close()


async def _dial(host: str, port: int, deadline: float, rng: random.Random):
    """Dial one peer, backing off with jitter until it is up (or the deadline)."""
    delays = DIAL_RETRY.delays(rng)
    while True:
        try:
            return await asyncio.open_connection(host, port)
        except OSError:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise
            delay = next(delays, DIAL_RETRY.cap)
            await asyncio.sleep(min(delay, remaining))


async def _run_node(args: argparse.Namespace) -> int:
    from ..runtime.registry import PROGRAMS

    identity = json.loads(args.identity)
    peers = json.loads(args.peers)
    params = json.loads(args.program_params)
    link = validate_link_params(json.loads(args.link)) if args.link else None

    log = EventLog(
        args.log,
        epoch=args.epoch,
        time_scale=args.time_scale,
        node={"index": args.index, "identity": identity},
    )
    runtime = RealNodeRuntime(
        index=args.index,
        identity=identity,
        log=log,
        time_scale=args.time_scale,
        seed=args.seed,
    )

    server = await asyncio.start_server(
        lambda r, w: _serve_peer(runtime, r, w), args.host, args.port
    )
    dial_rng = random.Random(f"dial:{args.seed}:{args.index}")
    deadline = time.monotonic() + args.mesh_deadline
    for index, host, port in peers:
        _reader, writer = await _dial(host, port, deadline, dial_rng)
        if link is not None:
            writer = ShapedLink(
                writer,
                sender=args.index,
                receiver=int(index),
                time_scale=args.time_scale,
                **link,
            )
        runtime.add_peer(int(index), writer)
    log.log("node_ready", peers=len(peers), shaped=link is not None)

    control_host, _, control_port = args.control.rpartition(":")
    control_reader, control_writer = await _dial(
        control_host, int(control_port), deadline, dial_rng
    )
    control_writer.write(encode_frame({"event": "node_ready", "index": args.index}))
    await control_writer.drain()

    start = await read_frame(control_reader)
    if not start or start.get("event") != "start":
        log.log("node_error", error=f"expected start frame, got {start!r}")
        return 1
    t0 = float(start["t0"])
    log.t0 = t0

    # Align the program start on the common origin (t0 is in the future by
    # the orchestrator's settle margin).
    await asyncio.sleep(max(0.0, (args.epoch + t0) - time.monotonic()))
    log.log("node_start", program=args.program)
    entry = PROGRAMS.resolve(args.program)
    runtime.start(entry.build(params))

    async def _until_stop_frame() -> None:
        frame = await read_frame(control_reader)
        if frame is not None and frame.get("event") == "stop":
            return
        await asyncio.sleep(args.mesh_deadline + args.horizon * args.time_scale)

    horizon_wall = (args.epoch + t0 + args.horizon * args.time_scale) - time.monotonic()
    stopper = asyncio.ensure_future(_until_stop_frame())
    try:
        await asyncio.wait_for(asyncio.shield(stopper), timeout=max(0.0, horizon_wall))
    except asyncio.TimeoutError:
        pass
    finally:
        stopper.cancel()

    runtime.stop()
    log.log("node_stop")
    server.close()
    control_writer.close()
    log.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transport.node",
        description="One node process of a real-backend run (spawned by the orchestrator).",
    )
    parser.add_argument("--index", type=int, required=True, help="this node's process index")
    parser.add_argument("--identity", required=True, help="JSON identity (possibly shared)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True, help="TCP port to listen on")
    parser.add_argument(
        "--peers", required=True, help='JSON list of [index, host, port] to dial'
    )
    parser.add_argument(
        "--control", required=True, help="host:port of the orchestrator's control socket"
    )
    parser.add_argument(
        "--epoch", type=float, required=True, help="the run's monotonic-clock epoch"
    )
    parser.add_argument(
        "--time-scale", type=float, default=0.05, help="wall seconds per scenario time unit"
    )
    parser.add_argument("--program", required=True, help="PROGRAMS registry name")
    parser.add_argument("--program-params", default="{}", help="JSON program parameters")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--horizon", type=float, required=True, help="run length in scenario time units"
    )
    parser.add_argument("--log", required=True, help="JSONL event log path")
    parser.add_argument(
        "--mesh-deadline",
        type=float,
        default=MESH_DEADLINE_SECONDS,
        help="seconds to keep retrying outbound dials before giving up",
    )
    parser.add_argument(
        "--link",
        default="",
        help="JSON link-shaping params (loss/delay/jitter/duplicate/seed); "
        "mirrors repro.sim.links on real TCP links",
    )
    args = parser.parse_args(argv)
    return asyncio.run(_run_node(args))


if __name__ == "__main__":
    sys.exit(main())
