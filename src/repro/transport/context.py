"""The asyncio implementation of the program/context protocol.

:class:`RealNodeRuntime` is the transport twin of
:class:`repro.sim.process.ProcessRuntime`: it drives the same generator tasks
through a trampoline, but blocking requests map onto the event loop instead
of the event queue —

* ``Sleep(d)`` → ``await asyncio.sleep(d × time_scale)`` (scenario time units
  scale to wall seconds, so the same program parameters mean the same thing
  on both backends);
* ``WaitUntil(pred)`` → an awaited future resolved by :meth:`poke`, which
  runs after every message delivery (same re-check points as the simulator);
* ``NextSyncStep`` → rejected: real networks have no synchronous rounds, and
  the scenario builder already refuses HSS specs on this backend.

``ctx.now`` reads the shared monotonic clock (epoch- and t0-aligned, divided
by ``time_scale``), so programs observe scenario time units everywhere.
Everything observable — sends, deliveries, ``ctx.record``, ``ctx.decide`` —
goes to the node's JSONL :class:`~repro.transport.events.EventLog`, which is
the transport's replacement for the simulator's :class:`RunTrace`.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Callable, Generator

from ..context import AbstractProcessContext, NextSyncStep, Sleep, WaitUntil
from ..errors import SimulationError
from ..identity import Identity
from ..sim.message import Message
from .events import EventLog
from .framing import encode_frame

__all__ = ["RealProcessContext", "RealNodeRuntime", "TransportError"]


class TransportError(SimulationError):
    """A program used a construct the real backend cannot provide."""


class RealProcessContext(AbstractProcessContext):
    """The transport backend's program-facing API of one node."""

    def __init__(self, runtime: "RealNodeRuntime") -> None:
        self._runtime = runtime

    @property
    def identity(self) -> Identity:
        return self._runtime.identity

    @property
    def now(self) -> float:
        return self._runtime.now_units()

    @property
    def random(self) -> random.Random:
        return self._runtime.rng

    def broadcast(self, kind: str, **fields: Any) -> None:
        self._runtime.broadcast(Message(kind, fields))

    def multicast(self, kind: str, targets: Any, **fields: Any) -> None:
        self._runtime.multicast(Message(kind, fields), targets)

    def on(self, kind: str, handler: Callable[[Message], None]) -> None:
        self._runtime.register_handler(kind, handler)

    def spawn(self, task: Callable[[], Generator], *, name: str = "") -> None:
        self._runtime.spawn_task(task, name=name or getattr(task, "__name__", "task"))

    def detector(self, name: str) -> Any:
        return self._runtime.detector_view(name)

    def has_detector(self, name: str) -> bool:
        return self._runtime.has_detector(name)

    def attach_detector(self, name: str, view: Any) -> None:
        self._runtime.attach_detector_view(name, view)

    def record(self, key: str, value: Any) -> None:
        self._runtime.record(key, value)

    def decide(self, value: Any) -> None:
        self._runtime.record_decision(value)


class RealNodeRuntime:
    """Executes one node's program over asyncio: trampoline, sockets, log."""

    def __init__(
        self,
        *,
        index: int,
        identity: Identity,
        log: EventLog,
        time_scale: float,
        seed: int = 0,
    ) -> None:
        self.index = index
        self.identity = identity
        self.log = log
        self.time_scale = time_scale
        self.rng = random.Random(f"transport:{seed}:{index}")
        self.context = RealProcessContext(self)
        self._handlers: dict[str, list[Callable[[Message], None]]] = {}
        self._detector_views: dict[str, Any] = {}
        self._peer_writers: dict[int, asyncio.StreamWriter] = {}
        self._tasks: list[asyncio.Task] = []
        self._waiters: list[asyncio.Future] = []
        self._pre_start: list[Message] = []
        self._started = False
        self._stopped = False

    # -- clock ----------------------------------------------------------
    def now_units(self) -> float:
        """Scenario time units since t0, off the shared monotonic clock."""
        return (time.monotonic() - self.log.epoch - self.log.t0) / self.time_scale

    # -- wiring ----------------------------------------------------------
    def add_peer(self, index: int, writer: asyncio.StreamWriter) -> None:
        self._peer_writers[index] = writer

    def attach_detector_view(self, name: str, view: Any) -> None:
        self._detector_views[name] = view

    def detector_view(self, name: str) -> Any:
        try:
            return self._detector_views[name]
        except KeyError:
            raise TransportError(f"node {self.index} has no detector named {name!r}") from None

    def has_detector(self, name: str) -> bool:
        return name in self._detector_views

    # -- lifecycle --------------------------------------------------------
    def start(self, program) -> None:
        """Run ``setup`` and release any messages that arrived early.

        Peers start at (roughly) the same t0 but not in lockstep; a frame can
        land before this node's handlers exist.  Those deliveries are queued,
        not dropped — the simulator never loses an in-order delivery either.
        """
        if self._started:
            raise TransportError(f"node {self.index} started twice")
        self._started = True
        program.setup(self.context)
        backlog, self._pre_start = self._pre_start, []
        for message in backlog:
            self.deliver(message)

    def stop(self) -> None:
        """Cancel every task and stop delivering (the node is shutting down)."""
        self._stopped = True
        for task in self._tasks:
            task.cancel()
        for waiter in self._waiters:
            if not waiter.done():
                waiter.cancel()
        self._waiters.clear()

    # -- communication ----------------------------------------------------
    def broadcast(self, message: Message) -> None:
        if self._stopped:
            return
        self.log.log("msg_send", kind=message.kind)
        frame = encode_frame(
            {"kind": message.kind, "payload": dict(message.payload), "sender": self.index}
        )
        for writer in self._peer_writers.values():
            if not writer.is_closing():
                writer.write(frame)
        # Self-delivery (the simulator's broadcast includes the sender), on a
        # fresh loop iteration so handlers never run re-entrantly.
        asyncio.get_running_loop().call_soon(self.deliver, message)

    def multicast(self, message: Message, targets: Any) -> None:
        """Write the frame only to the peers whose index is targeted.

        Self-delivery happens only when this node's own index is in the
        target set (matching :meth:`Network.multicast` on the simulator).
        """
        if self._stopped:
            return
        wanted = set(targets)
        self.log.log("msg_send", kind=message.kind)
        frame = encode_frame(
            {"kind": message.kind, "payload": dict(message.payload), "sender": self.index}
        )
        for index, writer in self._peer_writers.items():
            if index in wanted and not writer.is_closing():
                writer.write(frame)
        if self.index in wanted:
            asyncio.get_running_loop().call_soon(self.deliver, message)

    def register_handler(self, kind: str, handler: Callable[[Message], None]) -> None:
        self._handlers.setdefault(kind, []).append(handler)

    def deliver(self, message: Message) -> None:
        if self._stopped:
            return
        if not self._started:
            self._pre_start.append(message)
            return
        self.log.log("msg_recv", kind=message.kind)
        for handler in self._handlers.get(message.kind, ()):  # registration order
            handler(message)
        self.poke()

    def deliver_wire(self, frame: Any) -> None:
        """Deliver one decoded wire frame (from a peer connection)."""
        self.deliver(Message(frame["kind"], frame.get("payload", {})))

    # -- trace output ------------------------------------------------------
    def record(self, key: str, value: Any) -> None:
        if not self._stopped:
            self.log.log(key, value=value)

    def record_decision(self, value: Any) -> None:
        if not self._stopped:
            self.log.log("decide", value=value)

    # -- task trampoline ---------------------------------------------------
    def spawn_task(self, task_fn: Callable[[], Generator], *, name: str) -> None:
        if self._stopped:
            return
        generator = task_fn()
        if not hasattr(generator, "send"):
            raise TransportError(
                f"task {name!r} of node {self.index} is not a generator; tasks "
                "must be generator functions that yield blocking requests"
            )
        self._tasks.append(asyncio.get_running_loop().create_task(self._drive(generator, name)))

    def poke(self) -> None:
        """Wake every task blocked in ``wait_until`` to re-check its predicate."""
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    def tasks_pending(self) -> bool:
        return any(not task.done() for task in self._tasks)

    async def _drive(self, generator: Generator, name: str) -> None:
        try:
            while True:
                request = generator.send(None)
                if isinstance(request, Sleep):
                    await asyncio.sleep(request.duration * self.time_scale)
                elif isinstance(request, WaitUntil):
                    while not request.predicate():
                        waiter = asyncio.get_running_loop().create_future()
                        self._waiters.append(waiter)
                        await waiter
                elif isinstance(request, NextSyncStep):
                    raise TransportError(
                        "next_synchronous_step() has no meaning on the real "
                        "backend; synchronous (HSS) programs are sim-only"
                    )
                else:
                    raise TransportError(
                        f"task {name!r} of node {self.index} yielded an "
                        f"unsupported request: {request!r}"
                    )
        except StopIteration:
            return
        except asyncio.CancelledError:
            raise
