"""One-off heartbeat detection runs on either backend.

Examples::

    # one 3-node real run: kill node 2 at t=6, report detection latency
    python -m repro.transport --nodes 3 --backend real --log-dir ./hb_logs

    # the same scenario on the simulator (bit-for-bit deterministic)
    python -m repro.transport --nodes 3 --backend sim

The scenario is the validation harness's unit cell: n nodes running the
``heartbeat`` program, one victim killed at ``--fail-at``, detection judged
identically on both backends (``hb_detection_*`` metrics).  For full
(hb_interval × hb_timeout) sweeps with heatmap/scatter CSVs, run experiment
E11: ``python -m repro.experiments E11``.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..runtime import Engine, scenario
from ..runtime.spec import asynchronous, crashes_at, lossy

__all__ = ["main", "build_heartbeat_spec"]


def build_heartbeat_spec(
    *,
    nodes: int = 3,
    hb_interval: float = 1.0,
    hb_timeout: float = 3.0,
    fail_at: float = 6.0,
    victims: int = 1,
    seed: int = 0,
    backend: str = "sim",
    time_scale: float = 0.05,
    log_dir: str | None = None,
    loss: float = 0.0,
    fault_action: str = "kill",
    resume_after: float | None = None,
    name: str = "hb-detection",
):
    """The harness's unit scenario, identical for both backends.

    The sim timing models localhost: sub-interval latencies, so the only
    latency the detector sees is its own timeout discipline — which is what
    the real backend measures for real.

    ``loss`` applies the same per-message drop probability on both backends:
    the simulator's ``lossy(loss)`` link model on sim, a
    :class:`~repro.transport.node.ShapedLink` on real — so lossy cells of a
    sim-vs-real sweep compare like with like.
    """
    horizon = fail_at + hb_timeout + 3.0 * hb_interval + 2.0
    build = (
        scenario(name)
        .processes(nodes)
        .unique_ids()
        .timing(asynchronous(min_latency=0.005, max_latency=0.05))
        .crashes(crashes_at({nodes - 1 - v: fail_at for v in range(victims)}))
        .program(
            "heartbeat",
            hb_interval=hb_interval,
            hb_timeout=hb_timeout,
            record_pings=True,
        )
        .check("hb_detection")
        .horizon(horizon)
        .seed(seed)
    )
    if loss:
        if backend == "real":
            build = build.adversarial()
        else:
            build = build.network(lossy(loss)).adversarial()
    if backend == "real":
        params = {"time_scale": time_scale}
        if log_dir:
            params["log_dir"] = log_dir
        if loss:
            params["link"] = {"loss": loss, "seed": seed}
        if fault_action != "kill":
            params["fault_action"] = fault_action
        if resume_after is not None:
            params["resume_after"] = resume_after
        build = build.backend("real", **params)
    return build.build()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transport",
        description="Run one heartbeat detection scenario on the sim or real backend.",
    )
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--backend", choices=("sim", "real"), default="real")
    parser.add_argument("--hb-interval", type=float, default=1.0, help="scenario time units")
    parser.add_argument("--hb-timeout", type=float, default=3.0, help="scenario time units")
    parser.add_argument("--fail-at", type=float, default=6.0, help="victim crash time")
    parser.add_argument("--victims", type=int, default=1, help="how many nodes to kill")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--time-scale", type=float, default=0.05, help="wall seconds per time unit (real)"
    )
    parser.add_argument("--log-dir", help="keep the JSONL node logs here (real)")
    parser.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="per-message drop probability on every link (both backends)",
    )
    args = parser.parse_args(argv)

    spec = build_heartbeat_spec(
        nodes=args.nodes,
        hb_interval=args.hb_interval,
        hb_timeout=args.hb_timeout,
        fail_at=args.fail_at,
        victims=args.victims,
        seed=args.seed,
        backend=args.backend,
        time_scale=args.time_scale,
        log_dir=args.log_dir,
        loss=args.loss,
    )
    record = Engine().run(spec)
    print(json.dumps(record.to_dict(), indent=2, sort_keys=True, default=str))
    ok = record.metrics.get("hb_detection_ok")
    latency = record.metrics.get("hb_detection_time")
    print(
        f"\nbackend={args.backend} detection_ok={ok} "
        f"median_detection_latency={latency} (time units)",
        file=sys.stderr,
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
