"""The sim-vs-real validation aggregator (pure functions) and trace check.

This module is the shared maths of the harness, deliberately free of sockets
and subprocesses so every edge case is tier-1 testable:

* :func:`detection_outcome` — first ``declared_dead`` per victim wins;
  duplicate declarations (several observers, or retransmitted lines) count
  once; no declaration at all is a *missed* detection;
* :func:`median_iqr` — median and Tukey quartiles for odd and even trial
  counts (a single trial's IQR is zero, an empty cell has no statistics);
* :func:`aggregate_cells` — folds per-trial outcomes into per-
  ``(backend, hb_interval, hb_timeout)`` cells;
* :func:`heatmap_csv` / :func:`scatter_csv` — the Snippet 1 §9 CSV shapes
  (heatmap: rows = ``hb_timeout_ms``, columns = ``hb_interval_ms``, value =
  median detection latency in ms; scatter: one row per cell with the missed
  count).  Latencies are measured in scenario time units on both backends and
  converted to milliseconds with the same ``time_scale`` factor, so the two
  backends land in directly comparable columns.

It also hosts :func:`check_hb_detection`, the registered ``hb_detection``
trace check that gives *simulated* heartbeat runs the same
ok/latency/missed metrics the orchestrator computes from JSONL logs.
"""

from __future__ import annotations

import statistics
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "detection_outcome",
    "median_iqr",
    "aggregate_cells",
    "heatmap_csv",
    "scatter_csv",
    "units_to_ms",
    "check_hb_detection",
    "check_topo_detection",
]

DECLARED_DEAD = "declared_dead"


def units_to_ms(units: float, time_scale: float) -> float:
    """Scenario time units → wall milliseconds at the run's time scale."""
    return units * time_scale * 1000.0


# ----------------------------------------------------------------------
# Per-trial outcome
# ----------------------------------------------------------------------
def detection_outcome(
    events: Iterable[Mapping[str, Any]],
    victim_identity: Any,
    t_fail: float,
    *,
    time_key: str = "t",
) -> dict:
    """Judge one victim's detection from a stream of event-log entries.

    ``events`` is any iterable of JSONL-style entries (merged across observer
    nodes); only ``declared_dead`` entries whose ``value`` names the victim's
    identity count.  The *first* such entry fixes ``t_detect`` — later
    duplicates (a second observer, or a buggy double declaration) never
    change the outcome, satisfying the count-once rule.

    Returns ``{"missed", "latency", "t_detect", "declarations"}`` where
    ``latency = t_detect − t_fail`` (same time base, Snippet 1 §5) and
    ``declarations`` counts every matching entry (so a test can assert that
    duplicates were *seen* yet counted once).
    """
    t_detect: float | None = None
    declarations = 0
    for entry in events:
        if entry.get("event") != DECLARED_DEAD or entry.get("value") != victim_identity:
            continue
        declarations += 1
        t = float(entry[time_key])
        if t_detect is None or t < t_detect:
            t_detect = t
    if t_detect is None:
        return {"missed": True, "latency": None, "t_detect": None, "declarations": 0}
    return {
        "missed": False,
        "latency": t_detect - t_fail,
        "t_detect": t_detect,
        "declarations": declarations,
    }


# ----------------------------------------------------------------------
# Cell statistics
# ----------------------------------------------------------------------
def median_iqr(values: Sequence[float]) -> dict | None:
    """Median and Tukey quartiles (median of each half) of a sample.

    Returns ``None`` for an empty sample.  With one value the quartiles
    collapse onto it (IQR 0); odd sample sizes exclude the middle element
    from both halves, even sizes split exactly — the textbook convention,
    chosen so the tier-1 tests can pin exact expected numbers.
    """
    if not values:
        return None
    ordered = sorted(values)
    n = len(ordered)
    if n == 1:
        q1 = q3 = ordered[0]
    else:
        half = n // 2
        q1 = statistics.median(ordered[:half])
        q3 = statistics.median(ordered[n - half :])
    return {
        "median": statistics.median(ordered),
        "q1": q1,
        "q3": q3,
        "iqr": q3 - q1,
    }


def aggregate_cells(
    trials: Iterable[Mapping[str, Any]],
    *,
    group_by: Sequence[str] = ("backend", "hb_interval", "hb_timeout"),
) -> list[dict]:
    """Fold per-trial outcomes into per-cell detection statistics.

    Each trial is ``{*group_by keys, "latency": float | None}`` (``None`` =
    missed).  A cell whose every trial missed still appears — with
    ``median/q1/q3/iqr`` set to ``None`` and the missed count telling the
    story — because an empty heatmap cell is a finding, not a KeyError.
    """
    cells: dict[tuple, dict] = {}
    for trial in trials:
        key = tuple(trial[name] for name in group_by)
        cell = cells.setdefault(
            key,
            {**{name: trial[name] for name in group_by}, "trials": 0, "missed": 0, "_lat": []},
        )
        cell["trials"] += 1
        if trial.get("latency") is None:
            cell["missed"] += 1
        else:
            cell["_lat"].append(float(trial["latency"]))
    results = []
    for key in sorted(cells, key=repr):
        cell = cells[key]
        stats = median_iqr(cell.pop("_lat"))
        cell.update(stats or {"median": None, "q1": None, "q3": None, "iqr": None})
        results.append(cell)
    return results


# ----------------------------------------------------------------------
# CSV shapes (Snippet 1 §9)
# ----------------------------------------------------------------------
def _ms(value: float | None, time_scale: float) -> str:
    return "" if value is None else f"{units_to_ms(value, time_scale):.3f}"


def heatmap_csv(cells: Sequence[Mapping[str, Any]], *, time_scale: float) -> str:
    """Rows = ``hb_timeout_ms``, columns = ``hb_interval_ms``, value = median ms.

    Cells with no surviving latency sample render empty (missed-only cells).
    """
    intervals = sorted({cell["hb_interval"] for cell in cells})
    timeouts = sorted({cell["hb_timeout"] for cell in cells})
    by_key = {(cell["hb_timeout"], cell["hb_interval"]): cell for cell in cells}
    header = ["hb_timeout_ms"] + [
        f"{units_to_ms(interval, time_scale):.0f}" for interval in intervals
    ]
    lines = [",".join(header)]
    for timeout in timeouts:
        row = [f"{units_to_ms(timeout, time_scale):.0f}"]
        for interval in intervals:
            cell = by_key.get((timeout, interval))
            row.append(_ms(None if cell is None else cell["median"], time_scale))
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def scatter_csv(cells: Sequence[Mapping[str, Any]], *, time_scale: float) -> str:
    """One row per cell: backend, missed, parameters, median and IQR in ms."""
    header = (
        "backend,missed,trials,hb_interval_ms,hb_timeout_ms,"
        "median_detection_ms,iqr_detection_ms"
    )
    lines = [header]
    for cell in cells:
        lines.append(
            ",".join(
                [
                    str(cell.get("backend", "")),
                    str(cell["missed"]),
                    str(cell["trials"]),
                    f"{units_to_ms(cell['hb_interval'], time_scale):.0f}",
                    f"{units_to_ms(cell['hb_timeout'], time_scale):.0f}",
                    _ms(cell["median"], time_scale),
                    _ms(cell["iqr"], time_scale),
                ]
            )
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The sim-side trace check (registered as "hb_detection")
# ----------------------------------------------------------------------
def check_hb_detection(trace, pattern):
    """Judge a simulated heartbeat run exactly like the real-run aggregator.

    An *identity* counts as failed only when every process bearing it crashed
    (homonyms cover for each other: a surviving namesake keeps ACKing).  For
    each failed identity the earliest ``declared_dead`` record of any correct
    process fixes ``t_detect``; a declaration must come *after* the last
    crash of that identity (a premature declaration is a violation), and a
    correct process's identity must never be declared at all.
    """
    from ..detectors.properties import CheckResult

    crashes = dict(trace.crashes)
    by_identity: dict[Any, list] = {}
    for process in pattern.membership.processes:
        by_identity.setdefault(pattern.membership.identity_of(process), []).append(process)
    failed_identities = {
        identity: max(crashes[p] for p in bearers)
        for identity, bearers in by_identity.items()
        if all(p in crashes for p in bearers)
    }

    violations: list[str] = []
    latencies: dict[Any, float] = {}
    missed: list[Any] = []
    for identity, t_fail in failed_identities.items():
        t_detect: float | None = None
        for observer in pattern.correct:
            for record in trace.records_of(observer, DECLARED_DEAD):
                if record.value != identity:
                    continue
                if record.time < t_fail:
                    violations.append(
                        f"{observer!r} declared {identity!r} dead at t={record.time} "
                        f"before its last bearer crashed at t={t_fail}"
                    )
                if t_detect is None or record.time < t_detect:
                    t_detect = record.time
        if t_detect is None:
            missed.append(identity)
        else:
            latencies[identity] = t_detect - t_fail
    for observer in pattern.correct:
        for record in trace.records_of(observer, DECLARED_DEAD):
            if record.value not in failed_identities:
                violations.append(
                    f"{observer!r} declared live identity {record.value!r} dead"
                )
    if missed:
        violations.append(f"missed detections: {sorted(missed, key=repr)!r}")

    stats = median_iqr(list(latencies.values()))
    return CheckResult(
        ok=not violations,
        violations=tuple(violations),
        stabilization_time=None if stats is None else stats["median"],
        details={
            "latencies": {repr(k): v for k, v in latencies.items()},
            "missed": len(missed),
            "detected": len(latencies),
            # Folded into the RunRecord metrics (namespaced by the check name)
            # by run_once, so sweeps can aggregate without re-parsing traces.
            "metrics": {
                "detected": len(latencies),
                "missed": len(missed),
                "median_latency": None if stats is None else stats["median"],
                "copies_sent": trace.message_copies_sent,
                "end_time": trace.end_time,
            },
        },
    )


# ----------------------------------------------------------------------
# The sparse-topology trace check (registered as "topo_detection")
# ----------------------------------------------------------------------
def check_topo_detection(trace, pattern):
    """Judge an index-addressed (ring/gossip) monitoring run.

    Sparse topologies monitor by process *index*, so there is no homonym
    cover: every crashed index must eventually be declared (by index) by at
    least one correct process — even when the victim's direct monitors
    crashed with it, which the ring repairs by recomputing successor windows.
    A declaration before the victim's crash, or of an index that never
    crashes, is a *false suspicion* and a violation.
    """
    from ..detectors.properties import CheckResult

    crashes = {process.index: when for process, when in trace.crashes.items()}

    violations: list[str] = []
    latencies: dict[int, float] = {}
    missed: list[int] = []
    false_suspicions = 0
    for observer in pattern.correct:
        for record in trace.records_of(observer, DECLARED_DEAD):
            target = record.value
            if target not in crashes:
                false_suspicions += 1
                violations.append(
                    f"{observer!r} declared live index {target!r} dead "
                    f"at t={record.time}"
                )
            elif record.time < crashes[target]:
                false_suspicions += 1
                violations.append(
                    f"{observer!r} declared index {target!r} dead at "
                    f"t={record.time} before its crash at t={crashes[target]}"
                )
    for victim_index, t_fail in sorted(crashes.items()):
        t_detect: float | None = None
        for observer in pattern.correct:
            for record in trace.records_of(observer, DECLARED_DEAD):
                if record.value != victim_index or record.time < t_fail:
                    continue
                if t_detect is None or record.time < t_detect:
                    t_detect = record.time
        if t_detect is None:
            missed.append(victim_index)
        else:
            latencies[victim_index] = t_detect - t_fail
    if missed:
        violations.append(f"missed detections (by index): {missed!r}")

    stats = median_iqr(list(latencies.values()))
    return CheckResult(
        ok=not violations,
        violations=tuple(violations),
        stabilization_time=None if stats is None else stats["median"],
        details={
            "latencies": {str(k): v for k, v in latencies.items()},
            "missed": len(missed),
            "detected": len(latencies),
            "metrics": {
                "detected": len(latencies),
                "missed": len(missed),
                "false_suspicions": false_suspicions,
                "median_latency": None if stats is None else stats["median"],
                "copies_sent": trace.message_copies_sent,
                "end_time": trace.end_time,
            },
        },
    )
