"""JSONL event logs on a shared monotonic time base.

Every node process (and the orchestrator's fault injector) appends one JSON
object per line to its own log file.  Timestamps come from
``time.monotonic()`` — on Linux a *system-wide* clock, so events written by
different processes on the same host are directly comparable — and are
reported relative to the run's ``epoch`` (the orchestrator's monotonic
reading at spawn time, passed to every node), which keeps the numbers small
and makes ``t_detect − t_fail`` a plain subtraction (Snippet 1 §5: same time
base for both sides).

Each line carries two clocks:

* ``t_wall`` — epoch-relative wall seconds (the shared base);
* ``t`` — scenario time units (``(t_wall − t0) / time_scale``), aligned with
  the simulator's clock so latencies compare 1:1 across backends.

Lines are flushed eagerly (write + flush per event): a node that is
SIGKILLed mid-run must not take its buffered history with it (§10's
log-flush edge case — and precisely the event we are here to measure).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterator

__all__ = ["EventLog", "read_events"]


class EventLog:
    """An append-only JSONL event log for one process of one run."""

    def __init__(
        self,
        path: str | Path,
        *,
        epoch: float,
        t0: float = 0.0,
        time_scale: float = 1.0,
        node: Any = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.path = Path(path)
        self.epoch = epoch
        self.t0 = t0
        self.time_scale = time_scale
        self.node = node
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def now_wall(self) -> float:
        """Epoch-relative wall seconds (the shared monotonic base)."""
        return time.monotonic() - self.epoch

    def to_units(self, t_wall: float) -> float:
        """Convert an epoch-relative wall timestamp into scenario time units."""
        return (t_wall - self.t0) / self.time_scale

    def log(self, event: str, *, t_wall: float | None = None, **fields: Any) -> dict:
        """Append one event line (flushed immediately) and return it."""
        t_wall = self.now_wall() if t_wall is None else t_wall
        entry: dict[str, Any] = {
            "event": event,
            "t_wall": round(t_wall, 6),
            "t": round(self.to_units(t_wall), 6),
        }
        if self.node is not None:
            entry["node"] = self.node
        entry.update(fields)
        self._handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        self._handle.flush()
        return entry

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: str | Path) -> Iterator[dict]:
    """Yield every event of a JSONL log, skipping a torn final line.

    A node killed by the fault injector may die between ``write`` and
    ``flush``; everything before the torn tail is still valid evidence.
    """
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                return
