"""Fault plans for the real backend.

A :class:`ScenarioSpec`'s crash schedule is declarative data; on the
simulator it becomes scheduled ``crash()`` events, and here it becomes a
:class:`FaultPlan` — the concrete list of (node, time, action) injections the
orchestrator executes against live OS processes.  ``kill`` is a clean crash
(SIGKILL: no atexit handlers, no flushing — the process is simply gone, the
closest a POSIX process gets to the paper's crash model); ``suspend`` is
SIGSTOP, which models a process that stops taking steps but keeps its sockets
open — the failure mode that distinguishes a timeout-based detector from a
connection-reset one.

The injector records ``t_fail`` at the moment the signal is actually sent,
on the same epoch-relative monotonic base as every node log (Snippet 1 §5/§8),
so detection latency is an honest cross-process subtraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..membership import Membership
from ..runtime.spec import ScenarioSpec

__all__ = ["FaultAction", "FaultPlan", "fault_plan"]

_ACTIONS = ("kill", "suspend")


@dataclass(frozen=True)
class FaultAction:
    """One scheduled injection against one node.

    ``resume_after`` (suspend only) schedules a SIGCONT ``resume_after`` time
    units after the SIGSTOP — the "process stops taking steps for a while,
    then continues" failure mode that a timeout-based detector must tolerate
    (either by declaring the stalled identity dead and standing by it, or by
    never suspecting a stall shorter than its timeout).
    """

    index: int
    identity: object
    at: float  # scenario time units after t0
    action: str = "kill"
    resume_after: float | None = None  # time units after `at`; suspend only

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )
        if self.at < 0:
            raise ConfigurationError("a fault cannot be scheduled before t0")
        if self.resume_after is not None:
            if self.action != "suspend":
                raise ConfigurationError(
                    "resume_after only applies to 'suspend' faults "
                    "(a SIGKILLed process cannot resume)"
                )
            if self.resume_after <= 0:
                raise ConfigurationError("resume_after must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """Every injection of one run, ordered by time."""

    actions: tuple[FaultAction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "actions", tuple(sorted(self.actions, key=lambda a: (a.at, a.index)))
        )

    @property
    def victims(self) -> tuple[int, ...]:
        return tuple(action.index for action in self.actions)


def fault_plan(spec: ScenarioSpec, membership: Membership) -> FaultPlan:
    """Resolve a spec's crash schedule into concrete injections."""
    schedule = spec.crashes.build(membership)
    action = str(spec.backend_params.get("fault_action", "kill"))
    resume_after = spec.backend_params.get("resume_after")
    if resume_after is not None:
        resume_after = float(resume_after)
    actions = []
    for process in membership.processes:
        at = schedule.crash_time(process)
        if at is not None:
            actions.append(
                FaultAction(
                    index=process.index,
                    identity=membership.identity_of(process),
                    at=float(at),
                    action=action,
                    resume_after=resume_after if action == "suspend" else None,
                )
            )
    return FaultPlan(tuple(actions))
