"""The local orchestrator: N node subprocesses, faults, logs → RunRecord.

:func:`execute_real_spec` is the real backend's twin of
:func:`repro.runtime.engine.execute_spec`'s sim path: it takes the same
declarative :class:`ScenarioSpec` (with ``backend="real"``), materialises the
membership, spawns one ``python -m repro.transport.node`` subprocess per
process, coordinates a common start time over a control socket, injects the
spec's crash schedule as OS signals (recording ``t_fail`` on the shared
monotonic base), collects every node's JSONL log, and synthesizes a
:class:`~repro.runtime.engine.RunRecord` whose metrics mirror what the
``hb_detection`` check reports for simulated runs — so a sweep can interleave
both backends and aggregate their rows with the same code.

Everything runs on localhost.  Multi-host orchestration (ssh fan-out, shared
log collection) is ROADMAP item 4 territory and deliberately out of scope.
"""

from __future__ import annotations

import asyncio
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from ..errors import ConfigurationError
from ..runtime.engine import RunRecord
from ..runtime.spec import ScenarioSpec
from .events import EventLog, read_events
from .faults import FaultPlan, fault_plan
from .framing import encode_frame, read_frame
from .validate import detection_outcome, median_iqr

__all__ = ["execute_real_spec"]

#: Default wall seconds per scenario time unit (0.05 ⇒ a 20-unit run ≈ 1 s).
DEFAULT_TIME_SCALE = 0.05
#: Margin between "all nodes ready" and t0, so every node sees the start frame
#: and wakes on the common origin.
DEFAULT_SETTLE_SECONDS = 0.3
_READY_TIMEOUT = 20.0
_EXIT_GRACE = 5.0


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _python_path() -> str:
    """A PYTHONPATH that lets the node subprocess import :mod:`repro`."""
    import os

    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    if src_root in existing.split(os.pathsep):
        return existing
    return src_root + (os.pathsep + existing if existing else "")


def execute_real_spec(spec: ScenarioSpec) -> RunRecord:
    """Execute one ``backend="real"`` scenario and return its record."""
    if spec.program is None:
        raise ConfigurationError("the real backend needs a program workload")
    return asyncio.run(_orchestrate(spec))


async def _orchestrate(spec: ScenarioSpec) -> RunRecord:
    import json
    import os

    membership = spec.membership.build()
    n = membership.size
    params = dict(spec.backend_params)
    time_scale = float(params.get("time_scale", DEFAULT_TIME_SCALE))
    settle = float(params.get("settle", DEFAULT_SETTLE_SECONDS))
    plan = fault_plan(spec, membership)

    explicit_dir = params.get("log_dir")
    keep_logs = bool(params.get("keep_logs", explicit_dir is not None))
    log_dir = Path(explicit_dir) if explicit_dir else Path(
        tempfile.mkdtemp(prefix="repro-transport-")
    )
    log_dir.mkdir(parents=True, exist_ok=True)

    ports = [_free_port() for _ in range(n)]
    epoch = time.monotonic()

    # -- control socket: nodes report ready, we broadcast start -----------
    ready: dict[int, asyncio.StreamWriter] = {}
    all_ready = asyncio.Event()

    async def _control(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        frame = await read_frame(reader)
        if frame and frame.get("event") == "node_ready":
            ready[int(frame["index"])] = writer
            if len(ready) == n:
                all_ready.set()

    control = await asyncio.start_server(_control, "127.0.0.1", 0)
    control_port = control.sockets[0].getsockname()[1]

    # -- spawn nodes -------------------------------------------------------
    identities = [membership.identity_of(process) for process in membership.processes]
    env = {**os.environ, "PYTHONPATH": _python_path()}
    procs: list[subprocess.Popen] = []
    stdio: list = []
    for index in range(n):
        peers = [
            [other, "127.0.0.1", ports[other]] for other in range(n) if other != index
        ]
        out = open(log_dir / f"node{index}.out", "w", encoding="utf-8")
        stdio.append(out)
        procs.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.transport.node",
                    "--index", str(index),
                    "--identity", json.dumps(identities[index]),
                    "--port", str(ports[index]),
                    "--peers", json.dumps(peers),
                    "--control", f"127.0.0.1:{control_port}",
                    "--epoch", repr(epoch),
                    "--time-scale", repr(time_scale),
                    "--program", spec.program,
                    "--program-params", json.dumps(dict(spec.program_params)),
                    "--seed", str(spec.seed),
                    "--horizon", repr(spec.horizon),
                    "--log", str(log_dir / f"node{index}.jsonl"),
                ],
                env=env,
                stdout=out,
                stderr=subprocess.STDOUT,
            )
        )

    injector: EventLog | None = None
    try:
        try:
            await asyncio.wait_for(all_ready.wait(), timeout=_READY_TIMEOUT)
        except asyncio.TimeoutError:
            dead = [i for i, proc in enumerate(procs) if proc.poll() is not None]
            raise RuntimeError(
                f"nodes never reached ready (exited early: {dead}); "
                f"see {log_dir}/node*.out"
            ) from None

        t0 = (time.monotonic() - epoch) + settle
        injector = EventLog(
            log_dir / "injector.jsonl", epoch=epoch, t0=t0, time_scale=time_scale
        )
        injector.log("run_start", t0=round(t0, 6), nodes=n, time_scale=time_scale)
        start_frame = encode_frame({"event": "start", "t0": t0})
        for writer in ready.values():
            writer.write(start_frame)
            await writer.drain()

        # -- fault injection (t_fail on the shared base, Snippet 1 §8) ----
        t_fail: dict[int, float] = {}
        for action in plan.actions:
            target_wall = epoch + t0 + action.at * time_scale
            await asyncio.sleep(max(0.0, target_wall - time.monotonic()))
            proc = procs[action.index]
            sig = signal.SIGKILL if action.action == "kill" else signal.SIGSTOP
            if proc.poll() is None:
                proc.send_signal(sig)
            entry = injector.log(
                "fault_injected",
                victim=action.index,
                identity=action.identity,
                action=action.action,
            )
            t_fail[action.index] = entry["t"]

        # -- wait for the horizon and self-exits --------------------------
        deadline = epoch + t0 + spec.horizon * time_scale + _EXIT_GRACE
        victims = set(plan.victims)
        while time.monotonic() < deadline:
            if all(
                proc.poll() is not None
                for index, proc in enumerate(procs)
                if index not in victims
            ):
                break
            await asyncio.sleep(0.05)
        injector.log("run_end")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
        for proc in procs:
            proc.wait()
        for handle in stdio:
            handle.close()
        if injector is not None:
            injector.close()
        control.close()
        await control.wait_closed()

    metrics = _metrics_from_logs(
        log_dir, membership=membership, plan=plan, t_fail=t_fail, time_scale=time_scale
    )
    if keep_logs:
        metrics["log_dir"] = str(log_dir)
    record = RunRecord(
        scenario=spec.name,
        seed=spec.seed,
        config=spec.to_dict(),
        metrics=metrics,
        digest="",  # real runs are nondeterministic: no dispatch-order digest
    )
    if not keep_logs:
        shutil.rmtree(log_dir, ignore_errors=True)
    return record


def _metrics_from_logs(
    log_dir: Path,
    *,
    membership,
    plan: FaultPlan,
    t_fail: dict[int, float],
    time_scale: float,
) -> dict:
    """Fold the node logs into sim-compatible ``hb_detection`` metrics."""
    victims = set(plan.victims)
    observer_events: list[dict] = []
    for process in membership.processes:
        if process.index in victims:
            continue
        observer_events.extend(read_events(log_dir / f"node{process.index}.jsonl"))

    # An identity failed only when every bearer was a victim (homonyms cover
    # for each other) — the same rule check_hb_detection applies to traces.
    by_identity: dict = {}
    for process in membership.processes:
        by_identity.setdefault(membership.identity_of(process), []).append(process.index)
    failed_identities = {
        identity: max(t_fail[index] for index in bearers)
        for identity, bearers in by_identity.items()
        if all(index in victims and index in t_fail for index in bearers)
    }

    latencies: dict[str, float] = {}
    missed = 0
    for identity, failed_at in failed_identities.items():
        outcome = detection_outcome(observer_events, identity, failed_at)
        if outcome["missed"]:
            missed += 1
        else:
            latencies[repr(identity)] = outcome["latency"]
    stats = median_iqr(list(latencies.values()))
    decisions = [e for e in observer_events if e.get("event") == "decide"]
    return {
        "backend": "real",
        "hb_detection_ok": missed == 0,
        "hb_detection_time": None if stats is None else stats["median"],
        "hb_detected": len(latencies),
        "hb_missed": missed,
        "hb_latencies": latencies,
        "t_fail": {str(index): when for index, when in sorted(t_fail.items())},
        "decided": bool(decisions),
        "time_scale": time_scale,
        "nodes": membership.size,
    }
