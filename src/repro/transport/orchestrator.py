"""The local orchestrator: N node subprocesses, faults, logs → RunRecord.

:func:`execute_real_spec` is the real backend's twin of
:func:`repro.runtime.engine.execute_spec`'s sim path: it takes the same
declarative :class:`ScenarioSpec` (with ``backend="real"``), materialises the
membership, spawns one ``python -m repro.transport.node`` subprocess per
process, coordinates a common start time over a control socket, injects the
spec's crash schedule as OS signals (recording ``t_fail`` on the shared
monotonic base — SIGSTOP faults with a ``resume_after`` get their SIGCONT
too), collects every node's JSONL log, and synthesizes a
:class:`~repro.runtime.engine.RunRecord` whose metrics mirror what the
``hb_detection`` check reports for simulated runs — so a sweep can interleave
both backends and aggregate their rows with the same code.

Tunables come from ``spec.backend_params`` (all optional):

* ``time_scale`` (default 0.05) — wall seconds per scenario time unit;
* ``settle`` (default 0.3) — margin between "all ready" and t0;
* ``ready_timeout`` (default 20) — how long to wait for every node to mesh
  up and report ready before declaring the run stillborn;
* ``mesh_deadline`` (default 20) — per-node outbound-dial budget, forwarded
  as ``--mesh-deadline`` (slow CI machines raise both of these);
* ``link`` — a loss/delay/jitter/duplicate mapping applied to every peer
  link via :class:`~repro.transport.node.ShapedLink`, mirroring
  ``repro.sim.links`` envelopes on real TCP;
* ``fault_action`` (``"kill"``/``"suspend"``) and ``resume_after`` — how the
  crash schedule is injected (see :mod:`repro.transport.faults`);
* ``log_dir`` / ``keep_logs`` — where the JSONL evidence lands.

Cleanup is unconditional: node subprocesses are reaped and the temporary log
directory removed on *every* exit path — normal completion, a mid-run
exception, or SIGINT (``KeyboardInterrupt`` unwinds through the same
``finally``) — never only on success.

Everything runs on localhost.  Multi-host orchestration (ssh fan-out, shared
log collection) is ROADMAP item 4 territory and deliberately out of scope.
"""

from __future__ import annotations

import asyncio
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from ..errors import ConfigurationError
from ..runtime.engine import RunRecord
from ..runtime.spec import ScenarioSpec
from .events import EventLog, read_events
from .faults import FaultPlan, fault_plan
from .framing import encode_frame, read_frame
from .node import MESH_DEADLINE_SECONDS, validate_link_params
from .validate import detection_outcome, median_iqr

__all__ = ["execute_real_spec", "resolve_timeouts"]

#: Default wall seconds per scenario time unit (0.05 ⇒ a 20-unit run ≈ 1 s).
DEFAULT_TIME_SCALE = 0.05
#: Margin between "all nodes ready" and t0, so every node sees the start frame
#: and wakes on the common origin.
DEFAULT_SETTLE_SECONDS = 0.3
#: Default wait for the full fleet to report ready (``ready_timeout`` param).
DEFAULT_READY_TIMEOUT = 20.0
_EXIT_GRACE = 5.0


def resolve_timeouts(params: dict) -> tuple[float, float]:
    """``(ready_timeout, mesh_deadline)`` from backend params, validated.

    Both used to be hard-coded module constants; slow CI machines (or huge
    fleets) raise them per spec via ``backend_params`` now.
    """
    ready_timeout = float(params.get("ready_timeout", DEFAULT_READY_TIMEOUT))
    mesh_deadline = float(params.get("mesh_deadline", MESH_DEADLINE_SECONDS))
    if ready_timeout <= 0:
        raise ConfigurationError(f"ready_timeout must be positive, got {ready_timeout}")
    if mesh_deadline <= 0:
        raise ConfigurationError(f"mesh_deadline must be positive, got {mesh_deadline}")
    return ready_timeout, mesh_deadline


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _python_path() -> str:
    """A PYTHONPATH that lets the node subprocess import :mod:`repro`."""
    import os

    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    if src_root in existing.split(os.pathsep):
        return existing
    return src_root + (os.pathsep + existing if existing else "")


def execute_real_spec(spec: ScenarioSpec) -> RunRecord:
    """Execute one ``backend="real"`` scenario and return its record."""
    if spec.program is None:
        raise ConfigurationError("the real backend needs a program workload")
    return asyncio.run(_orchestrate(spec))


def _injection_timeline(plan: FaultPlan) -> list[tuple[float, str, object]]:
    """Faults plus their scheduled SIGCONT resumes, in one sorted timeline."""
    timeline: list[tuple[float, str, object]] = []
    for action in plan.actions:
        timeline.append((action.at, "fault", action))
        if action.resume_after is not None:
            timeline.append((action.at + action.resume_after, "resume", action))
    timeline.sort(key=lambda entry: entry[0])
    return timeline


async def _orchestrate(spec: ScenarioSpec) -> RunRecord:
    import json
    import os

    membership = spec.membership.build()
    n = membership.size
    params = dict(spec.backend_params)
    time_scale = float(params.get("time_scale", DEFAULT_TIME_SCALE))
    settle = float(params.get("settle", DEFAULT_SETTLE_SECONDS))
    ready_timeout, mesh_deadline = resolve_timeouts(params)
    link = validate_link_params(dict(params["link"])) if params.get("link") else None
    plan = fault_plan(spec, membership)

    explicit_dir = params.get("log_dir")
    keep_logs = bool(params.get("keep_logs", explicit_dir is not None))
    log_dir = Path(explicit_dir) if explicit_dir else Path(
        tempfile.mkdtemp(prefix="repro-transport-")
    )
    log_dir.mkdir(parents=True, exist_ok=True)

    ports = [_free_port() for _ in range(n)]
    epoch = time.monotonic()

    # -- control socket: nodes report ready, we broadcast start -----------
    ready: dict[int, asyncio.StreamWriter] = {}
    all_ready = asyncio.Event()

    async def _control(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        frame = await read_frame(reader)
        if frame and frame.get("event") == "node_ready":
            ready[int(frame["index"])] = writer
            if len(ready) == n:
                all_ready.set()

    identities = [membership.identity_of(process) for process in membership.processes]
    env = {**os.environ, "PYTHONPATH": _python_path()}
    procs: list[subprocess.Popen] = []
    stdio: list = []
    control = None
    injector: EventLog | None = None
    t_fail: dict[int, float] = {}
    completed = False
    # Everything from here on — including the spawn loop itself — runs under
    # one ``finally``: a Popen that fails for node k, a SIGINT while waiting
    # for ready, or a mid-run exception must still reap the nodes spawned so
    # far, close every handle, and (unless logs were asked for) remove the
    # temp directory.  Leaked node processes are exactly the orphans the
    # chaos soak hunts for.
    try:
        control = await asyncio.start_server(_control, "127.0.0.1", 0)
        control_port = control.sockets[0].getsockname()[1]

        # -- spawn nodes ---------------------------------------------------
        for index in range(n):
            peers = [
                [other, "127.0.0.1", ports[other]] for other in range(n) if other != index
            ]
            out = open(log_dir / f"node{index}.out", "w", encoding="utf-8")
            stdio.append(out)
            command = [
                sys.executable,
                "-m",
                "repro.transport.node",
                "--index", str(index),
                "--identity", json.dumps(identities[index]),
                "--port", str(ports[index]),
                "--peers", json.dumps(peers),
                "--control", f"127.0.0.1:{control_port}",
                "--epoch", repr(epoch),
                "--time-scale", repr(time_scale),
                "--program", spec.program,
                "--program-params", json.dumps(dict(spec.program_params)),
                "--seed", str(spec.seed),
                "--horizon", repr(spec.horizon),
                "--log", str(log_dir / f"node{index}.jsonl"),
                "--mesh-deadline", repr(mesh_deadline),
            ]
            if link is not None:
                command += ["--link", json.dumps(link)]
            procs.append(
                subprocess.Popen(command, env=env, stdout=out, stderr=subprocess.STDOUT)
            )

        try:
            await asyncio.wait_for(all_ready.wait(), timeout=ready_timeout)
        except asyncio.TimeoutError:
            dead = [i for i, proc in enumerate(procs) if proc.poll() is not None]
            raise RuntimeError(
                f"nodes never reached ready within {ready_timeout}s "
                f"(exited early: {dead}); raise backend_params['ready_timeout'] "
                f"on slow machines; see {log_dir}/node*.out"
            ) from None

        t0 = (time.monotonic() - epoch) + settle
        injector = EventLog(
            log_dir / "injector.jsonl", epoch=epoch, t0=t0, time_scale=time_scale
        )
        injector.log(
            "run_start", t0=round(t0, 6), nodes=n, time_scale=time_scale,
            link=link, shaped=link is not None,
        )
        start_frame = encode_frame({"event": "start", "t0": t0})
        for writer in ready.values():
            writer.write(start_frame)
            await writer.drain()

        # -- fault injection (t_fail on the shared base, Snippet 1 §8) ----
        for at, kind, action in _injection_timeline(plan):
            target_wall = epoch + t0 + at * time_scale
            await asyncio.sleep(max(0.0, target_wall - time.monotonic()))
            proc = procs[action.index]
            if kind == "resume":
                if proc.poll() is None:
                    proc.send_signal(signal.SIGCONT)
                injector.log(
                    "fault_resumed", victim=action.index, identity=action.identity
                )
                continue
            sig = signal.SIGKILL if action.action == "kill" else signal.SIGSTOP
            if proc.poll() is None:
                proc.send_signal(sig)
            entry = injector.log(
                "fault_injected",
                victim=action.index,
                identity=action.identity,
                action=action.action,
            )
            t_fail[action.index] = entry["t"]

        # -- wait for the horizon and self-exits --------------------------
        deadline = epoch + t0 + spec.horizon * time_scale + _EXIT_GRACE
        victims = set(plan.victims)
        while time.monotonic() < deadline:
            if all(
                proc.poll() is not None
                for index, proc in enumerate(procs)
                if index not in victims
            ):
                break
            await asyncio.sleep(0.05)
        injector.log("run_end")
        completed = True
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
        for proc in procs:
            proc.wait()
        for handle in stdio:
            handle.close()
        if injector is not None:
            injector.close()
        if control is not None:
            control.close()
            await control.wait_closed()
        if not completed and not keep_logs:
            # Failed or interrupted run: nothing downstream will read these
            # logs, so the temp dir must not outlive the exception.
            shutil.rmtree(log_dir, ignore_errors=True)

    metrics = _metrics_from_logs(
        log_dir, membership=membership, plan=plan, t_fail=t_fail, time_scale=time_scale
    )
    if link is not None:
        metrics["link"] = link
    if keep_logs:
        metrics["log_dir"] = str(log_dir)
    record = RunRecord(
        scenario=spec.name,
        seed=spec.seed,
        config=spec.to_dict(),
        metrics=metrics,
        digest="",  # real runs are nondeterministic: no dispatch-order digest
    )
    if not keep_logs:
        shutil.rmtree(log_dir, ignore_errors=True)
    return record


def _metrics_from_logs(
    log_dir: Path,
    *,
    membership,
    plan: FaultPlan,
    t_fail: dict[int, float],
    time_scale: float,
) -> dict:
    """Fold the node logs into sim-compatible ``hb_detection`` metrics."""
    victims = set(plan.victims)
    observer_events: list[dict] = []
    for process in membership.processes:
        if process.index in victims:
            continue
        observer_events.extend(read_events(log_dir / f"node{process.index}.jsonl"))

    # An identity failed only when every bearer was a victim (homonyms cover
    # for each other) — the same rule check_hb_detection applies to traces.
    by_identity: dict = {}
    for process in membership.processes:
        by_identity.setdefault(membership.identity_of(process), []).append(process.index)
    failed_identities = {
        identity: max(t_fail[index] for index in bearers)
        for identity, bearers in by_identity.items()
        if all(index in victims and index in t_fail for index in bearers)
    }

    latencies: dict[str, float] = {}
    missed = 0
    for identity, failed_at in failed_identities.items():
        outcome = detection_outcome(observer_events, identity, failed_at)
        if outcome["missed"]:
            missed += 1
        else:
            latencies[repr(identity)] = outcome["latency"]
    stats = median_iqr(list(latencies.values()))
    decisions = [e for e in observer_events if e.get("event") == "decide"]
    return {
        "backend": "real",
        "hb_detection_ok": missed == 0,
        "hb_detection_time": None if stats is None else stats["median"],
        "hb_detected": len(latencies),
        "hb_missed": missed,
        "hb_latencies": latencies,
        "t_fail": {str(index): when for index, when in sorted(t_fail.items())},
        "decided": bool(decisions),
        "time_scale": time_scale,
        "nodes": membership.size,
    }
