"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library problems without masking programming errors elsewhere.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A system, scenario, or algorithm was configured inconsistently.

    Examples: a crash schedule that kills more processes than exist, a
    partially synchronous timing model with a negative GST, or a consensus
    algorithm instantiated with fewer correct processes than it requires.
    """


class SimulationError(ReproError):
    """The simulation engine reached an invalid internal state."""


class WorkerCrashError(ReproError):
    """A worker process died while executing part of a sweep.

    Raised by the process-pool executors in place of the bare
    :class:`concurrent.futures.process.BrokenProcessPool`, naming the
    scenarios (name + seed) that were in flight when the worker died so the
    offending configuration can be reproduced serially.  ``candidates`` holds
    the descriptions of every item whose result was lost; the crashing item
    is guaranteed to be among them.

    ``history`` carries the retry/backoff story across the owning executor's
    lifetime — one entry per prior crash (attempt number, cause) — and is
    folded into the message, so a sweep that kept respawning a dying pool is
    diagnosable from the final log line alone.
    """

    def __init__(
        self,
        message: str,
        *,
        candidates: "list[str] | None" = None,
        history: "list[str] | None" = None,
    ) -> None:
        self.candidates: list[str] = list(candidates or [])
        self.history: list[str] = list(history or [])
        if self.history:
            message = (
                f"{message} [crash history: {len(self.history)} attempt(s): "
                f"{'; '.join(self.history)}]"
            )
        super().__init__(message)


class ProcessCrashedError(SimulationError):
    """An operation was attempted on behalf of a crashed process."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or outside the run horizon."""


class DetectorError(ReproError):
    """A failure detector was queried or constructed incorrectly."""


class UnknownDetectorClassError(DetectorError):
    """A detector class name was requested that the registry does not know."""


class ReductionError(ReproError):
    """A failure-detector reduction was applied in an unsupported model.

    For instance, the Figure 4 reduction (HΣ → Σ) is only defined for systems
    with unique identifiers; applying it to a run with homonyms raises this.
    """


class ConsensusViolationError(ReproError):
    """A consensus safety property (validity or agreement) was violated.

    The consensus validators raise this when asked to *assert* correctness of
    a run; when asked merely to *report*, they return a verdict object instead.
    """


class TerminationError(ReproError):
    """A run did not reach the expected quiescent/decided state in time.

    This usually means the simulation horizon was too small for the configured
    GST, latency bound, and detector stabilization time, or that an algorithm
    genuinely fails to terminate (e.g. the no-coordination ablation).
    """


class TraceError(ReproError):
    """A trace query referenced a process, time, or record that does not exist."""
