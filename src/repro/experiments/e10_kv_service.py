"""E10 — the replicated KV service under load and faults.

The consensus algorithms exist to power state-machine replication; E10 runs
them as one: a homonymous replica group (the Figure 8 algorithm driving a
slot-per-instance replicated log) serving GET/SET/CAS/DEL traffic from
closed-loop client populations, swept over client count × key skew × fault
envelope.  Every run's client history goes through the offline
linearizability checker, so the table reports *certified* correctness, not
just termination:

* **linearizability is unconditional** — crashes and message loss may slow
  or starve the service, but no run serves a non-linearizable history (the
  replication log inherits consensus agreement);
* **completion is what the envelope erodes** — with lossy links the paper's
  algorithms never retransmit, so some client requests are lost outright and
  the completion-rate column drops below 1;
* **latency feels the faults** — crashing a replica mid-run stretches the
  tail percentiles while leaving correctness untouched.
"""

from __future__ import annotations

from ..analysis.runner import ExperimentResult, ParameterSweep, aggregate_rows
from ..runtime import Engine, ScenarioSpec, lossy, minority, scenario

__all__ = ["run"]

DESCRIPTION = "Replicated KV service: client count × key skew × fault envelope, linearizability-certified"

#: The replica group: 5 replicas over 3 identifiers (homonymy like E9's).
_GROUPS = [2, 2, 1]
_CRASH_AT = 12.0
_LOSS = 0.05


def _make_spec(config: dict) -> ScenarioSpec:
    build = (
        scenario("E10")
        .homonyms(_GROUPS)
        .detectors("HOmega", stabilization=10.0)
        .kv(
            clients=config["clients"],
            ops_per_client=config["ops_per_client"],
            skew=config["skew"],
            think_time=1.0,
            key_space=6,
        )
        .horizon(600.0)
        .seed(config["seed"])
    )
    fault = config["fault"]
    if fault == "crash":
        build = build.crashes(minority(at=_CRASH_AT, count=1))
    elif fault == "lossy":
        build = build.network(lossy(_LOSS)).adversarial()
    return build.build()


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run the E10 sweep and return the aggregated result."""
    engine = engine or Engine()
    if quick:
        parameters = {
            "clients": [2, 4],
            "ops_per_client": [4],
            "skew": ["uniform", "zipf"],
            "fault": ["none", "crash", "lossy"],
        }
        repetitions = 1
    else:
        parameters = {
            "clients": [2, 4, 8],
            "ops_per_client": [6],
            "skew": ["uniform", "zipf"],
            "fault": ["none", "crash", "lossy"],
        }
        repetitions = 3
    sweep = ParameterSweep(parameters, repetitions=repetitions, base_seed=seed)
    rows = engine.run_sweep(_make_spec, sweep)
    aggregated = aggregate_rows(
        rows,
        group_by=["clients", "skew", "fault"],
        metrics=[
            "completion_rate",
            "throughput",
            "latency_p50",
            "latency_p99",
            "linearizable",
        ],
    )
    baseline = [row for row in rows if row["fault"] == "none"]
    summary = {
        "runs": len(rows),
        "all_linearizable": all(row["linearizable"] for row in rows),
        "violations": sum(row["lin_violations"] for row in rows),
        "baseline_all_complete": all(row["completion_rate"] == 1.0 for row in baseline),
        "completion_by_fault": {
            fault: _mean(
                [row["completion_rate"] for row in rows if row["fault"] == fault]
            )
            for fault in ("none", "crash", "lossy")
        },
    }
    return ExperimentResult(
        experiment="E10",
        description=DESCRIPTION,
        rows=tuple(aggregated),
        summary=summary,
        columns=(
            "clients",
            "skew",
            "fault",
            "runs",
            "completion_rate",
            "throughput",
            "latency_p50",
            "latency_p99",
            "linearizable",
        ),
    )


def _mean(values: list[float]) -> float | None:
    if not values:
        return None
    return sum(values) / len(values)
