"""E2 — The Figure 7 HΣ implementation in HSS[∅] satisfies all four properties.

Reproduces Theorem 6 empirically: in a synchronous homonymous system with
unknown membership, the step-wise ``IDENT`` exchange yields an HΣ detector —
validity, monotonicity, liveness, and safety all hold — for every homonymy
pattern and any number of crashes (including a majority of faulty processes,
which is what makes HΣ necessary for the Figure 9 consensus algorithm).
"""

from __future__ import annotations

from ..algorithms import HSigmaSynchronousProgram
from ..analysis.runner import ExperimentResult, ParameterSweep, aggregate_rows
from ..detectors import check_hsigma
from ..runtime import Engine
from ..sim import Simulation, SynchronousTiming, build_system
from ..sim.failures import FailurePattern
from ..workloads.crashes import cascading_crashes
from ..workloads.homonymy import membership_with_distinct_ids

__all__ = ["run"]

DESCRIPTION = "HΣ in synchronous homonymous systems (Figure 7, Theorem 6)"


def _run_one(config: dict) -> dict:
    membership = membership_with_distinct_ids(config["n"], config["distinct_ids"])
    crash_count = min(config["crashes"], membership.size - 1)
    crash_schedule = cascading_crashes(
        membership,
        crash_count,
        first_at=2.4,
        interval=2.0,
        partial_broadcast_fraction=0.5 if config["crash_mid_broadcast"] else None,
    )
    steps = config["steps"]
    system = build_system(
        membership=membership,
        timing=SynchronousTiming(step=1.0),
        program_factory=lambda pid, identity: HSigmaSynchronousProgram(steps=steps),
        crash_schedule=crash_schedule,
        seed=config["seed"],
    )
    simulation = Simulation(system)
    trace = simulation.run(until=steps + 2.0)
    pattern = FailurePattern(membership, crash_schedule)
    result = check_hsigma(trace, pattern)
    return {
        "properties_ok": result.ok,
        "violations": len(result.violations),
        "faulty": crash_count,
    }


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run the E2 sweep and return the aggregated result."""
    engine = engine or Engine()
    if quick:
        parameters = {
            "n": [5],
            "distinct_ids": [1, 3, 5],
            "crashes": [0, 2, 4],
            "crash_mid_broadcast": [False],
            "steps": [14],
        }
        repetitions = 1
    else:
        parameters = {
            "n": [4, 6, 8],
            "distinct_ids": [1, 2, 4],
            "crashes": [0, 1, 3, 5],
            "crash_mid_broadcast": [False, True],
            "steps": [20],
        }
        repetitions = 2
    sweep = ParameterSweep(parameters, repetitions=repetitions, base_seed=seed)
    rows = engine.sweep(_run_one, sweep)
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "distinct_ids", "crashes", "crash_mid_broadcast"],
        metrics=["properties_ok", "violations"],
    )
    summary = {
        "runs": len(rows),
        "all_properties_hold": all(row["properties_ok"] for row in rows),
    }
    return ExperimentResult(
        experiment="E2",
        description=DESCRIPTION,
        rows=tuple(aggregated),
        summary=summary,
        columns=(
            "n",
            "distinct_ids",
            "crashes",
            "crash_mid_broadcast",
            "runs",
            "properties_ok",
            "violations",
        ),
    )
