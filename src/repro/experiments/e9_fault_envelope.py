"""E9 — the fault envelope: consensus success across a loss × partition spectrum.

The paper proves the Figure 9 algorithm correct in ``HAS[HΩ, HΣ]`` with
*reliable* links.  E9 measures what happens when that assumption is broken on
purpose: every link copy is dropped with probability ``loss`` and the system
is split into two blocks by a timed partition that either never happens,
heals mid-run, or never heals.  The scenarios acknowledge they run outside
the guarantees with ``.adversarial()`` — exactly the combinations the
scenario builder would otherwise reject.

Three claims are visible in the table:

* **safety is unconditional** — no amount of loss or partitioning makes the
  survivors disagree (quorum intersection does not depend on delivery);
* **termination is what the envelope erodes** — success degrades with loss
  and collapses under a never-healing partition, because no HΣ quorum fits
  inside one block;
* **healing only helps if new traffic follows it** — the algorithm has no
  retransmission timers, so a healed partition is recovered from only when
  the HΣ detector stabilises *after* the heal (its label growth makes every
  process re-broadcast its phase message over the restored links).  The
  ``stabilization`` column is therefore the recovery knob.
"""

from __future__ import annotations

from ..analysis.runner import ExperimentResult, ParameterSweep, aggregate_rows
from ..runtime import Engine, composed, lossy, partitioned, scenario

__all__ = ["run"]

DESCRIPTION = "Consensus success across a loss × partition fault envelope (adversarial links)"

_N = 5
_PARTITION_START = 5.0
_PARTITION_HEAL = 45.0
#: The cut: processes {0, 1} on one side, {2, 3, 4} on the other.
_BLOCKS = [[0, 1], [2, 3, 4]]


def _partition_window(kind: str) -> dict | None:
    if kind == "none":
        return None
    end = _PARTITION_HEAL if kind == "healing" else None
    return {"start": _PARTITION_START, "end": end, "groups": _BLOCKS}


def _run_one(config: dict) -> dict:
    stages = []
    if config["loss"] > 0.0:
        stages.append(lossy(config["loss"]))
    window = _partition_window(config["partition"])
    if window is not None:
        stages.append(partitioned(window))
    build = (
        scenario("E9")
        .processes(_N)
        .distinct_ids(2)
        .detectors("HOmega", "HSigma", stabilization=config["stabilization"])
        .consensus("homega_hsigma")
        .horizon(400.0)
        .seed(config["seed"])
    )
    if stages:
        build = build.network(stages[0] if len(stages) == 1 else composed(*stages))
        build = build.adversarial()
    row = dict(Engine().run(build.build()).metrics)
    row["degraded"] = bool(stages)
    return row


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run the E9 sweep and return the aggregated result."""
    engine = engine or Engine()
    if quick:
        parameters = {
            "loss": [0.0, 0.1, 0.3],
            "partition": ["none", "healing", "permanent"],
            "stabilization": [10.0, 60.0],
        }
        repetitions = 2
    else:
        parameters = {
            "loss": [0.0, 0.05, 0.1, 0.2, 0.3, 0.5],
            "partition": ["none", "healing", "permanent"],
            "stabilization": [10.0, 60.0, 90.0],
        }
        repetitions = 4
    sweep = ParameterSweep(parameters, repetitions=repetitions, base_seed=seed)
    rows = engine.sweep(_run_one, sweep)
    aggregated = aggregate_rows(
        rows,
        group_by=["loss", "partition", "stabilization"],
        metrics=["decided", "safe", "decision_time", "broadcasts"],
    )
    baseline = [row for row in rows if not row["degraded"]]
    degraded = [row for row in rows if row["degraded"]]
    healed_late_stab = [
        row
        for row in rows
        if row["partition"] == "healing"
        and row["stabilization"] > _PARTITION_HEAL
        and row["loss"] == 0.0
    ]
    success_by_partition = {
        kind: _success_rate([row for row in rows if row["partition"] == kind])
        for kind in ("none", "healing", "permanent")
    }
    summary = {
        "runs": len(rows),
        "all_safe": all(row["safe"] for row in rows),
        "baseline_all_decided": all(row["decided"] for row in baseline),
        "success_rate": _success_rate(rows),
        "degraded_success_rate": _success_rate(degraded),
        "success_by_partition": success_by_partition,
        "healing_recovered_with_late_stabilization": _success_rate(healed_late_stab),
    }
    return ExperimentResult(
        experiment="E9",
        description=DESCRIPTION,
        rows=tuple(aggregated),
        summary=summary,
        columns=(
            "loss",
            "partition",
            "stabilization",
            "runs",
            "decided",
            "safe",
            "decision_time",
            "broadcasts",
        ),
    )


def _success_rate(rows: list[dict]) -> float | None:
    if not rows:
        return None
    return sum(1 for row in rows if row["decided"]) / len(rows)
