"""E6 — Consensus cost across the homonymy spectrum, against both baselines.

The paper positions homonymous systems as the general case whose two extremes
are classical unique-identifier systems and anonymous systems.  This
experiment runs the Figure 8 algorithm on memberships sweeping from anonymous
(1 distinct identifier) to unique (n distinct identifiers) and compares, at
the two extremes, against the corresponding specialised baselines:

* the classical Ω + majority algorithm at the unique-identifier extreme, and
* the Bonnet–Raynal-style AΩ + majority algorithm at the anonymous extreme.

The expected shape: the homonymous algorithm pays a modest, roughly constant
overhead (the extra COORD exchange) over the specialised baselines at the
extremes and degrades gracefully in between — decisions in a small constant
number of rounds everywhere.
"""

from __future__ import annotations

from ..analysis.runner import ExperimentResult, ParameterSweep, aggregate_rows
from ..consensus import (
    AnonymousAOmegaConsensus,
    ClassicalOmegaConsensus,
    HOmegaMajorityConsensus,
)
from ..detectors import AOmegaOracle, HOmegaOracle, OmegaOracle
from ..workloads.crashes import minority_crashes
from ..workloads.homonymy import membership_with_distinct_ids
from .common import run_consensus_once

__all__ = ["run"]

DESCRIPTION = "Consensus cost from anonymous to unique identifiers, vs specialised baselines"

_STABILIZATION = 15.0


def _detector_for(algorithm: str):
    if algorithm == "figure8-homega":
        return {
            "HOmega": lambda services: HOmegaOracle(
                services, stabilization_time=_STABILIZATION, noise_period=5.0
            )
        }
    if algorithm == "classical-omega":
        return {
            "Omega": lambda services: OmegaOracle(
                services, stabilization_time=_STABILIZATION, noise_period=5.0
            )
        }
    if algorithm == "anonymous-aomega":
        return {
            "AOmega": lambda services: AOmegaOracle(
                services, stabilization_time=_STABILIZATION, noise_period=5.0
            )
        }
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _consensus_factory(algorithm: str, n: int):
    if algorithm == "figure8-homega":
        return lambda proposal: HOmegaMajorityConsensus(proposal, n=n)
    if algorithm == "classical-omega":
        return lambda proposal: ClassicalOmegaConsensus(proposal, n=n)
    if algorithm == "anonymous-aomega":
        return lambda proposal: AnonymousAOmegaConsensus(proposal, n=n)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _run_one(config: dict) -> dict:
    membership = membership_with_distinct_ids(config["n"], config["distinct_ids"])
    crash_schedule = minority_crashes(membership, at=8.0, count=1)
    return run_consensus_once(
        membership,
        _consensus_factory(config["algorithm"], membership.size),
        crash_schedule=crash_schedule,
        detectors=_detector_for(config["algorithm"]),
        horizon=600.0,
        seed=config["seed"],
    )


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Run the E6 spectrum sweep and return the aggregated result."""
    n = 6
    repetitions = 2 if quick else 6
    spectrum_points = [1, 2, 3, 6] if quick else list(range(1, n + 1))

    sweep = ParameterSweep(
        {
            "algorithm": ["figure8-homega"],
            "n": [n],
            "distinct_ids": spectrum_points,
        },
        repetitions=repetitions,
        base_seed=seed,
    )
    rows = sweep.run(_run_one)

    baseline_sweep = ParameterSweep(
        {
            "algorithm": ["classical-omega"],
            "n": [n],
            "distinct_ids": [n],
        },
        repetitions=repetitions,
        base_seed=seed + 500,
    )
    rows.extend(baseline_sweep.run(_run_one))
    anonymous_sweep = ParameterSweep(
        {
            "algorithm": ["anonymous-aomega"],
            "n": [n],
            "distinct_ids": [1],
        },
        repetitions=repetitions,
        base_seed=seed + 900,
    )
    rows.extend(anonymous_sweep.run(_run_one))

    aggregated = aggregate_rows(
        rows,
        group_by=["algorithm", "distinct_ids"],
        metrics=["decided", "safe", "decision_time", "rounds", "broadcasts"],
    )
    summary = {
        "runs": len(rows),
        "all_terminated": all(row["decided"] for row in rows),
        "all_safe": all(row["safe"] for row in rows),
    }
    return ExperimentResult(
        experiment="E6",
        description=DESCRIPTION,
        rows=tuple(aggregated),
        summary=summary,
        columns=(
            "algorithm",
            "distinct_ids",
            "runs",
            "decided",
            "safe",
            "decision_time",
            "rounds",
            "broadcasts",
        ),
    )
