"""E6 — Consensus cost across the homonymy spectrum, against both baselines.

The paper positions homonymous systems as the general case whose two extremes
are classical unique-identifier systems and anonymous systems.  This
experiment runs the Figure 8 algorithm on memberships sweeping from anonymous
(1 distinct identifier) to unique (n distinct identifiers) and compares, at
the two extremes, against the corresponding specialised baselines:

* the classical Ω + majority algorithm at the unique-identifier extreme, and
* the Bonnet–Raynal-style AΩ + majority algorithm at the anonymous extreme.

The expected shape: the homonymous algorithm pays a modest, roughly constant
overhead (the extra COORD exchange) over the specialised baselines at the
extremes and degrades gracefully in between — decisions in a small constant
number of rounds everywhere.
"""

from __future__ import annotations

from ..analysis.runner import ExperimentResult, ParameterSweep, aggregate_rows
from ..runtime import Engine, execute_spec, minority, scenario

__all__ = ["run"]

DESCRIPTION = "Consensus cost from anonymous to unique identifiers, vs specialised baselines"

_STABILIZATION = 15.0

#: algorithm label → (consensus registry name, detector it queries)
_ALGORITHMS = {
    "figure8-homega": ("homega_majority", "HOmega"),
    "classical-omega": ("classical_omega", "Omega"),
    "anonymous-aomega": ("anonymous_aomega", "AOmega"),
}


def _run_one(config: dict) -> dict:
    consensus_name, detector_name = _ALGORITHMS[config["algorithm"]]
    spec = (
        scenario("E6")
        .processes(config["n"])
        .distinct_ids(config["distinct_ids"])
        .crashes(minority(at=8.0, count=1))
        .detectors(detector_name, stabilization=_STABILIZATION)
        .consensus(consensus_name)
        .horizon(600.0)
        .seed(config["seed"])
        .build()
    )
    return dict(execute_spec(spec).metrics)


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run the E6 spectrum sweep and return the aggregated result."""
    engine = engine or Engine()
    n = 6
    repetitions = 2 if quick else 6
    spectrum_points = [1, 2, 3, 6] if quick else list(range(1, n + 1))

    sweep = ParameterSweep(
        {
            "algorithm": ["figure8-homega"],
            "n": [n],
            "distinct_ids": spectrum_points,
        },
        repetitions=repetitions,
        base_seed=seed,
    )
    rows = engine.sweep(_run_one, sweep)

    baseline_sweep = ParameterSweep(
        {
            "algorithm": ["classical-omega"],
            "n": [n],
            "distinct_ids": [n],
        },
        repetitions=repetitions,
        base_seed=seed + 500,
    )
    rows.extend(engine.sweep(_run_one, baseline_sweep))
    anonymous_sweep = ParameterSweep(
        {
            "algorithm": ["anonymous-aomega"],
            "n": [n],
            "distinct_ids": [1],
        },
        repetitions=repetitions,
        base_seed=seed + 900,
    )
    rows.extend(engine.sweep(_run_one, anonymous_sweep))

    aggregated = aggregate_rows(
        rows,
        group_by=["algorithm", "distinct_ids"],
        metrics=["decided", "safe", "decision_time", "rounds", "broadcasts"],
    )
    summary = {
        "runs": len(rows),
        "all_terminated": all(row["decided"] for row in rows),
        "all_safe": all(row["safe"] for row in rows),
    }
    return ExperimentResult(
        experiment="E6",
        description=DESCRIPTION,
        rows=tuple(aggregated),
        summary=summary,
        columns=(
            "algorithm",
            "distinct_ids",
            "runs",
            "decided",
            "safe",
            "decision_time",
            "rounds",
            "broadcasts",
        ),
    )
