"""The experiment harness behind EXPERIMENTS.md and the benchmarks.

Every module ``eN_*`` regenerates one experiment of the reproduction plan
(see DESIGN.md §3).  Each exposes ``run(quick=True, seed=0)`` returning an
:class:`~repro.analysis.runner.ExperimentResult`; ``quick`` trades sweep width
for runtime and is what the benchmark suite uses.
"""

from . import (
    e1_ohp_convergence,
    e2_hsigma_sync,
    e3_reductions,
    e4_consensus_majority,
    e5_consensus_hsigma,
    e6_homonymy_spectrum,
    e7_coordination_ablation,
    e8_stacked_consensus,
    e9_fault_envelope,
    e10_kv_service,
    e12_membership_scaling,
)
from .e1_ohp_convergence import run as run_e1
from .e2_hsigma_sync import run as run_e2
from .e3_reductions import run as run_e3
from .e4_consensus_majority import run as run_e4
from .e5_consensus_hsigma import run as run_e5
from .e6_homonymy_spectrum import run as run_e6
from .e7_coordination_ablation import run as run_e7
from .e8_stacked_consensus import run as run_e8
from .e9_fault_envelope import run as run_e9
from .e10_kv_service import run as run_e10
from .e11_sim_vs_real import run as run_e11
from .e12_membership_scaling import run as run_e12

from ..runtime.registry import EXPERIMENTS, register_experiment

ALL_EXPERIMENTS = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E12": run_e12,
}

#: Experiments that measure wall-clock behaviour (the real transport
#: backend).  They are registered and runnable by name, but excluded from
#: ``ALL_EXPERIMENTS`` — and therefore from the determinism-digest manifest
#: and the CLI's default selection — because their results are not
#: bit-reproducible.
WALLCLOCK_EXPERIMENTS = {
    "E11": run_e11,
}

for _name, _runner in {**ALL_EXPERIMENTS, **WALLCLOCK_EXPERIMENTS}.items():
    if _name not in EXPERIMENTS:
        register_experiment(_name, _runner)

__all__ = [
    "ALL_EXPERIMENTS",
    "WALLCLOCK_EXPERIMENTS",
    "run_e1",
    "run_e2",
    "run_e3",
    "run_e4",
    "run_e5",
    "run_e6",
    "run_e7",
    "run_e8",
    "run_e9",
    "run_e10",
    "run_e11",
    "run_e12",
]
