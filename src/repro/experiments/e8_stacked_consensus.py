"""E8 — End-to-end stacked system: Figure 6 (HΩ) running under Figure 8.

The paper's headline combination: because HΩ is implementable under partial
synchrony (unlike the anonymous AΩ), stacking the Figure 6 implementation
underneath the Figure 8 consensus algorithm solves consensus in any
homonymous system with partially synchronous processes, eventually timely
links, and a majority of correct processes — with no oracle anywhere.

The sweep varies the homonymy pattern and GST and checks that every run
decides correctly; the decision time tracks GST plus the detector's
convergence time, which is the expected shape.
"""

from __future__ import annotations

from ..algorithms import OhpPollingProgram
from ..analysis.metrics import consensus_metrics
from ..analysis.runner import ExperimentResult, ParameterSweep, aggregate_rows
from ..consensus import HOmegaMajorityConsensus, validate_consensus
from ..sim import CompositeProgram, PartiallySynchronousTiming, Simulation, build_system
from ..sim.failures import FailurePattern
from ..workloads.crashes import minority_crashes
from ..workloads.homonymy import membership_with_distinct_ids
from .common import distinct_proposals

__all__ = ["run"]

DESCRIPTION = "Consensus with no oracle: Figure 6 HΩ implementation stacked under Figure 8"


def _run_one(config: dict) -> dict:
    membership = membership_with_distinct_ids(config["n"], config["distinct_ids"])
    proposals = distinct_proposals(membership)
    crash_schedule = minority_crashes(membership, at=config["gst"] / 2 + 1.0, count=1)

    def factory(pid, identity):
        detector_program = OhpPollingProgram(detector_name="HOmega", record_outputs=False)
        consensus_program = HOmegaMajorityConsensus(proposals[pid], n=membership.size)
        return CompositeProgram(detector_program, consensus_program)

    # Figure 8 sends each consensus message exactly once and therefore needs
    # reliable links (the HAS model).  The stacked configuration keeps links
    # eventually timely but loss-free: messages sent before GST may be delayed
    # arbitrarily, never dropped.  (The Figure 6 detector underneath tolerates
    # loss because it re-polls forever, but the consensus layer does not.)
    timing = PartiallySynchronousTiming(
        gst=config["gst"],
        delta=1.0,
        min_latency=0.1,
        pre_gst_loss=0.0,
        pre_gst_max_latency=3 * config["gst"] + 10.0,
    )
    system = build_system(
        membership=membership,
        timing=timing,
        program_factory=factory,
        crash_schedule=crash_schedule,
        seed=config["seed"],
    )
    simulation = Simulation(system)
    horizon = config["gst"] * 6 + 400.0
    trace = simulation.run(until=horizon, stop_when=lambda sim: sim.all_correct_decided())
    pattern = FailurePattern(membership, crash_schedule)
    verdict = validate_consensus(trace, pattern, proposals, require_termination=False)
    metrics = consensus_metrics(trace, pattern, verdict)
    return {
        "decided": metrics.decided,
        "safe": metrics.safe,
        "decision_time": metrics.last_decision_time,
        "decision_after_gst": (
            metrics.last_decision_time - config["gst"]
            if metrics.last_decision_time is not None
            else None
        ),
        "rounds": metrics.max_decision_round,
        "broadcasts": metrics.broadcasts,
    }


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Run the E8 sweep and return the aggregated result."""
    if quick:
        parameters = {
            "n": [5],
            "distinct_ids": [1, 3, 5],
            "gst": [10.0, 30.0],
        }
        repetitions = 1
    else:
        parameters = {
            "n": [5, 7],
            "distinct_ids": [1, 3, 5, 7],
            "gst": [10.0, 30.0, 80.0],
        }
        repetitions = 3
    sweep = ParameterSweep(parameters, repetitions=repetitions, base_seed=seed)
    rows = sweep.run(_run_one)
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "distinct_ids", "gst"],
        metrics=["decided", "safe", "decision_time", "decision_after_gst", "rounds"],
    )
    summary = {
        "runs": len(rows),
        "all_terminated": all(row["decided"] for row in rows),
        "all_safe": all(row["safe"] for row in rows),
    }
    return ExperimentResult(
        experiment="E8",
        description=DESCRIPTION,
        rows=tuple(aggregated),
        summary=summary,
        columns=(
            "n",
            "distinct_ids",
            "gst",
            "runs",
            "decided",
            "safe",
            "decision_time",
            "decision_after_gst",
            "rounds",
        ),
    )
