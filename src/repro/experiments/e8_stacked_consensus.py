"""E8 — End-to-end stacked system: Figure 6 (HΩ) running under Figure 8.

The paper's headline combination: because HΩ is implementable under partial
synchrony (unlike the anonymous AΩ), stacking the Figure 6 implementation
underneath the Figure 8 consensus algorithm solves consensus in any
homonymous system with partially synchronous processes, eventually timely
links, and a majority of correct processes — with no oracle anywhere.

The sweep varies the homonymy pattern and GST and checks that every run
decides correctly; the decision time tracks GST plus the detector's
convergence time, which is the expected shape.

Declaratively, the stacked configuration is ``.program("ohp_polling",
detector_name="HOmega") .consensus("homega_majority")`` — the builder accepts
the pair because the stacked program *publishes* the HΩ attachment the
consensus algorithm queries, so no oracle is needed.
"""

from __future__ import annotations

from ..analysis.runner import ExperimentResult, ParameterSweep, aggregate_rows
from ..runtime import Engine, execute_spec, minority, partial_sync, scenario

__all__ = ["run"]

DESCRIPTION = "Consensus with no oracle: Figure 6 HΩ implementation stacked under Figure 8"


def _run_one(config: dict) -> dict:
    gst = config["gst"]
    # Figure 8 sends each consensus message exactly once and therefore needs
    # reliable links (the HAS model).  The stacked configuration keeps links
    # eventually timely but loss-free: messages sent before GST may be delayed
    # arbitrarily, never dropped.  (The Figure 6 detector underneath tolerates
    # loss because it re-polls forever, but the consensus layer does not.)
    spec = (
        scenario("E8")
        .processes(config["n"])
        .distinct_ids(config["distinct_ids"])
        .timing(
            partial_sync(
                gst=gst,
                delta=1.0,
                min_latency=0.1,
                pre_gst_loss=0.0,
                pre_gst_max_latency=3 * gst + 10.0,
            )
        )
        .crashes(minority(at=gst / 2 + 1.0, count=1))
        .program("ohp_polling", detector_name="HOmega", record_outputs=False)
        .consensus("homega_majority")
        .horizon(gst * 6 + 400.0)
        .seed(config["seed"])
        .build()
    )
    metrics = execute_spec(spec).metrics
    return {
        "decided": metrics["decided"],
        "safe": metrics["safe"],
        "decision_time": metrics["decision_time"],
        "decision_after_gst": (
            metrics["decision_time"] - gst
            if metrics["decision_time"] is not None
            else None
        ),
        "rounds": metrics["rounds"],
        "broadcasts": metrics["broadcasts"],
    }


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run the E8 sweep and return the aggregated result."""
    engine = engine or Engine()
    if quick:
        parameters = {
            "n": [5],
            "distinct_ids": [1, 3, 5],
            "gst": [10.0, 30.0],
        }
        repetitions = 1
    else:
        parameters = {
            "n": [5, 7],
            "distinct_ids": [1, 3, 5, 7],
            "gst": [10.0, 30.0, 80.0],
        }
        repetitions = 3
    sweep = ParameterSweep(parameters, repetitions=repetitions, base_seed=seed)
    rows = engine.sweep(_run_one, sweep)
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "distinct_ids", "gst"],
        metrics=["decided", "safe", "decision_time", "decision_after_gst", "rounds"],
    )
    summary = {
        "runs": len(rows),
        "all_terminated": all(row["decided"] for row in rows),
        "all_safe": all(row["safe"] for row in rows),
    }
    return ExperimentResult(
        experiment="E8",
        description=DESCRIPTION,
        rows=tuple(aggregated),
        summary=summary,
        columns=(
            "n",
            "distinct_ids",
            "gst",
            "runs",
            "decided",
            "safe",
            "decision_time",
            "decision_after_gst",
            "rounds",
        ),
    )
