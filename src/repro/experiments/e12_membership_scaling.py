"""E12 — monitoring-topology scaling: full mesh vs ring vs gossip, n up to 1,000.

The full-mesh heartbeat monitor is quadratic in pings (every process
broadcasts to everyone) and cubic in ACK copies, so it cannot leave the
small-n regime the E1–E10 experiments live in.  The monitoring-topology layer
(:mod:`repro.topology`) replaces "everyone watches everyone" with a ring of
``k`` successors or a seeded gossip fanout — O(n·k) copies per round — and
E12 measures what that buys and what it costs across three scales:

* **load** — message copies per process per monitoring round.  Full mesh
  grows linearly in ``n`` *per process* (quadratic overall); ring and gossip
  stay flat at ≈ 2·k and ≈ k.  The acceptance bar from the reproduction
  plan: at n=100 a ``Ring(successors=3)`` spends ≤ 10 % of the full-mesh
  per-process budget.
* **detection** — median latency from a crash to the first declaration by a
  correct process, and the false-suspicion count (zero is the bar: sparse
  monitoring must not trade load for wrong accusations).
* **churn** — for sparse cells the dynamic-membership program joins, leaves,
  and recovers members mid-run (:mod:`repro.workloads.churn`); the cell is
  judged by the ``membership_churn`` check instead of pure detection.

Every cell is a deterministic :class:`~repro.runtime.spec.ScenarioSpec`, so
E12 folds into the digest manifest like any other experiment.  Full-mesh
cells stop at n=7 (quick) / n=25 (full) — running the mesh at n=1,000 would
be ≈ 10⁹ copies per round, which is precisely the point of the experiment.
"""

from __future__ import annotations

from ..analysis.runner import ExperimentResult
from ..runtime import Engine, asynchronous, crashes_at, scenario

__all__ = ["run"]

DESCRIPTION = (
    "Monitoring-topology scaling: per-process message load and detection "
    "latency for full mesh vs ring vs gossip, with churn, n up to 1,000"
)

_HB_INTERVAL = 1.0
_CRASH_AT = 10.0
#: Light churn per 100 processes: a couple of joins, leaves, and flaps.
_LIGHT_CHURN = {"joins": 2, "leaves": 2, "flaps": 2}


def _hb_timeout(mode: str, n: int) -> float:
    """Ping modes time out in one hop; gossip must cover its diffusion depth.

    A counter bump reaches the whole system in ≈ log_fanout(n) + tail
    rounds, so the gossip staleness window grows with scale: 8 intervals up
    to n=100, 12 at n=1,000 (anything shorter false-suspects slow corners).
    """
    if mode != "gossip":
        return 6.0
    return 8.0 if n <= 100 else 12.0


def _run_one(config: dict) -> dict:
    mode, n, churn = config["mode"], config["n"], config["churn"]
    degree = config["degree"]
    hb_timeout = _hb_timeout(mode, n)
    if churn == "none":
        horizon = _CRASH_AT + hb_timeout + 5.0 * _HB_INTERVAL + 3.0
        build = (
            scenario(f"E12-{mode}-n{n}")
            .processes(n)
            .unique_ids()
            .timing(asynchronous(min_latency=0.01, max_latency=0.2))
            .crashes(crashes_at({n - 1: _CRASH_AT}))
            .program("heartbeat", hb_interval=_HB_INTERVAL, hb_timeout=hb_timeout)
            .horizon(horizon)
            .seed(config["seed"])
        )
        if mode == "full_mesh":
            build = build.check("hb_detection")
        else:
            key = "successors" if mode == "ring" else "fanout"
            build = build.topology(mode, **{key: degree}).check("topo_detection")
        spec = build.build()
        check = "hb_detection" if mode == "full_mesh" else "topo_detection"
    else:
        from ..workloads.churn import churn_spec

        scale = max(1, n // 100)
        horizon = 60.0
        spec = churn_spec(
            n,
            topology=mode,
            degree=degree,
            joins=_LIGHT_CHURN["joins"] * scale,
            leaves=_LIGHT_CHURN["leaves"] * scale,
            flaps=_LIGHT_CHURN["flaps"] * scale,
            crashes={n // 2: _CRASH_AT},
            hb_interval=_HB_INTERVAL,
            hb_timeout=hb_timeout,
            horizon=horizon,
            seed=config["seed"],
            name=f"E12-{mode}-n{n}-churn",
        )
        check = "membership_churn"
    metrics = Engine().run(spec).metrics

    copies = metrics[f"{check}_copies_sent"]
    end_time = metrics[f"{check}_end_time"]
    rounds = max(end_time / _HB_INTERVAL, 1.0)
    latency_key = (
        "median_removal_latency" if check == "membership_churn" else "median_latency"
    )
    missed_key = "removals_missed" if check == "membership_churn" else "missed"
    return {
        "ok": metrics[f"{check}_ok"],
        "detection_latency": metrics[f"{check}_{latency_key}"],
        "missed": metrics[f"{check}_{missed_key}"],
        "false_suspicions": metrics.get(f"{check}_false_suspicions", 0),
        "copies_sent": copies,
        "msgs_per_proc_round": round(copies / n / rounds, 3),
        "joins_completed": metrics.get(f"{check}_joins_completed"),
        "recoveries": metrics.get(f"{check}_recoveries"),
    }


def _cells(quick: bool) -> list[dict]:
    cells = [
        # The small-n regime, all three topologies head to head.
        {"mode": "full_mesh", "n": 7, "churn": "none", "degree": 0},
        {"mode": "ring", "n": 7, "churn": "none", "degree": 2},
        {"mode": "gossip", "n": 7, "churn": "none", "degree": 2},
        # n=100: the full mesh is already impractical; sparse modes with and
        # without churn.
        {"mode": "ring", "n": 100, "churn": "none", "degree": 3},
        {"mode": "gossip", "n": 100, "churn": "none", "degree": 3},
        {"mode": "ring", "n": 100, "churn": "light", "degree": 3},
        {"mode": "gossip", "n": 100, "churn": "light", "degree": 3},
        # The headline scale.
        {"mode": "ring", "n": 1000, "churn": "none", "degree": 3},
    ]
    if not quick:
        cells += [
            {"mode": "full_mesh", "n": 25, "churn": "none", "degree": 0},
            {"mode": "ring", "n": 1000, "churn": "light", "degree": 3},
            {"mode": "gossip", "n": 1000, "churn": "none", "degree": 3},
        ]
    return cells


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run the E12 scaling grid and return the aggregated result."""
    engine = engine or Engine()
    configs = []
    for combo_index, cell in enumerate(_cells(quick)):
        configs.append({**cell, "seed": seed + combo_index, "repetition": 0})
    rows = engine.sweep(_run_one, configs)

    by_cell = {(row["mode"], row["n"], row["churn"]): row for row in rows}
    mesh_small = by_cell[("full_mesh", 7, "none")]
    ring_small = by_cell[("ring", 7, "none")]
    ring_100 = by_cell[("ring", 100, "none")]
    ring_1000 = by_cell[("ring", 1000, "none")]
    # The full mesh at n=100 is measured analytically (running it is the
    # point of not running it): per process per round it broadcasts one ping
    # (n-1 copies) and answers ≈ n-1 incoming pings with full broadcasts
    # ((n-1)² copies).  The n=7 cell validates the model empirically.
    mesh_per_proc = lambda n: (n - 1) + (n - 1) ** 2
    mesh_model_ok = (
        0.5 * mesh_per_proc(7)
        <= mesh_small["msgs_per_proc_round"]
        <= 1.5 * mesh_per_proc(7)
    )
    sparse_vs_mesh_pct = round(
        100.0 * ring_100["msgs_per_proc_round"] / mesh_per_proc(100), 2
    )
    summary = {
        "cells": len(rows),
        "all_ok": all(row["ok"] for row in rows),
        "false_suspicions_total": sum(row["false_suspicions"] for row in rows),
        "mesh_load_model_validated_at_n7": mesh_model_ok,
        "mesh_n7_msgs_per_proc_round": mesh_small["msgs_per_proc_round"],
        "ring_n7_msgs_per_proc_round": ring_small["msgs_per_proc_round"],
        "ring_n100_msgs_per_proc_round": ring_100["msgs_per_proc_round"],
        "ring_n1000_msgs_per_proc_round": ring_1000["msgs_per_proc_round"],
        "ring_n100_pct_of_mesh": sparse_vs_mesh_pct,
        "ring_load_flat_in_n": (
            ring_1000["msgs_per_proc_round"] <= 2.0 * ring_100["msgs_per_proc_round"]
        ),
        "sparse_within_10pct_of_mesh": sparse_vs_mesh_pct <= 10.0,
    }
    ordered = [
        {
            "mode": row["mode"],
            "n": row["n"],
            "churn": row["churn"],
            "degree": row["degree"],
            "ok": row["ok"],
            "detection_latency": row["detection_latency"],
            "missed": row["missed"],
            "false_suspicions": row["false_suspicions"],
            "copies_sent": row["copies_sent"],
            "msgs_per_proc_round": row["msgs_per_proc_round"],
            "joins_completed": row["joins_completed"],
            "recoveries": row["recoveries"],
        }
        for row in rows
    ]
    return ExperimentResult(
        experiment="E12",
        description=DESCRIPTION,
        rows=tuple(ordered),
        summary=summary,
        columns=(
            "mode",
            "n",
            "churn",
            "degree",
            "ok",
            "detection_latency",
            "missed",
            "false_suspicions",
            "copies_sent",
            "msgs_per_proc_round",
            "joins_completed",
            "recoveries",
        ),
    )
