"""Command-line entry point for the experiment harness.

Examples::

    python -m repro.experiments                     # every deterministic
                                                    # experiment, quick mode
    python -m repro.experiments --full E4 E5        # full sweeps of E4 and E5
    python -m repro.experiments --jobs 4            # one warm worker pool,
                                                    # reused across experiments
    python -m repro.experiments --jobs 4 --pool cold   # fresh pool per sweep
    python -m repro.experiments --cache .run-cache  # memoize completed runs
    python -m repro.experiments --stream --jsonl runs.jsonl   # rows as they land
    python -m repro.experiments --format json E1    # machine-readable output
    python -m repro.experiments --seed 3 -o report.txt --jsonl runs.jsonl
    python -m repro.experiments E1 --shard 2/3 --jsonl shard2.jsonl
                                                    # one shard of the sweep;
                                                    # concatenating the N
                                                    # shards reproduces the
                                                    # serial JSONL exactly
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..runtime import Engine, executor_for
from ..runtime.registry import EXPERIMENTS
from . import ALL_EXPERIMENTS, WALLCLOCK_EXPERIMENTS  # noqa: F401  (importing registers E1–E11)

__all__ = ["main"]


def _run_shard(parser, args, selected: list[str]) -> int:
    """Execute one contiguous shard of the selected experiments' work plan.

    The plan (and therefore the shard boundaries and row order) is exactly
    what a serial run executes, so ``cat shard1 … shardN`` reproduces the
    serial ``--jsonl`` byte-for-byte — with one caveat: experiments that use
    ``Engine.map`` (E3) emit nothing to the serial JSONL, whereas their rows
    *do* appear here, so for those the concatenation is a superset.
    """
    from ..fabric.plan import PlanningError, plan_experiments
    from ..fabric.work import execute_item
    from ..analysis.runner import shard_items
    from ..runtime.cache import RunCache

    try:
        index_text, _, count_text = args.shard.partition("/")
        index, count = int(index_text), int(count_text)
    except ValueError:
        parser.error(f"--shard expects i/N (e.g. 2/3), got {args.shard!r}")
    if not 1 <= index <= count:
        parser.error(f"--shard index must be in 1..{count}, got {index}")
    try:
        plan = plan_experiments(selected, quick=not args.full, seed=args.seed)
    except PlanningError as error:
        parser.error(str(error))
    cache = RunCache.coerce(args.cache)
    items = shard_items(plan.items, index - 1, count)
    sink = open(args.jsonl, "w", encoding="utf-8") if args.jsonl else sys.stdout
    try:
        for item in items:
            result = execute_item(item, cache)
            sink.write(json.dumps(result.row, sort_keys=True, default=str) + "\n")
            sink.flush()
    finally:
        if args.jsonl:
            sink.close()
    print(
        f"shard {index}/{count}: {len(items)} of {len(plan)} items "
        f"({', '.join(plan.experiments)})",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiments and print (or write) their tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the experiments of EXPERIMENTS.md.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids to run (default: every deterministic experiment, "
        "E1 through E12; wall-clock experiments like E11 run only when named)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full parameter sweeps instead of the quick ones",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed (default 0)")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweeps (default 1 = serial)",
    )
    parser.add_argument(
        "--pool",
        choices=("warm", "cold"),
        default="warm",
        help="pool mode for --jobs > 1: 'warm' keeps one persistent worker "
        "pool across all selected experiments (default); 'cold' spawns and "
        "tears down a pool per sweep call",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="memoize completed runs in this directory, keyed on "
        "(canonical-spec-hash, seed); repeated or resumed sweeps skip "
        "recompute (the directory is created if missing)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="print every run's record/row to stderr as one JSON line the "
        "moment it completes (tables still print at the end; with --jsonl "
        "the log flushes incrementally either way)",
    )
    parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default: table)",
    )
    parser.add_argument(
        "--jsonl",
        metavar="FILE",
        help="append every run record/row to this JSONL file (written after "
        "each experiment's sweep finishes)",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="also write the report to this file",
    )
    parser.add_argument(
        "--shard",
        metavar="i/N",
        help="execute only shard i of N (1-based) of the selected experiments' "
        "work plan and emit its rows as JSONL (to --jsonl or stdout); shards "
        "partition the plan contiguously, so concatenating all N shard files "
        "in order is byte-identical to the serial JSONL. Tables are skipped; "
        "--jobs/--pool/--stream do not apply",
    )
    args = parser.parse_args(argv)

    # Wall-clock experiments (E11's real-backend half) only run when named
    # explicitly: the default selection stays deterministic and CI-cheap.
    selected = [name.upper() for name in args.experiments] or [
        name for name in EXPERIMENTS.names() if name not in WALLCLOCK_EXPERIMENTS
    ]
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(EXPERIMENTS.names())}"
        )

    if args.shard:
        return _run_shard(parser, args, selected)

    def stream_line(payload) -> None:
        print(json.dumps(payload, sort_keys=True, default=str), file=sys.stderr, flush=True)

    engine = Engine(
        executor_for(args.jobs, pool=args.pool),
        jsonl_path=args.jsonl,
        cache=args.cache,
        progress=stream_line if args.stream else None,
    )

    results = []
    try:
        for name in selected:
            runner = EXPERIMENTS.resolve(name)
            started = time.perf_counter()
            result = runner(quick=not args.full, seed=args.seed, engine=engine)
            elapsed = time.perf_counter() - started
            results.append((name, result, elapsed))
    finally:
        engine.close()

    if args.format == "json":
        payload = [
            {
                "experiment": result.experiment,
                "description": result.description,
                "mode": "full" if args.full else "quick",
                "seed": args.seed,
                "jobs": args.jobs,
                "elapsed_seconds": round(elapsed, 3),
                "rows": [dict(row) for row in result.rows],
                "summary": dict(result.summary),
            }
            for _, result, elapsed in results
        ]
        report = json.dumps(payload, indent=2, default=str)
        print(report)
    else:
        sections = []
        for _, result, elapsed in results:
            section = "\n".join(
                [
                    result.table(),
                    f"summary: {result.summary}",
                    f"(completed in {elapsed:.1f}s, {'full' if args.full else 'quick'} mode, seed {args.seed})",
                ]
            )
            sections.append(section)
            print(section)
            print()
        report = "\n\n".join(sections)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        # Keep stdout machine-consumable in json mode; the notice is chatter.
        notice_stream = sys.stderr if args.format == "json" else sys.stdout
        print(f"report written to {args.output}", file=notice_stream)
    return 0


if __name__ == "__main__":
    sys.exit(main())
