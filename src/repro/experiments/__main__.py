"""Command-line entry point for the experiment harness.

Examples::

    python -m repro.experiments                     # run E1–E8 in quick mode
    python -m repro.experiments --full E4 E5        # full sweeps of E4 and E5
    python -m repro.experiments --seed 3 -o report.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ALL_EXPERIMENTS

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiments and print (or write) their tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the experiments of EXPERIMENTS.md (E1-E8).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids to run (default: all of E1..E8)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full parameter sweeps instead of the quick ones",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed (default 0)")
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="also write the report to this file",
    )
    args = parser.parse_args(argv)

    selected = [name.upper() for name in args.experiments] or sorted(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(ALL_EXPERIMENTS))}"
        )

    sections: list[str] = []
    for name in selected:
        runner = ALL_EXPERIMENTS[name]
        started = time.perf_counter()
        result = runner(quick=not args.full, seed=args.seed)
        elapsed = time.perf_counter() - started
        section = "\n".join(
            [
                result.table(),
                f"summary: {result.summary}",
                f"(completed in {elapsed:.1f}s, {'full' if args.full else 'quick'} mode, seed {args.seed})",
            ]
        )
        sections.append(section)
        print(section)
        print()

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(sections) + "\n")
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
