"""E11 — sim-vs-real validation: heartbeat detection latency on both backends.

The simulator's claims are only as good as its model of time.  E11 runs the
*same* heartbeat scenarios (same :class:`~repro.runtime.spec.ScenarioSpec`,
same program, same check semantics) on the discrete-event simulator and on
the real asyncio/TCP backend, sweeping the (``hb_interval`` × ``hb_timeout``)
grid of SNIPPETS.md Snippet 1 §9.  Each cell aggregates several trials into a
median detection latency with Tukey IQR, and the module writes the Snippet's
two CSV shapes — one heatmap per backend plus a combined scatter table — so
the backends can be eyeballed side by side in identical units (milliseconds
at the shared ``time_scale``).

The claim under test: on both backends the median detection latency sits
inside ``[hb_timeout − hb_interval, hb_timeout + hb_interval]`` — detection
is dominated by the timeout discipline, not by transport artefacts.  The
summary reports the worst per-cell divergence between the backends.

Unlike E1–E10 this experiment measures *wall-clock* behaviour: its real-
backend half is inherently nondeterministic, so it is registered in
``EXPERIMENTS`` (runnable by name) but deliberately kept out of
``ALL_EXPERIMENTS``, the digest manifest, and the CLI's default selection.

CSV output lands in ``$REPRO_E11_OUT`` (default ``./e11_out``).
"""

from __future__ import annotations

import os
from pathlib import Path

from ..analysis.runner import ExperimentResult
from ..runtime import Engine
from ..transport.__main__ import build_heartbeat_spec
from ..transport.orchestrator import DEFAULT_TIME_SCALE
from ..transport.validate import aggregate_cells, heatmap_csv, scatter_csv, units_to_ms

__all__ = ["run"]

DESCRIPTION = "Sim-vs-real heartbeat detection latency over an (hb_interval x hb_timeout) grid"

_NODES = 3
_FAIL_AT = 6.0
_BACKENDS = ("sim", "real")
#: Per-message drop probability of the lossy cell (sim: ``lossy(p)`` link
#: model; real: a ShapedLink on every TCP link).  Lossy cells exercise the
#: same envelope claim under retransmission-free heartbeat loss, but only
#: loss-free cells *assert* it (summary ``all_in_envelope``).
_LOSS = 0.15


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run the sim-vs-real sweep, write the CSVs, return the aggregated result."""
    engine = engine or Engine()
    if quick:
        intervals = [1.0, 2.0]
        timeouts = [3.0, 6.0]
        trials = 3
    else:
        intervals = [0.5, 1.0, 1.5]
        timeouts = [3.0, 4.5, 6.0]
        trials = 5

    # One spec per (backend, cell, trial); trial seeds follow the
    # ParameterSweep convention (base + combo_index * reps + repetition) so
    # re-runs are reproducible and sim trials differ within a cell.
    # The full (interval × timeout) grid runs loss-free; one extra lossy cell
    # per backend (the smallest grid corner under _LOSS) checks that both
    # backends degrade the same way when links drop messages.
    grid = [
        (hb_interval, hb_timeout, 0.0)
        for hb_interval in intervals
        for hb_timeout in timeouts
    ]
    grid.append((intervals[0], timeouts[0], _LOSS))

    specs, meta = [], []
    combo = 0
    for backend in _BACKENDS:
        for hb_interval, hb_timeout, loss in grid:
            for repetition in range(trials):
                specs.append(
                    build_heartbeat_spec(
                        nodes=_NODES,
                        hb_interval=hb_interval,
                        hb_timeout=hb_timeout,
                        fail_at=_FAIL_AT,
                        seed=seed + combo * trials + repetition,
                        backend=backend,
                        time_scale=DEFAULT_TIME_SCALE,
                        loss=loss,
                        name=(
                            f"E11-{backend}-i{hb_interval}-t{hb_timeout}"
                            f"-l{loss}-r{repetition}"
                        ),
                    )
                )
                meta.append(
                    {
                        "backend": backend,
                        "hb_interval": hb_interval,
                        "hb_timeout": hb_timeout,
                        "loss": loss,
                    }
                )
            combo += 1

    trials_rows = []
    for info, record in zip(meta, engine.run_many(specs)):
        trials_rows.append({**info, "latency": record.metrics.get("hb_detection_time")})

    cells = aggregate_cells(
        trials_rows, group_by=("backend", "hb_interval", "hb_timeout", "loss")
    )
    reliable = [cell for cell in cells if cell["loss"] == 0.0]
    out_dir = Path(os.environ.get("REPRO_E11_OUT", "e11_out"))
    out_dir.mkdir(parents=True, exist_ok=True)
    for backend in _BACKENDS:
        backend_cells = [cell for cell in reliable if cell["backend"] == backend]
        path = out_dir / f"heatmap_{backend}.csv"
        path.write_text(heatmap_csv(backend_cells, time_scale=DEFAULT_TIME_SCALE))
    (out_dir / "scatter.csv").write_text(
        scatter_csv(reliable, time_scale=DEFAULT_TIME_SCALE)
    )

    rows = [
        {
            "backend": cell["backend"],
            "hb_interval": cell["hb_interval"],
            "hb_timeout": cell["hb_timeout"],
            "loss": cell["loss"],
            "trials": cell["trials"],
            "missed": cell["missed"],
            "median_ms": _round_ms(cell["median"]),
            "iqr_ms": _round_ms(cell["iqr"]),
            "in_envelope": _in_envelope(cell),
        }
        for cell in cells
    ]

    divergences = _divergence_ms(reliable)
    summary = {
        "cells": len(cells),
        "trials_per_cell": trials,
        "missed_total": sum(cell["missed"] for cell in cells),
        # Only loss-free cells assert the timeout-discipline envelope:
        # under link loss a heartbeat round can be dropped outright, so the
        # lossy cells are reported (rows carry in_envelope) but not gated.
        "all_in_envelope": all(
            row["in_envelope"]
            for row in rows
            if row["median_ms"] is not None and row["loss"] == 0.0
        ),
        "max_abs_divergence_ms": (
            None if not divergences else round(max(abs(d) for d in divergences.values()), 3)
        ),
        "csv_dir": str(out_dir),
    }
    return ExperimentResult(
        experiment="E11",
        description=DESCRIPTION,
        rows=tuple(rows),
        summary=summary,
        columns=(
            "backend",
            "hb_interval",
            "hb_timeout",
            "loss",
            "trials",
            "missed",
            "median_ms",
            "iqr_ms",
            "in_envelope",
        ),
    )


def _round_ms(units: float | None) -> float | None:
    if units is None:
        return None
    return round(units_to_ms(units, DEFAULT_TIME_SCALE), 3)


def _in_envelope(cell: dict) -> bool | None:
    """Median latency within ``[hb_timeout − hb_interval, hb_timeout + hb_interval]``."""
    if cell["median"] is None:
        return None
    low = cell["hb_timeout"] - cell["hb_interval"]
    high = cell["hb_timeout"] + cell["hb_interval"]
    return low <= cell["median"] <= high


def _divergence_ms(cells: list[dict]) -> dict[tuple, float]:
    """Per-(interval, timeout) real − sim median gap, in milliseconds."""
    medians: dict[tuple, dict[str, float]] = {}
    for cell in cells:
        if cell["median"] is None:
            continue
        key = (cell["hb_interval"], cell["hb_timeout"])
        medians.setdefault(key, {})[cell["backend"]] = cell["median"]
    return {
        key: units_to_ms(pair["real"] - pair["sim"], DEFAULT_TIME_SCALE)
        for key, pair in medians.items()
        if "real" in pair and "sim" in pair
    }
