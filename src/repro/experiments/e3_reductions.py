"""E3 — Every reduction arrow of Figure 5 emulates its target class correctly.

For each reduction implemented from the paper (Figures 1, 2, 4; Theorem 3;
Lemmas 2–3; Observation 1), the experiment runs the reduction over an oracle
of the source class in the appropriate system model and validates the emulated
output trace with the target class's property checker.  It also confirms the
structural facts of the relation graph: Corollary 1 (Σ, HΣ, AΣ equivalent with
unique identifiers) and the AP → {◇HP, HΣ, HΩ} reachability in anonymous
systems that underpins the paper's comparison with prior work.
"""

from __future__ import annotations

from ..analysis.runner import ExperimentResult
from ..detectors import (
    APOracle,
    ASigmaOracle,
    DiamondHPOracle,
    HSigmaOracle,
    ScriptEOracle,
    SigmaOracle,
    check_diamond_hp,
    check_homega_election,
    check_hsigma,
    check_sigma,
)
from ..detectors.classes import DetectorClass
from ..reductions import (
    APToDiamondHP,
    APToHSigma,
    ASigmaToHSigma,
    DiamondHPToHOmega,
    HSigmaToSigma,
    SigmaToHSigmaUnknownMembership,
    SigmaToHSigmaWithMembership,
    equivalent_classes,
    is_stronger,
)
from ..membership import anonymous_identities, grouped_identities, unique_identities
from ..runtime import Engine
from ..sim import AsynchronousTiming, CrashSchedule, Simulation, build_system
from ..sim.failures import FailurePattern

__all__ = ["run"]

DESCRIPTION = "Reductions between detector classes (Figures 1-4, Theorems 1-4, Observation 1)"

_STABILIZATION = 15.0


def _run_reduction(membership, program_factory, detectors, checker, *, seed, horizon=90.0):
    crash_schedule = CrashSchedule.at_times(
        {membership.processes[1]: 10.0} if membership.size > 2 else {}
    )
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=1.5),
        program_factory=program_factory,
        crash_schedule=crash_schedule,
        detectors=detectors,
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=horizon)
    pattern = FailurePattern(membership, crash_schedule)
    result = checker(trace, pattern)
    return result


def _reduction_cases(seed: int):
    """Yield (row description, callable returning a CheckResult)."""
    unique = unique_identities(4)
    homonymous = grouped_identities([2, 2, 1])
    anonymous = anonymous_identities(4)

    yield (
        {
            "paper_item": "Figure 1 (Theorem 1.1)",
            "reduction": "Σ → HΣ (known membership)",
            "model": "AS",
        },
        lambda: _run_reduction(
            unique,
            lambda pid, identity: SigmaToHSigmaWithMembership(
                unique.identity_multiset(), period=1.0
            ),
            {"Sigma": lambda s: SigmaOracle(s, stabilization_time=_STABILIZATION)},
            check_hsigma,
            seed=seed,
        ),
    )
    yield (
        {
            "paper_item": "Figure 2 (Theorem 1.2)",
            "reduction": "Σ → HΣ (unknown membership)",
            "model": "AS",
        },
        lambda: _run_reduction(
            unique,
            lambda pid, identity: SigmaToHSigmaUnknownMembership(period=1.0),
            {"Sigma": lambda s: SigmaOracle(s, stabilization_time=_STABILIZATION)},
            check_hsigma,
            seed=seed + 1,
        ),
    )
    yield (
        {
            "paper_item": "Figure 4 (Theorem 2)",
            "reduction": "HΣ → Σ (uses ℰ)",
            "model": "AS",
        },
        lambda: _run_reduction(
            unique,
            lambda pid, identity: HSigmaToSigma(period=1.0),
            {
                "HSigma": lambda s: HSigmaOracle(s, stabilization_time=_STABILIZATION),
                "ScriptE": lambda s: ScriptEOracle(s, stabilization_time=_STABILIZATION),
            },
            check_sigma,
            seed=seed + 2,
        ),
    )
    yield (
        {
            "paper_item": "Theorem 3",
            "reduction": "AΣ → HΣ",
            "model": "AAS",
        },
        lambda: _run_reduction(
            anonymous,
            lambda pid, identity: ASigmaToHSigma(period=1.0),
            {"ASigma": lambda s: ASigmaOracle(s, stabilization_time=_STABILIZATION)},
            check_hsigma,
            seed=seed + 3,
        ),
    )
    yield (
        {
            "paper_item": "Lemma 2 (Theorem 4)",
            "reduction": "AP → ◇HP",
            "model": "AAS",
        },
        lambda: _run_reduction(
            anonymous,
            lambda pid, identity: APToDiamondHP(period=1.0),
            {"AP": lambda s: APOracle(s, stabilization_time=_STABILIZATION)},
            check_diamond_hp,
            seed=seed + 4,
        ),
    )
    yield (
        {
            "paper_item": "Lemma 3 (Theorem 4)",
            "reduction": "AP → HΣ",
            "model": "AAS",
        },
        lambda: _run_reduction(
            anonymous,
            lambda pid, identity: APToHSigma(period=1.0),
            {"AP": lambda s: APOracle(s, stabilization_time=_STABILIZATION)},
            check_hsigma,
            seed=seed + 5,
        ),
    )
    yield (
        {
            "paper_item": "Observation 1",
            "reduction": "◇HP → HΩ",
            "model": "HAS",
        },
        lambda: _run_reduction(
            homonymous,
            lambda pid, identity: DiamondHPToHOmega(period=1.0),
            {"DiamondHP": lambda s: DiamondHPOracle(s, stabilization_time=_STABILIZATION)},
            check_homega_election,
            seed=seed + 6,
        ),
    )


def _run_case(config: dict) -> dict:
    """Run one reduction case by index (module-level so executors can fan out)."""
    for case_index, (description, runner) in enumerate(_reduction_cases(config["seed"])):
        if case_index == config["case"]:
            result = runner()
            row = dict(description)
            row["emulation_ok"] = result.ok
            row["stabilization_time"] = result.stabilization_time
            row["violations"] = len(result.violations)
            return row
    raise ValueError(f"unknown reduction case {config['case']!r}")


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run every reduction case and the relation-graph checks."""
    engine = engine or Engine()
    case_count = sum(1 for _ in _reduction_cases(seed))
    rows = engine.map(
        _run_case, [{"case": index, "seed": seed} for index in range(case_count)]
    )

    sigma_group = next(
        (group for group in equivalent_classes(model="AS") if DetectorClass.SIGMA in group),
        frozenset(),
    )
    summary = {
        "all_reductions_ok": all(row["emulation_ok"] for row in rows),
        "corollary_1_sigma_hsigma_asigma_equivalent": {
            DetectorClass.SIGMA,
            DetectorClass.H_SIGMA,
            DetectorClass.A_SIGMA,
        }
        <= sigma_group,
        "ap_reaches_homega_in_aas": is_stronger(
            DetectorClass.AP, DetectorClass.H_OMEGA, model="AAS"
        ),
        "asigma_does_not_reach_homega_in_aas": not is_stronger(
            DetectorClass.A_SIGMA, DetectorClass.H_OMEGA, model="AAS"
        ),
    }
    return ExperimentResult(
        experiment="E3",
        description=DESCRIPTION,
        rows=tuple(rows),
        summary=summary,
        columns=(
            "paper_item",
            "reduction",
            "model",
            "emulation_ok",
            "stabilization_time",
            "violations",
        ),
    )
