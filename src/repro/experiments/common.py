"""Shared helpers for the experiment modules."""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..analysis.metrics import consensus_metrics
from ..consensus import validate_consensus
from ..detectors import HOmegaOracle, HSigmaOracle
from ..membership import Membership
from ..sim import AsynchronousTiming, CrashSchedule, Simulation, TimingModel, build_system
from ..sim.failures import FailurePattern

__all__ = ["default_consensus_detectors", "run_consensus_once", "distinct_proposals"]


def distinct_proposals(membership: Membership) -> dict:
    """One distinct proposal per process (so agreement is non-trivial)."""
    return {process: f"value-{process.index}" for process in membership.processes}


def default_consensus_detectors(stabilization: float, *, noise_period: float | None = 5.0):
    """The HΩ + HΣ oracle pair used by the consensus experiments."""
    return {
        "HOmega": lambda services: HOmegaOracle(
            services, stabilization_time=stabilization, noise_period=noise_period
        ),
        "HSigma": lambda services: HSigmaOracle(
            services, stabilization_time=stabilization
        ),
    }


def run_consensus_once(
    membership: Membership,
    consensus_factory: Callable[[Any], Any],
    *,
    crash_schedule: CrashSchedule | None = None,
    detectors: Mapping[str, Any] | None = None,
    detector_stabilization: float = 20.0,
    timing: TimingModel | None = None,
    horizon: float = 500.0,
    seed: int = 0,
) -> dict:
    """Run one consensus configuration and return a metrics row."""
    proposals = distinct_proposals(membership)
    schedule = crash_schedule or CrashSchedule.none()
    system = build_system(
        membership=membership,
        timing=timing or AsynchronousTiming(min_latency=0.1, max_latency=2.0),
        program_factory=lambda pid, identity: consensus_factory(proposals[pid]),
        crash_schedule=schedule,
        detectors=detectors
        if detectors is not None
        else default_consensus_detectors(detector_stabilization),
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=horizon, stop_when=lambda sim: sim.all_correct_decided())
    pattern = FailurePattern(membership, schedule)
    verdict = validate_consensus(trace, pattern, proposals, require_termination=False)
    metrics = consensus_metrics(trace, pattern, verdict)
    return {
        "decided": metrics.decided,
        "safe": metrics.safe,
        "decision_time": metrics.last_decision_time,
        "rounds": metrics.max_decision_round,
        "broadcasts": metrics.broadcasts,
        "message_copies": metrics.message_copies,
    }
