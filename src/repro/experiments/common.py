"""Legacy shims for the experiment modules.

.. deprecated::
    The experiment harness now runs through :mod:`repro.runtime` — declare
    scenarios with :func:`repro.runtime.scenario` and execute them with
    :class:`repro.runtime.Engine`.  These wrappers keep the pre-runtime
    imports working::

        from repro.experiments.common import run_consensus_once   # old
        from repro.runtime import scenario, Engine                # new

    ``run_consensus_once(membership, factory, ...)`` maps onto
    ``Engine().run(scenario()...build())`` with the same defaults (HΩ + HΣ
    oracles, asynchronous timing with latency in ``[0.1, 2]``, distinct
    proposals) and returns the same metrics row.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Mapping

from ..membership import Membership
from ..runtime.engine import (
    default_consensus_detectors,
    distinct_proposals,
    run_once,
)
from ..sim import AsynchronousTiming, CrashSchedule, TimingModel

__all__ = ["default_consensus_detectors", "run_consensus_once", "distinct_proposals"]


def run_consensus_once(
    membership: Membership,
    consensus_factory: Callable[[Any], Any],
    *,
    crash_schedule: CrashSchedule | None = None,
    detectors: Mapping[str, Any] | None = None,
    detector_stabilization: float = 20.0,
    timing: TimingModel | None = None,
    horizon: float = 500.0,
    seed: int = 0,
) -> dict:
    """Run one consensus configuration and return a metrics row.

    .. deprecated:: use ``repro.runtime`` (see the module docstring).
    """
    warnings.warn(
        "run_consensus_once is deprecated; build a ScenarioSpec with "
        "repro.runtime.scenario() and execute it with repro.runtime.Engine",
        DeprecationWarning,
        stacklevel=2,
    )
    proposals = distinct_proposals(membership)
    record = run_once(
        membership=membership,
        timing=timing or AsynchronousTiming(min_latency=0.1, max_latency=2.0),
        program_factory=lambda pid, identity: consensus_factory(proposals[pid]),
        crash_schedule=crash_schedule,
        detectors=detectors
        if detectors is not None
        else default_consensus_detectors(detector_stabilization),
        proposals=proposals,
        horizon=horizon,
        seed=seed,
    )
    return dict(record.metrics)
