"""E7 — Ablation of the Leaders' Coordination Phase.

The paper's main algorithmic contribution over the anonymous AΩ algorithm it
started from is the Leaders' Coordination Phase, which makes all homonymous
leaders eventually propose the same value (Lemma 7).  This experiment removes
it (:class:`~repro.consensus.no_coordination.NoCoordinationConsensus`) and
compares against the full Figure 8 algorithm on memberships where the leader
identifier is shared by several processes holding *different* proposals — the
exact situation the phase exists for.

Expected shape: the full algorithm terminates in every run and in few rounds;
the ablated variant stays safe (validity and agreement still hold) but needs
more rounds and misses the decision deadline in a fraction of the runs.
"""

from __future__ import annotations

from ..analysis.runner import ExperimentResult, ParameterSweep, aggregate_rows
from ..runtime import Engine, execute_spec, scenario

__all__ = ["run"]

DESCRIPTION = "Figure 8 with vs without the Leaders' Coordination Phase (multi-leader runs)"

#: A deliberately tight horizon: runs that have not decided by then count as
#: failed terminations.  The full algorithm decides well before it.
_HORIZON = 150.0
_STABILIZATION = 10.0

_VARIANTS = {
    "with-coordination": "homega_majority",
    "without-coordination": "no_coordination",
}


def _run_one(config: dict) -> dict:
    spec = (
        scenario("E7")
        .processes(config["n"])
        .distinct_ids(config["distinct_ids"])
        .detectors("HOmega", "HSigma", stabilization=_STABILIZATION)
        .consensus(_VARIANTS[config["variant"]])
        .horizon(_HORIZON)
        .seed(config["seed"])
        .build()
    )
    return dict(execute_spec(spec).metrics)


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run the ablation and return the aggregated comparison."""
    engine = engine or Engine()
    repetitions = 12 if quick else 40
    sweep = ParameterSweep(
        {
            "variant": ["with-coordination", "without-coordination"],
            "n": [6],
            "distinct_ids": [2, 3],
        },
        repetitions=repetitions,
        base_seed=seed,
    )
    rows = engine.sweep(_run_one, sweep)
    aggregated = aggregate_rows(
        rows,
        group_by=["variant", "distinct_ids"],
        metrics=["decided", "safe", "decision_time", "rounds"],
    )
    with_coordination = [row for row in rows if row["variant"] == "with-coordination"]
    without_coordination = [row for row in rows if row["variant"] == "without-coordination"]
    summary = {
        "runs_per_variant": len(with_coordination),
        "with_coordination_termination_rate": _rate(with_coordination, "decided"),
        "without_coordination_termination_rate": _rate(without_coordination, "decided"),
        "both_variants_always_safe": all(row["safe"] for row in rows),
        "mean_rounds_with_coordination": _mean_rounds(with_coordination),
        "mean_rounds_without_coordination": _mean_rounds(without_coordination),
    }
    return ExperimentResult(
        experiment="E7",
        description=DESCRIPTION,
        rows=tuple(aggregated),
        summary=summary,
        columns=(
            "variant",
            "distinct_ids",
            "runs",
            "decided",
            "safe",
            "decision_time",
            "rounds",
        ),
    )


def _rate(rows, key):
    return sum(1 for row in rows if row[key]) / len(rows) if rows else None


def _mean_rounds(rows):
    values = [row["rounds"] for row in rows if row["rounds"] is not None]
    return sum(values) / len(values) if values else None
