"""E4 — Figure 8 consensus in HAS[t < n/2, HΩ]: correctness and cost.

Reproduces Theorem 7 empirically: across homonymy patterns, crash schedules
(up to the largest minority), and detector stabilization times, every run
satisfies validity, agreement, and termination; the sweep also reports the
decision latency, the number of rounds, and the number of broadcasts, which
is how the cost of homonymy shows up.
"""

from __future__ import annotations

from ..analysis.runner import ExperimentResult, ParameterSweep, aggregate_rows
from ..runtime import (
    CrashSpec,
    Engine,
    execute_spec,
    leaders,
    minority,
    no_crashes,
    scenario,
)

__all__ = ["run"]

DESCRIPTION = "Consensus with HΩ and a majority of correct processes (Figure 8, Theorem 7)"

_CRASH_MODES = ("none", "minority", "leaders")


def _crash_spec(mode: str, n: int, at: float) -> CrashSpec:
    if mode == "none":
        return no_crashes()
    if mode == "minority":
        return minority(at=at)
    if mode == "leaders":
        return leaders(max(1, (n - 1) // 2), at=at)
    raise ValueError(f"unknown crash mode {mode!r}")


def _run_one(config: dict) -> dict:
    spec = (
        scenario("E4")
        .processes(config["n"])
        .distinct_ids(config["distinct_ids"])
        .crashes(_crash_spec(config["crash_mode"], config["n"], 8.0))
        .detectors("HOmega", "HSigma", stabilization=config["stabilization"])
        .consensus("homega_majority")
        .horizon(600.0)
        .seed(config["seed"])
        .build()
    )
    return dict(execute_spec(spec).metrics)


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run the E4 sweep and return the aggregated result."""
    engine = engine or Engine()
    if quick:
        parameters = {
            "n": [5],
            "distinct_ids": [1, 3, 5],
            "crash_mode": ["none", "minority", "leaders"],
            "stabilization": [20.0],
        }
        repetitions = 2
    else:
        parameters = {
            "n": [5, 7, 9],
            "distinct_ids": [1, 2, 5],
            "crash_mode": list(_CRASH_MODES),
            "stabilization": [5.0, 20.0, 50.0],
        }
        repetitions = 5
    sweep = ParameterSweep(parameters, repetitions=repetitions, base_seed=seed)
    rows = engine.sweep(_run_one, sweep)
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "distinct_ids", "crash_mode", "stabilization"],
        metrics=["decided", "safe", "decision_time", "rounds", "broadcasts"],
    )
    summary = {
        "runs": len(rows),
        "all_terminated": all(row["decided"] for row in rows),
        "all_safe": all(row["safe"] for row in rows),
    }
    return ExperimentResult(
        experiment="E4",
        description=DESCRIPTION,
        rows=tuple(aggregated),
        summary=summary,
        columns=(
            "n",
            "distinct_ids",
            "crash_mode",
            "stabilization",
            "runs",
            "decided",
            "safe",
            "decision_time",
            "rounds",
            "broadcasts",
        ),
    )
