"""E1 — Convergence of the Figure 6 ◇HP / HΩ implementation in HPS[∅].

Reproduces the paper's Theorem 5 and Corollary 2 empirically: the polling
algorithm converges to ``h_trusted = I(Correct)`` (and the derived HΩ output)
in partially synchronous homonymous systems with unknown membership, for every
homonymy pattern and crash schedule, and regardless of the (unknown) GST and
δ.  The sweep also records how the convergence time scales with GST and δ and
how far the adaptive timeout grows, and contrasts the fixed-timeout ablation
(which fails to converge when the timeout is below the real latency bound).
"""

from __future__ import annotations

from ..algorithms import OhpPollingProgram
from ..analysis.runner import ExperimentResult, ParameterSweep, aggregate_rows
from ..detectors import check_diamond_hp, check_homega_election
from ..runtime import Engine
from ..sim import PartiallySynchronousTiming, Simulation, build_system
from ..sim.failures import FailurePattern
from ..workloads.crashes import minority_crashes
from ..workloads.homonymy import membership_with_distinct_ids

__all__ = ["run"]

DESCRIPTION = "◇HP / HΩ convergence under partial synchrony (Figure 6, Theorem 5, Corollary 2)"


def _run_one(config: dict) -> dict:
    membership = membership_with_distinct_ids(config["n"], config["distinct_ids"])
    crash_schedule = minority_crashes(membership, at=config["gst"] / 2 + 1.0)
    timing = PartiallySynchronousTiming(
        gst=config["gst"],
        delta=config["delta"],
        min_latency=0.1,
        pre_gst_loss=0.4,
        pre_gst_max_latency=4 * config["gst"] + 10.0,
    )
    system = build_system(
        membership=membership,
        timing=timing,
        program_factory=lambda pid, identity: OhpPollingProgram(
            fixed_timeout=config["fixed_timeout"]
        ),
        crash_schedule=crash_schedule,
        seed=config["seed"],
    )
    simulation = Simulation(system)
    horizon = config["gst"] * 4 + 120.0
    trace = simulation.run(until=horizon)
    pattern = FailurePattern(membership, crash_schedule)
    hp_result = check_diamond_hp(trace, pattern)
    homega_result = check_homega_election(trace, pattern)
    timeouts = [
        trace.final_value(process, "ohp.timeout")
        for process in pattern.correct
        if trace.final_value(process, "ohp.timeout") is not None
    ]
    return {
        "converged": hp_result.ok,
        "homega_ok": homega_result.ok,
        "convergence_time": hp_result.stabilization_time if hp_result.ok else None,
        "final_timeout": max(timeouts) if timeouts else None,
    }


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run the E1 sweep and return the aggregated result."""
    engine = engine or Engine()
    if quick:
        parameters = {
            "n": [5],
            "distinct_ids": [1, 3, 5],
            "gst": [10.0, 30.0],
            "delta": [1.0, 3.0],
            "fixed_timeout": [False],
        }
        repetitions = 1
    else:
        parameters = {
            "n": [4, 6, 8],
            "distinct_ids": [1, 2, 4],
            "gst": [10.0, 30.0, 60.0],
            "delta": [0.5, 1.0, 3.0],
            "fixed_timeout": [False],
        }
        repetitions = 3
    sweep = ParameterSweep(parameters, repetitions=repetitions, base_seed=seed)
    rows = engine.sweep(_run_one, sweep)

    # The fixed-timeout ablation: one configuration where the static timeout is
    # below the actual latency bound, expected NOT to converge.
    ablation_sweep = ParameterSweep(
        {
            "n": [4],
            "distinct_ids": [2],
            "gst": [0.0],
            "delta": [4.0],
            "fixed_timeout": [True],
        },
        repetitions=1,
        base_seed=seed + 1_000,
    )
    rows.extend(engine.sweep(_run_one, ablation_sweep))

    aggregated = aggregate_rows(
        rows,
        group_by=["n", "distinct_ids", "gst", "delta", "fixed_timeout"],
        metrics=["converged", "homega_ok", "convergence_time", "final_timeout"],
    )
    adaptive_rows = [row for row in rows if not row["fixed_timeout"]]
    summary = {
        "adaptive_runs": len(adaptive_rows),
        "adaptive_all_converged": all(row["converged"] for row in adaptive_rows),
        "adaptive_all_homega_ok": all(row["homega_ok"] for row in adaptive_rows),
        "fixed_timeout_converged": any(
            row["converged"] for row in rows if row["fixed_timeout"]
        ),
    }
    return ExperimentResult(
        experiment="E1",
        description=DESCRIPTION,
        rows=tuple(aggregated),
        summary=summary,
        columns=(
            "n",
            "distinct_ids",
            "gst",
            "delta",
            "fixed_timeout",
            "runs",
            "converged",
            "homega_ok",
            "convergence_time",
            "final_timeout",
        ),
    )
