"""E5 — Figure 9 consensus in HAS[HΩ, HΣ]: any number of crashes, n unknown.

Reproduces Theorem 8 empirically: the HΩ + HΣ algorithm decides correctly even
when a majority of processes crash (which Figure 8 cannot tolerate), without
knowing ``n`` or ``t``.  The sweep varies the homonymy pattern and the number
of crashes up to ``n − 1`` and reports the same correctness and cost figures
as E4, so the two algorithms can be compared where both apply.
"""

from __future__ import annotations

from ..analysis.runner import ExperimentResult, ParameterSweep, aggregate_rows
from ..runtime import Engine, cascading, execute_spec, scenario

__all__ = ["run"]

DESCRIPTION = "Consensus with HΩ and HΣ under any number of crashes (Figure 9, Theorem 8)"


def _run_one(config: dict) -> dict:
    crash_count = min(config["crashes"], config["n"] - 1)
    spec = (
        scenario("E5")
        .processes(config["n"])
        .distinct_ids(config["distinct_ids"])
        .crashes(cascading(crash_count, first_at=6.0, interval=4.0))
        .detectors("HOmega", "HSigma", stabilization=config["stabilization"])
        .consensus("homega_hsigma")
        .horizon(700.0)
        .seed(config["seed"])
        .build()
    )
    row = dict(execute_spec(spec).metrics)
    row["faulty"] = crash_count
    row["majority_crashed"] = crash_count > config["n"] / 2
    return row


def run(quick: bool = True, seed: int = 0, engine: Engine | None = None) -> ExperimentResult:
    """Run the E5 sweep and return the aggregated result."""
    engine = engine or Engine()
    if quick:
        parameters = {
            "n": [5],
            "distinct_ids": [1, 3, 5],
            "crashes": [0, 2, 4],
            "stabilization": [20.0],
        }
        repetitions = 2
    else:
        parameters = {
            "n": [4, 6, 8],
            "distinct_ids": [1, 2, 4],
            "crashes": [0, 1, 3, 5, 7],
            "stabilization": [5.0, 20.0, 50.0],
        }
        repetitions = 4
    sweep = ParameterSweep(parameters, repetitions=repetitions, base_seed=seed)
    rows = engine.sweep(_run_one, sweep)
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "distinct_ids", "crashes", "stabilization"],
        metrics=["decided", "safe", "decision_time", "rounds", "broadcasts"],
    )
    majority_crash_rows = [row for row in rows if row["majority_crashed"]]
    summary = {
        "runs": len(rows),
        "all_terminated": all(row["decided"] for row in rows),
        "all_safe": all(row["safe"] for row in rows),
        "runs_with_majority_crashed": len(majority_crash_rows),
        "majority_crashed_all_terminated": all(
            row["decided"] for row in majority_crash_rows
        )
        if majority_crash_rows
        else None,
    }
    return ExperimentResult(
        experiment="E5",
        description=DESCRIPTION,
        rows=tuple(aggregated),
        summary=summary,
        columns=(
            "n",
            "distinct_ids",
            "crashes",
            "stabilization",
            "runs",
            "decided",
            "safe",
            "decision_time",
            "rounds",
            "broadcasts",
        ),
    )
