"""The backend-agnostic program/context protocol.

Algorithms are written as :class:`ProcessProgram` subclasses and see the world
only through an :class:`AbstractProcessContext`.  The protocol is deliberately
*backend-free*: nothing in it mentions the discrete-event scheduler, event
queues, or wall clocks, so the same program object runs unchanged on

* the discrete-event simulator (:class:`repro.sim.process.ProcessContext`,
  where ``now`` is simulated time and ``sleep`` schedules a resume event), and
* the real asyncio/TCP transport backend
  (:class:`repro.transport.context.RealProcessContext`, where ``now`` is a
  shared monotonic clock scaled to scenario time units and ``sleep`` awaits
  wall-clock time).

The blocking vocabulary (:class:`Sleep`, :class:`WaitUntil`,
:class:`NextSyncStep`) is shared: tasks are ordinary generator functions that
yield these requests, and each backend supplies its own trampoline.  A program
must never import simulator internals (``repro.sim.scheduler``,
``repro.sim.events``); a tier-1 lint test enforces this for every module under
``repro/detectors``, ``repro/consensus``, and ``repro/algorithms``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Generator

from .errors import SimulationError
from .identity import Identity

__all__ = [
    "Sleep",
    "WaitUntil",
    "NextSyncStep",
    "BlockingRequest",
    "ProcessProgram",
    "AbstractProcessContext",
]


# ----------------------------------------------------------------------
# Blocking requests that tasks may yield
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Sleep:
    """Suspend the task for ``duration`` scenario time units."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError("cannot sleep for a negative duration")


@dataclass(frozen=True, slots=True)
class WaitUntil:
    """Suspend the task until ``predicate()`` becomes true.

    The predicate is re-evaluated whenever a message is delivered to the
    process and whenever the process is poked (e.g. because an attached
    detector's output changed).
    """

    predicate: Callable[[], bool]


@dataclass(frozen=True, slots=True)
class NextSyncStep:
    """Suspend the task until the next synchronous step boundary (HSS only)."""


BlockingRequest = Sleep | WaitUntil | NextSyncStep


# ----------------------------------------------------------------------
# Program interface
# ----------------------------------------------------------------------
class ProcessProgram:
    """Base class for the algorithm run by one process.

    Subclasses override :meth:`setup` to register message handlers and spawn
    tasks.  Programs of homonymous processes are *identical by construction*
    (the paper's assumption that homonymous processes execute the same
    program): any per-process input (such as a proposal value) must be passed
    explicitly through the constructor by the scenario builder.
    """

    def setup(self, ctx: "AbstractProcessContext") -> None:
        """Register handlers and spawn tasks.  Called once when the run starts."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable name used in traces and experiment tables."""
        return type(self).__name__


class AbstractProcessContext:
    """The program-facing API of one process, independent of the backend.

    Concrete backends implement the abstract members; the blocking-request
    constructors are shared so ``yield ctx.sleep(d)`` means the same thing
    everywhere.  A program never sees the membership, the failure pattern,
    other processes' internal ids, or the global clock — matching the paper's
    adversaries (homonymy, unknown membership, asynchrony).
    """

    # -- static facts ---------------------------------------------------
    @property
    def identity(self) -> Identity:
        """The process's own identifier ``id(p)``."""
        raise NotImplementedError

    @property
    def now(self) -> float:
        """The current time in scenario time units.

        Exposed for local timing and trace annotations only; algorithm logic
        must not branch on absolute time (the paper's processes cannot read
        the global clock).
        """
        raise NotImplementedError

    @property
    def random(self) -> random.Random:
        """A per-process deterministic random stream."""
        raise NotImplementedError

    # -- blocking requests (shared constructors) ------------------------
    def sleep(self, duration: float) -> Sleep:
        """Yieldable: suspend for ``duration`` time units (``wait timeout``)."""
        return Sleep(duration)

    def wait_until(self, predicate: Callable[[], bool]) -> WaitUntil:
        """Yieldable: suspend until ``predicate()`` holds (``wait until …``)."""
        return WaitUntil(predicate)

    def next_synchronous_step(self) -> NextSyncStep:
        """Yieldable: suspend until the next synchronous step boundary."""
        return NextSyncStep()

    # -- communication ---------------------------------------------------
    def broadcast(self, kind: str, **fields: Any) -> None:
        """Broadcast ``⟨kind, fields…⟩`` to every process, including the sender."""
        raise NotImplementedError

    def multicast(self, kind: str, targets: Any, **fields: Any) -> None:
        """Send ``⟨kind, fields…⟩`` to the processes at the given *indices* only.

        ``targets`` is an iterable of process indices (the transport-level
        addresses; a monitoring topology's target sets).  Unlike
        :meth:`broadcast`, the sender only receives its own message if its own
        index is among the targets.  Sparse monitoring topologies are built on
        this; paper-figure algorithms keep using :meth:`broadcast`, matching
        their pseudo-code.
        """
        raise NotImplementedError

    def on(self, kind: str, handler: Callable[[Any], None]) -> None:
        """Register an "upon reception of ⟨kind, …⟩" handler."""
        raise NotImplementedError

    # -- tasks -------------------------------------------------------------
    def spawn(self, task: Callable[[], Generator], *, name: str = "") -> None:
        """Start a task (a generator function yielding blocking requests)."""
        raise NotImplementedError

    # -- failure detectors -------------------------------------------------
    def detector(self, name: str) -> Any:
        """Return the query view of the attached detector registered as ``name``."""
        raise NotImplementedError

    def has_detector(self, name: str) -> bool:
        """Return ``True`` when a detector named ``name`` is attached."""
        raise NotImplementedError

    def attach_detector(self, name: str, view: Any) -> None:
        """Attach a detector view from within a program.

        This is how a *stacked* configuration works: a composite program runs a
        detector implementation (e.g. the Figure 6 polling algorithm) next to a
        consensus algorithm on the same process and exposes the implementation's
        output as the detector the consensus algorithm queries.
        """
        raise NotImplementedError

    # -- trace output ------------------------------------------------------
    def record(self, key: str, value: Any) -> None:
        """Record a time-stamped variable snapshot into the run trace."""
        raise NotImplementedError

    def decide(self, value: Any) -> None:
        """Record a consensus decision (first decision wins)."""
        raise NotImplementedError
