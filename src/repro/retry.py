"""One retry policy for every layer that talks to something that can fail.

Before this module each subsystem improvised its own fault handling: the
transport node dialled peers on a fixed 50 ms interval, the fabric
coordinator respawned dead workers instantly, and a cache write that hit a
transient ``OSError`` simply gave up.  All of them now share one vocabulary:

* :class:`RetryPolicy` — *how* to wait: exponential backoff with
  **decorrelated jitter** (AWS-style: each sleep is drawn uniformly from
  ``[base, prev × 3]``, capped), bounded by both an attempt count and an
  optional wall-clock deadline.  Jitter matters even single-node: N workers
  respawning after a shared cause (an OOM sweep, a chaos kill) must not
  reconverge on the same instant and stampede the same resource.
* :class:`RetryHistory` — *what happened*: one :class:`Attempt` per try,
  each carrying its cause and the backoff that followed, rendering to the
  one-line story (``attempt 1: ConnectionRefusedError (backed off 0.08s);
  attempt 2: …``) that makes a failed run diagnosable from the log alone.
* :func:`retry_call` — the sync driver used by cache writes; async callers
  (the node's dial loop) iterate :meth:`RetryPolicy.delays` themselves so
  the backoff schedule is identical on both sides of the event loop.

Policies are plain frozen data; determinism is the caller's choice — pass a
seeded :class:`random.Random` and the jitter sequence replays bit-identically
(which is what lets a chaos campaign's retries replay), pass nothing and a
fresh unseeded generator is used.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .errors import ConfigurationError

__all__ = [
    "RetryPolicy",
    "Attempt",
    "RetryHistory",
    "RetryExhaustedError",
    "retry_call",
]


class RetryExhaustedError(Exception):
    """Every attempt of a :func:`retry_call` failed; ``history`` tells why.

    The final cause is chained as ``__cause__``, so ``raise … from`` context
    is preserved for tracebacks; the message carries the full per-attempt
    history for logs that only keep one line.
    """

    def __init__(self, message: str, *, history: "RetryHistory") -> None:
        super().__init__(message)
        self.history = history


@dataclass(frozen=True)
class Attempt:
    """One try of a retried operation: its cause of failure and its backoff."""

    number: int  # 1-based
    cause: str
    backoff: float | None = None  # seconds slept after this attempt (None = last)

    def describe(self) -> str:
        tail = "" if self.backoff is None else f" (backed off {self.backoff:.3f}s)"
        return f"attempt {self.number}: {self.cause}{tail}"


@dataclass
class RetryHistory:
    """The full story of one retried operation, for error messages and logs."""

    attempts: list[Attempt] = field(default_factory=list)

    def record(self, number: int, cause: object, backoff: float | None = None) -> None:
        text = cause if isinstance(cause, str) else f"{type(cause).__name__}: {cause}"
        self.attempts.append(Attempt(number=number, cause=text, backoff=backoff))

    def __len__(self) -> int:
        return len(self.attempts)

    def describe(self) -> str:
        if not self.attempts:
            return "no attempts recorded"
        return "; ".join(attempt.describe() for attempt in self.attempts)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with decorrelated jitter, attempt- and time-bounded.

    ``max_attempts`` counts *tries*, not retries: ``max_attempts=1`` means no
    retry at all.  ``deadline`` (wall seconds, measured from the first call to
    :meth:`delays`) bounds the whole operation — once it passes, the schedule
    stops yielding regardless of attempts left, so a retried dial can never
    outlive the run that wanted it.
    """

    base: float = 0.05  # first/minimum sleep, seconds
    cap: float = 2.0  # largest single sleep, seconds
    max_attempts: int = 5  # total tries (1 = never retry)
    deadline: float | None = None  # wall-second budget across all attempts

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ConfigurationError(f"retry base must be positive, got {self.base}")
        if self.cap < self.base:
            raise ConfigurationError(
                f"retry cap ({self.cap}) must be >= base ({self.base})"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"retry deadline must be positive, got {self.deadline}"
            )

    def delays(
        self,
        rng: random.Random | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> Iterator[float]:
        """Yield the sleep before each *retry* (``max_attempts - 1`` values).

        Decorrelated jitter: ``sleep_k = min(cap, uniform(base, 3 × sleep_{k-1}))``
        with ``sleep_0 = base``.  Stops early once ``deadline`` wall seconds
        have elapsed since the first ``next()``.  A seeded ``rng`` makes the
        schedule replayable.
        """
        rng = rng or random.Random()
        started = clock()
        previous = self.base
        for _ in range(self.max_attempts - 1):
            if self.deadline is not None and clock() - started >= self.deadline:
                return
            delay = min(self.cap, rng.uniform(self.base, previous * 3))
            previous = delay
            yield delay

    def remaining(self, started: float, *, clock: Callable[[], float] = time.monotonic) -> float:
        """Wall seconds left of the deadline started at ``started`` (inf if none)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - (clock() - started)


def retry_call(
    fn: Callable[[], Any],
    *,
    policy: RetryPolicy,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    describe: str = "operation",
) -> Any:
    """Call ``fn`` under ``policy``; raise :class:`RetryExhaustedError` when spent.

    Only exceptions in ``retry_on`` are retried — anything else is a
    programming error and propagates immediately.  The raised error's message
    embeds the full per-attempt history.
    """
    history = RetryHistory()
    schedule = policy.delays(rng)
    number = 0
    while True:
        number += 1
        try:
            return fn()
        except retry_on as error:
            delay = next(schedule, None)
            history.record(number, error, backoff=delay)
            if delay is None:
                raise RetryExhaustedError(
                    f"{describe} failed after {number} attempt(s): "
                    f"{history.describe()}",
                    history=history,
                ) from error
            sleep(delay)
