"""The execution engine: one spec, many specs, or whole parameter sweeps.

The :class:`Engine` is the single place where scenarios become runs.  It
dispatches work through a pluggable executor
(:class:`~repro.runtime.executors.SerialExecutor` by default, a
process-pool-backed :class:`~repro.runtime.executors.ParallelExecutor` for
multi-core sweeps) and returns structured :class:`RunRecord` objects, which it
can also append to a JSONL log (written once each batch of work returns).

Three entry points cover every workload in the repository:

* :meth:`Engine.run` — execute one :class:`~repro.runtime.spec.ScenarioSpec`;
* :meth:`Engine.run_many` / :meth:`Engine.run_sweep` — execute an iterable of
  specs, or a :class:`~repro.analysis.runner.ParameterSweep` of configs turned
  into specs by a ``make_spec`` function;
* :meth:`Engine.sweep` — dispatch a custom ``run_one(config) -> dict``
  function over a :class:`ParameterSweep` (what the experiment modules use
  when their metric extraction goes beyond the generic record).

Everything a worker process receives is plain data or a module-level
function, so the same call works serially and in parallel and produces
identical rows for identical seeds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..analysis.metrics import consensus_metrics
from ..analysis.runner import ParameterSweep, merge_row
from ..consensus import validate_consensus
from ..membership import Membership
from ..sim import CompositeProgram, CrashSchedule, Simulation, TimingModel, build_system
from ..sim.failures import FailurePattern
from ..sim.links import LinkModel
from ..sim.system import ProgramFactory
from .executors import Executor, executor_for
from .registry import CHECKS, CONSENSUS, DETECTORS, PROGRAMS
from .spec import ScenarioSpec

__all__ = [
    "RunRecord",
    "Engine",
    "execute_spec",
    "run_once",
    "distinct_proposals",
    "default_consensus_detectors",
]


def distinct_proposals(membership: Membership) -> dict:
    """One distinct proposal per process (so agreement is non-trivial)."""
    return {process: f"value-{process.index}" for process in membership.processes}


def default_consensus_detectors(stabilization: float, *, noise_period: float | None = 5.0):
    """The HΩ + HΣ oracle pair the consensus experiments attach by default."""
    homega = DETECTORS.resolve("HOmega")
    hsigma = DETECTORS.resolve("HSigma")
    return {
        "HOmega": homega(
            {"stabilization_time": stabilization, "noise_period": noise_period}
        ),
        "HSigma": hsigma({"stabilization_time": stabilization}),
    }


@dataclass(frozen=True)
class RunRecord:
    """The structured outcome of one run.

    ``config`` echoes the input (a spec's ``to_dict`` or a sweep config) and
    ``metrics`` holds the measured outcome; both are plain JSON-serializable
    data, so records from serial and parallel runs compare equal and a JSONL
    log line is just ``to_dict()``.

    ``digest`` is the run's determinism digest (see
    :attr:`repro.sim.Simulation.digest`): a 64-bit hex fingerprint of the
    exact event dispatch order.  Equal digests mean behaviourally identical
    runs, so serial and parallel sweeps — and pre/post-refactor builds — can
    be compared mechanically.  It is kept out of ``metrics`` so experiment
    tables and aggregations are unaffected.
    """

    scenario: str
    seed: int
    config: Mapping[str, Any] = field(default_factory=dict)
    metrics: Mapping[str, Any] = field(default_factory=dict)
    digest: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", dict(self.config))
        object.__setattr__(self, "metrics", dict(self.metrics))

    def row(self) -> dict:
        """Flatten into one result row (metrics win on key collisions)."""
        return {**{k: v for k, v in self.config.items() if not isinstance(v, (dict, list))},
                **self.metrics}

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "config": dict(self.config),
            "metrics": dict(self.metrics),
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        return cls(
            scenario=payload.get("scenario", ""),
            seed=payload.get("seed", 0),
            config=dict(payload.get("config", {})),
            metrics=dict(payload.get("metrics", {})),
            digest=payload.get("digest", ""),
        )


def run_once(
    *,
    membership: Membership,
    timing: TimingModel,
    program_factory: ProgramFactory,
    crash_schedule: CrashSchedule | None = None,
    detectors: Mapping[str, Any] | None = None,
    links: LinkModel | None = None,
    proposals: Mapping[Any, Any] | None = None,
    horizon: float = 500.0,
    seed: int = 0,
    expect_decisions: bool = True,
    checks: Iterable[str] = (),
    scenario: str = "",
    config: Mapping[str, Any] | None = None,
) -> RunRecord:
    """Execute one fully-materialised configuration and measure the outcome.

    This is the shared execution path under :func:`execute_spec` and the
    legacy ``run_consensus_once`` shim: build the system, run the simulation
    (stopping early once every correct process has decided, when decisions
    are expected), validate, and collect metrics.
    """
    schedule = crash_schedule or CrashSchedule.none()
    system = build_system(
        membership=membership,
        timing=timing,
        program_factory=program_factory,
        crash_schedule=schedule,
        detectors=dict(detectors or {}),
        links=links,
        seed=seed,
        name=scenario,
    )
    simulation = Simulation(system)
    if expect_decisions:
        trace = simulation.run(
            until=horizon, stop_when=lambda sim: sim.all_correct_decided()
        )
    else:
        trace = simulation.run(until=horizon)
    pattern = FailurePattern(membership, schedule)

    metrics: dict[str, Any] = {}
    if expect_decisions:
        verdict = validate_consensus(
            trace, pattern, dict(proposals or {}), require_termination=False
        )
        measured = consensus_metrics(trace, pattern, verdict)
        metrics.update(
            {
                "decided": measured.decided,
                "safe": measured.safe,
                "decision_time": measured.last_decision_time,
                "rounds": measured.max_decision_round,
                "broadcasts": measured.broadcasts,
                "message_copies": measured.message_copies,
            }
        )
    for check in checks:
        result = CHECKS.resolve(check)(trace, pattern)
        metrics[f"{check}_ok"] = result.ok
        metrics[f"{check}_time"] = result.stabilization_time
    return RunRecord(
        scenario=scenario,
        seed=seed,
        config=config or {},
        metrics=metrics,
        digest=simulation.digest,
    )


def execute_spec(spec: ScenarioSpec) -> RunRecord:
    """Materialise and execute one declarative scenario.

    Module-level on purpose: the :class:`ParallelExecutor` pickles this
    function by reference and the spec by value, so a sweep of specs fans out
    over worker processes with no extra machinery.
    """
    membership = spec.membership.build()
    proposals = distinct_proposals(membership) if spec.consensus else None

    consensus_entry = CONSENSUS.resolve(spec.consensus) if spec.consensus else None
    program_entry = PROGRAMS.resolve(spec.program) if spec.program else None

    def factory(pid, identity):
        programs = []
        if program_entry is not None:
            programs.append(program_entry.build(spec.program_params))
        if consensus_entry is not None:
            programs.append(
                consensus_entry.build(proposals[pid], membership, spec.consensus_params)
            )
        return programs[0] if len(programs) == 1 else CompositeProgram(*programs)

    detectors = {
        detector.name: DETECTORS.resolve(detector.name)(detector.params)
        for detector in spec.detectors
    }
    return run_once(
        membership=membership,
        timing=spec.timing.build(),
        program_factory=factory,
        crash_schedule=spec.crashes.build(membership),
        detectors=detectors,
        links=None if spec.network.is_reliable else spec.network.build(),
        proposals=proposals,
        horizon=spec.horizon,
        seed=spec.seed,
        expect_decisions=spec.consensus is not None,
        checks=spec.checks,
        scenario=spec.name,
        config=spec.to_dict(),
    )


class Engine:
    """Executes scenarios and sweeps through a pluggable executor."""

    def __init__(
        self,
        executor: Executor | None = None,
        *,
        jobs: int | None = None,
        jsonl_path: str | None = None,
    ) -> None:
        if executor is not None and jobs is not None:
            raise ValueError("pass either an executor or jobs, not both")
        self.executor: Executor = executor or executor_for(jobs)
        self.jsonl_path = jsonl_path

    # -- declarative specs ---------------------------------------------
    def run(self, spec: ScenarioSpec) -> RunRecord:
        """Execute one scenario and return its record."""
        record = execute_spec(spec)
        self._emit(record.to_dict())
        return record

    def run_many(self, specs: Iterable[ScenarioSpec]) -> list[RunRecord]:
        """Execute many scenarios (in parallel when the executor allows)."""
        records = self.executor.map(execute_spec, list(specs))
        for record in records:
            self._emit(record.to_dict())
        return records

    def run_sweep(
        self,
        make_spec: Callable[[dict], ScenarioSpec],
        sweep: ParameterSweep | Iterable[Mapping[str, Any]],
    ) -> list[dict]:
        """Turn every sweep config into a spec, execute all, return rows.

        Each returned row is the sweep config (minus the bookkeeping
        ``repetition`` field) merged with the record's metrics — the shape
        :func:`repro.analysis.runner.aggregate_rows` consumes.
        """
        configs = [dict(config) for config in sweep]
        specs = [make_spec(dict(config)) for config in configs]
        records = self.run_many(specs)
        return [
            merge_row(config, record.metrics)
            for config, record in zip(configs, records)
        ]

    # -- custom per-config functions -----------------------------------
    def sweep(
        self,
        run_one: Callable[[dict], Mapping[str, Any]],
        sweep: ParameterSweep | Iterable[Mapping[str, Any]],
    ) -> list[dict]:
        """Dispatch ``run_one`` over every config of a sweep.

        ``run_one`` must be a module-level function (picklable) returning a
        metrics mapping; rows come back in sweep order regardless of the
        executor, so parallel runs reproduce serial ones exactly.
        """
        configs = [dict(config) for config in sweep]
        # Copies go to run_one so a mutating run_one cannot corrupt the rows
        # (which would also make serial and parallel runs diverge).
        outcomes = self.executor.map(run_one, [dict(config) for config in configs])
        rows = [merge_row(config, outcome) for config, outcome in zip(configs, outcomes)]
        for row in rows:
            self._emit(row)
        return rows

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Raw executor access: apply ``fn`` to every item, in order."""
        return self.executor.map(fn, list(items))

    # -- bookkeeping ---------------------------------------------------
    def _emit(self, payload: Mapping[str, Any]) -> None:
        if not self.jsonl_path:
            return
        with open(self.jsonl_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True, default=str) + "\n")

    def __repr__(self) -> str:
        return f"Engine(executor={self.executor!r})"
