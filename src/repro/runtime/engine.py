"""The execution engine: one spec, many specs, or whole parameter sweeps.

The :class:`Engine` is the single place where scenarios become runs.  It
dispatches work through a pluggable executor
(:class:`~repro.runtime.executors.SerialExecutor` by default; with
``jobs=N`` a persistent :class:`~repro.runtime.executors.WorkerPool` whose
worker processes are spawned once and reused across every call) and returns
structured :class:`RunRecord` objects, which it can also append to a JSONL
log.

Three entry points cover every workload in the repository:

* :meth:`Engine.run` — execute one :class:`~repro.runtime.spec.ScenarioSpec`;
* :meth:`Engine.run_many` / :meth:`Engine.run_sweep` — execute an iterable of
  specs, or a :class:`~repro.analysis.runner.ParameterSweep` of configs turned
  into specs by a ``make_spec`` function;
* :meth:`Engine.sweep` — dispatch a custom ``run_one(config) -> dict``
  function over a :class:`ParameterSweep` (what the experiment modules use
  when their metric extraction goes beyond the generic record).

Sweep-scale machinery, all opt-in:

* **streaming** — ``run_many`` / ``run_sweep`` / ``sweep`` accept
  ``stream=True`` and then return a lazy iterator that yields each result as
  its dispatch chunk completes, *in input order* (so a consumer can fold,
  plot, or persist incrementally while later chunks still run, and the final
  table is deterministic regardless).  JSONL emission always flushes
  incrementally as results become available, streaming or not;
* **run caching** — pass ``cache=`` a directory (or
  :class:`~repro.runtime.cache.RunCache`) and completed runs are memoized on
  ``(canonical-spec-hash, seed)``; repeated or resumed sweeps skip the
  recompute and rehydrate the stored records, including their determinism
  digests.  Custom ``sweep`` functions are keyed on function name + config;
* **lifecycle** — the Engine owns its executor: ``Engine(jobs=4)`` keeps one
  warm worker pool alive across calls until :meth:`Engine.close` (or the end
  of a ``with Engine(...) as engine:`` block).

Everything a worker process receives is plain data or a module-level
function, so the same call works serially and in parallel and produces
identical rows for identical seeds.  Transport is *packed*: workers receive
chunks of specs and return ``(metrics, digest)`` tuples; the parent — which
already holds every spec — rehydrates full :class:`RunRecord` objects in
input order, so the per-run config dict never crosses a process boundary
twice.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..analysis.metrics import consensus_metrics
from ..analysis.runner import ParameterSweep, merge_row
from ..consensus import validate_consensus
from ..membership import Membership
from ..sim import CompositeProgram, CrashSchedule, Simulation, TimingModel, build_system
from ..sim import scheduler as _scheduler_module
from ..sim.failures import FailurePattern
from ..sim.links import LinkModel
from ..sim.system import ProgramFactory
from .cache import RunCache
from .executors import Executor, executor_for
from .registry import CHECKS, CONSENSUS, DETECTORS, PROGRAMS
from .spec import ScenarioSpec

__all__ = [
    "RunRecord",
    "Engine",
    "execute_spec",
    "run_once",
    "run_with_digest_capture",
    "distinct_proposals",
    "default_consensus_detectors",
]


def distinct_proposals(membership: Membership) -> dict:
    """One distinct proposal per process (so agreement is non-trivial)."""
    return {process: f"value-{process.index}" for process in membership.processes}


def default_consensus_detectors(stabilization: float, *, noise_period: float | None = 5.0):
    """The HΩ + HΣ oracle pair the consensus experiments attach by default."""
    homega = DETECTORS.resolve("HOmega")
    hsigma = DETECTORS.resolve("HSigma")
    return {
        "HOmega": homega(
            {"stabilization_time": stabilization, "noise_period": noise_period}
        ),
        "HSigma": hsigma({"stabilization_time": stabilization}),
    }


@dataclass(frozen=True)
class RunRecord:
    """The structured outcome of one run.

    ``config`` echoes the input (a spec's ``to_dict`` or a sweep config) and
    ``metrics`` holds the measured outcome; both are plain JSON-serializable
    data, so records from serial and parallel runs compare equal and a JSONL
    log line is just ``to_dict()``.

    ``digest`` is the run's determinism digest (see
    :attr:`repro.sim.Simulation.digest`): a 64-bit hex fingerprint of the
    exact event dispatch order.  Equal digests mean behaviourally identical
    runs, so serial and parallel sweeps — and pre/post-refactor builds — can
    be compared mechanically.  It is kept out of ``metrics`` so experiment
    tables and aggregations are unaffected.
    """

    scenario: str
    seed: int
    config: Mapping[str, Any] = field(default_factory=dict)
    metrics: Mapping[str, Any] = field(default_factory=dict)
    digest: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", dict(self.config))
        object.__setattr__(self, "metrics", dict(self.metrics))

    def row(self) -> dict:
        """Flatten into one result row (metrics win on key collisions)."""
        return {**{k: v for k, v in self.config.items() if not isinstance(v, (dict, list))},
                **self.metrics}

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "config": dict(self.config),
            "metrics": dict(self.metrics),
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        return cls(
            scenario=payload.get("scenario", ""),
            seed=payload.get("seed", 0),
            config=dict(payload.get("config", {})),
            metrics=dict(payload.get("metrics", {})),
            digest=payload.get("digest", ""),
        )


def run_once(
    *,
    membership: Membership,
    timing: TimingModel,
    program_factory: ProgramFactory,
    crash_schedule: CrashSchedule | None = None,
    detectors: Mapping[str, Any] | None = None,
    links: LinkModel | None = None,
    proposals: Mapping[Any, Any] | None = None,
    horizon: float = 500.0,
    seed: int = 0,
    expect_decisions: bool = True,
    checks: Iterable[str] = (),
    scenario: str = "",
    config: Mapping[str, Any] | None = None,
) -> RunRecord:
    """Execute one fully-materialised configuration and measure the outcome.

    This is the shared execution path under :func:`execute_spec` and the
    legacy ``run_consensus_once`` shim: build the system, run the simulation
    (stopping early once every correct process has decided, when decisions
    are expected), validate, and collect metrics.
    """
    schedule = crash_schedule or CrashSchedule.none()
    system = build_system(
        membership=membership,
        timing=timing,
        program_factory=program_factory,
        crash_schedule=schedule,
        detectors=dict(detectors or {}),
        links=links,
        seed=seed,
        name=scenario,
    )
    simulation = Simulation(system)
    if expect_decisions:
        trace = simulation.run(
            until=horizon, stop_when=lambda sim: sim.all_correct_decided()
        )
    else:
        trace = simulation.run(until=horizon)
    pattern = FailurePattern(membership, schedule)

    metrics: dict[str, Any] = {}
    if expect_decisions:
        verdict = validate_consensus(
            trace, pattern, dict(proposals or {}), require_termination=False
        )
        measured = consensus_metrics(trace, pattern, verdict)
        metrics.update(
            {
                "decided": measured.decided,
                "safe": measured.safe,
                "decision_time": measured.last_decision_time,
                "rounds": measured.max_decision_round,
                "broadcasts": measured.broadcasts,
                "message_copies": measured.message_copies,
            }
        )
    for check in checks:
        result = CHECKS.resolve(check)(trace, pattern)
        metrics[f"{check}_ok"] = result.ok
        metrics[f"{check}_time"] = result.stabilization_time
        # Checks may publish extra measurements (detection latency, message
        # counts, false suspicions, …) under details["metrics"]; fold them in
        # namespaced by the check, mirroring the _ok/_time keys.
        extra = result.details.get("metrics") if result.details else None
        if isinstance(extra, Mapping):
            for key, value in extra.items():
                metrics[f"{check}_{key}"] = value
    return RunRecord(
        scenario=scenario,
        seed=seed,
        config=config or {},
        metrics=metrics,
        digest=simulation.digest,
    )


def execute_spec(spec: ScenarioSpec) -> RunRecord:
    """Materialise and execute one declarative scenario.

    Module-level on purpose: the pool executors pickle this function by
    reference and the spec by value, so a sweep of specs fans out over worker
    processes with no extra machinery.
    """
    if spec.backend == "real":
        # The asyncio/TCP backend: the same program objects as real OS
        # processes over real sockets; imported lazily for the same
        # acyclicity reason as the KV runner below.
        from ..transport.orchestrator import execute_real_spec

        return execute_real_spec(spec)
    if spec.kv is not None:
        # The KV service workload has its own materialisation (replica group
        # + client processes); imported lazily to keep the import graph
        # acyclic (the KV runner imports RunRecord from this module).
        from ..workloads.kv.runner import execute_kv_spec

        return execute_kv_spec(spec)
    membership = spec.membership.build()
    proposals = distinct_proposals(membership) if spec.consensus else None

    consensus_entry = CONSENSUS.resolve(spec.consensus) if spec.consensus else None
    program_entry = PROGRAMS.resolve(spec.program) if spec.program else None

    # Topology-aware programs get the materialised topology and their own
    # index injected into the build parameters.  The default full mesh takes
    # the historical build call — parameter-for-parameter identical, so every
    # pre-topology digest is preserved.
    topology = None if spec.topology.is_full_mesh else spec.topology.build()

    def factory(pid, identity):
        programs = []
        if program_entry is not None:
            if topology is not None:
                programs.append(
                    program_entry.build(
                        {
                            **spec.program_params,
                            "topology": topology,
                            "index": pid.index,
                            "peers": tuple(range(membership.size)),
                        }
                    )
                )
            else:
                programs.append(program_entry.build(spec.program_params))
        if consensus_entry is not None:
            programs.append(
                consensus_entry.build(proposals[pid], membership, spec.consensus_params)
            )
        return programs[0] if len(programs) == 1 else CompositeProgram(*programs)

    detectors = {
        detector.name: DETECTORS.resolve(detector.name)(detector.params)
        for detector in spec.detectors
    }
    return run_once(
        membership=membership,
        timing=spec.timing.build(),
        program_factory=factory,
        crash_schedule=spec.crashes.build(membership),
        detectors=detectors,
        links=None if spec.network.is_reliable else spec.network.build(),
        proposals=proposals,
        horizon=spec.horizon,
        seed=spec.seed,
        expect_decisions=spec.consensus is not None,
        checks=spec.checks,
        scenario=spec.name,
        config=spec.to_dict(),
    )


def _execute_spec_packed(spec: ScenarioSpec) -> tuple[dict, str]:
    """Worker entry point with compact transport: ``(metrics, digest)``.

    The parent already holds the spec, so echoing ``scenario``/``seed``/the
    full config dict back over the pipe per run is pure pickle overhead —
    only the measured outcome crosses the process boundary.  The parent
    rehydrates the full :class:`RunRecord` (in input order).
    """
    record = execute_spec(spec)
    return dict(record.metrics), record.digest


def _rehydrate_record(spec: ScenarioSpec, packed: tuple[dict, str]) -> RunRecord:
    metrics, digest = packed
    return RunRecord(
        scenario=spec.name,
        seed=spec.seed,
        config=spec.to_dict(),
        metrics=metrics,
        digest=digest,
    )


def run_with_digest_capture(task: "tuple[Callable[[Any], Any], Any]") -> tuple[Any, list[int]]:
    """Apply ``fn`` to ``item``, also returning the digests of every
    :class:`~repro.sim.Simulation` the call completed.

    ``task`` is a ``(fn, item)`` pair so the whole thing is picklable and can
    be dispatched through any executor; the digests come back *with the
    result*, in execution order, which is what lets a digest manifest compare
    serial, warm-pool, and cold-pool sweeps bit for bit (a parent-side
    monkeypatch never reaches a ``spawn``-started worker).
    """
    fn, item = task
    previous = _scheduler_module.DIGEST_SINK
    _scheduler_module.DIGEST_SINK = sink = []
    try:
        result = fn(item)
    finally:
        _scheduler_module.DIGEST_SINK = previous
    return result, sink


class Engine:
    """Executes scenarios and sweeps through a pluggable executor.

    ``Engine(jobs=N)`` owns a persistent warm
    :class:`~repro.runtime.executors.WorkerPool` (``pool="cold"`` selects the
    per-call :class:`~repro.runtime.executors.ParallelExecutor` instead) and
    is reusable across any number of ``run``/``run_many``/``run_sweep``
    calls; close it explicitly or use it as a context manager.
    ``chunk_multiplier`` tunes dispatch granularity (chunks per worker per
    call, ≥ 1).  ``cache`` (a directory path or
    :class:`~repro.runtime.cache.RunCache`) memoizes completed runs; see the
    module docstring.  ``progress`` is called with every emitted payload
    (record dict or row) as it completes, in order — the hook behind the
    CLI's ``--stream``.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        *,
        jobs: int | None = None,
        chunk_multiplier: int | None = None,
        pool: str = "warm",
        jsonl_path: str | None = None,
        cache: RunCache | str | None = None,
        progress: Callable[[Mapping[str, Any]], None] | None = None,
    ) -> None:
        if executor is not None and (
            jobs is not None or chunk_multiplier is not None or pool != "warm"
        ):
            raise ValueError("pass either an executor or jobs/chunk_multiplier/pool, not both")
        self.executor: Executor = executor or executor_for(
            jobs, chunk_multiplier=chunk_multiplier, pool=pool
        )
        self.jsonl_path = jsonl_path
        self.cache = RunCache.coerce(cache)
        self.progress = progress

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release the executor's resources (idempotent).

        For a warm :class:`WorkerPool` this shuts the worker processes down;
        serial and cold executors hold nothing between calls.
        """
        closer = getattr(self.executor, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- declarative specs ---------------------------------------------
    def run(self, spec: ScenarioSpec) -> RunRecord:
        """Execute one scenario (or rehydrate it from the cache)."""
        (record,) = self._iter_records([spec])
        return record

    def run_many(
        self, specs: Iterable[ScenarioSpec], *, stream: bool = False
    ) -> "list[RunRecord] | Iterator[RunRecord]":
        """Execute many scenarios (in parallel when the executor allows).

        With ``stream=True`` the result is a lazy iterator that yields each
        record — in input order — as its dispatch chunk completes; otherwise
        the full list is returned once every run has finished.  JSONL
        emission happens incrementally in both modes.
        """
        iterator = self._iter_records(list(specs))
        return iterator if stream else list(iterator)

    def run_sweep(
        self,
        make_spec: Callable[[dict], ScenarioSpec],
        sweep: ParameterSweep | Iterable[Mapping[str, Any]],
        *,
        stream: bool = False,
    ) -> "list[dict] | Iterator[dict]":
        """Turn every sweep config into a spec, execute all, return rows.

        Each returned row is the sweep config (minus the bookkeeping
        ``repetition`` field) merged with the record's metrics — the shape
        :func:`repro.analysis.runner.aggregate_rows` consumes.  With
        ``stream=True`` rows are yielded in sweep order as chunks complete.
        """
        configs = [dict(config) for config in sweep]
        specs = [make_spec(dict(config)) for config in configs]
        iterator = (
            merge_row(config, record.metrics)
            for config, record in zip(configs, self._iter_records(specs))
        )
        return iterator if stream else list(iterator)

    def _iter_records(self, specs: list[ScenarioSpec]) -> Iterator[RunRecord]:
        """Yield one record per spec, in input order, as results arrive."""

        def from_fresh(spec: ScenarioSpec, packed: tuple[dict, str]) -> RunRecord:
            record = _rehydrate_record(spec, packed)
            self._cache_put_record(spec, record)
            return record

        return self._iter_ordered(
            specs,
            _execute_spec_packed,
            get_cached=self._cache_get_record,
            from_fresh=from_fresh,
            emit_of=RunRecord.to_dict,
        )

    # -- custom per-config functions -----------------------------------
    def sweep(
        self,
        run_one: Callable[[dict], Mapping[str, Any]],
        sweep: ParameterSweep | Iterable[Mapping[str, Any]],
        *,
        stream: bool = False,
    ) -> "list[dict] | Iterator[dict]":
        """Dispatch ``run_one`` over every config of a sweep.

        ``run_one`` must be a module-level function (picklable) returning a
        metrics mapping, and a pure function of its config; rows come back in
        sweep order regardless of the executor, so parallel runs reproduce
        serial ones exactly.  With ``stream=True`` rows are yielded lazily as
        chunks complete.  When a cache is attached, outcomes are memoized on
        the function's qualified name plus the canonical config (which
        carries the seed); lambdas and nested functions are run but never
        cached — their qualnames are ambiguous, so two different ones could
        serve each other's entries.
        """
        configs = [dict(config) for config in sweep]
        iterator = self._iter_rows(run_one, configs)
        return iterator if stream else list(iterator)

    def _iter_rows(
        self, run_one: Callable[[dict], Mapping[str, Any]], configs: list[dict]
    ) -> Iterator[dict]:
        """Yield one merged row per config, in input order, as results arrive."""

        def get_cached(config: dict) -> dict | None:
            outcome = self._cache_get_outcome(run_one, config)
            return None if outcome is None else merge_row(config, outcome)

        def from_fresh(config: dict, outcome: Mapping[str, Any]) -> dict:
            self._cache_put_outcome(run_one, config, outcome)
            return merge_row(config, outcome)

        # Copies go to run_one so a mutating run_one cannot corrupt the rows
        # (which would also make serial and parallel runs diverge).
        return self._iter_ordered(
            configs,
            run_one,
            to_task=dict,
            get_cached=get_cached,
            from_fresh=from_fresh,
            emit_of=lambda row: row,
        )

    def _iter_ordered(
        self,
        items: list,
        worker: Callable[[Any], Any],
        *,
        get_cached: Callable[[Any], Any],
        from_fresh: Callable[[Any, Any], Any],
        emit_of: Callable[[Any], Mapping[str, Any]],
        to_task: Callable[[Any], Any] | None = None,
    ) -> Iterator[Any]:
        """The ordered streaming-with-cache core under records and rows.

        Cache hits are resolved up front (``get_cached`` returns the final
        value, or ``None`` for a miss); only the misses are dispatched, and
        each raw result is turned into its final value by ``from_fresh``
        (which also stores it).  Because the executors' ``imap`` yields in
        input order, a value is emitted — ``self._emit(emit_of(value))`` —
        and yielded the moment it is contiguous with everything already
        yielded: streaming without sacrificing determinism of the output
        order.  ``to_task`` maps an item to what is actually shipped to the
        worker (e.g. a defensive copy).
        """
        values: list[Any] = [None] * len(items)
        done = [False] * len(items)
        pending: list[Any] = []
        pending_indices: list[int] = []
        for index, item in enumerate(items):
            value = get_cached(item)
            if value is not None:
                values[index] = value
                done[index] = True
            else:
                pending.append(item if to_task is None else to_task(item))
                pending_indices.append(index)

        cursor = 0

        def drain() -> Iterator[Any]:
            nonlocal cursor
            while cursor < len(items) and done[cursor]:
                value = values[cursor]
                cursor += 1
                self._emit(emit_of(value))
                yield value

        for offset, raw in enumerate(self._dispatch(worker, pending)):
            index = pending_indices[offset]
            values[index] = from_fresh(items[index], raw)
            done[index] = True
            yield from drain()
        yield from drain()

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Raw executor access: apply ``fn`` to every item, in order."""
        return self.executor.map(fn, list(items))

    # -- bookkeeping ---------------------------------------------------
    def _dispatch(self, fn: Callable[[Any], Any], items: list) -> Iterator[Any]:
        """Input-order result iterator, lazy when the executor supports it."""
        if not items:
            return iter(())
        imap = getattr(self.executor, "imap", None)
        if imap is not None:
            return imap(fn, items)
        return iter(self.executor.map(fn, items))

    def _cache_get_record(self, spec: ScenarioSpec) -> RunRecord | None:
        # Real-backend runs are wall-clock measurements: two runs of the same
        # spec are *supposed* to differ, so memoizing one would silently turn
        # a latency distribution into one frozen sample.  Sim runs only.
        if self.cache is None or spec.backend != "sim":
            return None
        payload = self.cache.get(RunCache.record_key(spec))
        return None if payload is None else RunRecord.from_dict(payload)

    def _cache_put_record(self, spec: ScenarioSpec, record: RunRecord) -> None:
        if self.cache is not None and spec.backend == "sim":
            self.cache.put(RunCache.record_key(spec), record.to_dict())

    def _cache_get_outcome(
        self, run_one: Callable, config: Mapping[str, Any]
    ) -> Mapping[str, Any] | None:
        if self.cache is None or not RunCache.function_cacheable(run_one):
            return None
        return self.cache.get(RunCache.outcome_key(run_one, config))

    def _cache_put_outcome(
        self, run_one: Callable, config: Mapping[str, Any], outcome: Mapping[str, Any]
    ) -> None:
        if self.cache is not None and RunCache.function_cacheable(run_one):
            self.cache.put(RunCache.outcome_key(run_one, config), outcome)

    def _emit(self, payload: Mapping[str, Any]) -> None:
        if self.jsonl_path:
            with open(self.jsonl_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True, default=str) + "\n")
        if self.progress is not None:
            self.progress(payload)

    def __repr__(self) -> str:
        return f"Engine(executor={self.executor!r})"
