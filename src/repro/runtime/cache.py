"""A digest-keyed on-disk cache of completed runs.

Repeated and resumed sweeps are a fact of life at paper scale: the same quick
configurations are re-run on every CLI invocation, a full sweep interrupted
half-way is restarted from zero, and regenerating one table re-executes eight
others.  :class:`RunCache` memoizes completed runs on content-derived keys so
all of that recompute collapses into file reads:

* declarative runs (``Engine.run`` / ``run_many`` / ``run_sweep``) key on
  ``(canonical-spec-hash, seed)`` — see
  :func:`~repro.runtime.spec.canonical_spec_hash`.  Editing *any* part of a
  scenario changes its hash, so stale entries can never be served; a new seed
  is simply a new key;
* custom sweep functions (``Engine.sweep``) key on the function's qualified
  name plus the canonical JSON of its config (which carries the seed).  The
  function is assumed to be a pure function of its config — the same contract
  parallel dispatch already requires.

Entries are one JSON file each, written atomically (temp file +
``os.replace``), so concurrent engines — including worker processes of two
simultaneous sweeps — can share a cache directory.  A corrupt or unreadable
entry is treated as a miss and rewritten.  Fidelity is guaranteed by
construction: a payload is only stored if it survives a JSON round-trip
unchanged, so a cache hit yields byte-identical rows and tables to a fresh
run.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Mapping

from ..retry import RetryExhaustedError, RetryPolicy, retry_call

__all__ = ["RunCache"]

_SCHEMA = "run-cache/1"

#: Transient filesystem hiccups (NFS blips, EMFILE pressure from a worker
#: fleet, a directory briefly unwritable) should not silently cost a cache
#: entry that took a full simulation to produce: writes retry briefly with
#: decorrelated jitter before giving up.  Kept short — a cache write is
#: best-effort and must never stall a sweep.
_PUT_RETRY = RetryPolicy(base=0.01, cap=0.1, max_attempts=3, deadline=1.0)


def _function_key(fn: Callable[..., Any]) -> str:
    module = getattr(fn, "__module__", "") or ""
    qualname = getattr(fn, "__qualname__", repr(fn))
    return f"{module}.{qualname}"


class RunCache:
    """One directory of memoized run outcomes (see the module docstring)."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @classmethod
    def coerce(cls, value: "RunCache | str | os.PathLike | None") -> "RunCache | None":
        """``None`` → ``None``; a path → a cache rooted there; a cache → itself."""
        if value is None or isinstance(value, RunCache):
            return value
        return cls(value)

    # -- keys ----------------------------------------------------------
    @staticmethod
    def record_key(spec: Any) -> str:
        """Key for a declarative run: ``(canonical-spec-hash, seed)``."""
        return f"rec-{spec.canonical_hash()}-{int(spec.seed):08x}"

    @staticmethod
    def function_cacheable(fn: Callable[..., Any]) -> bool:
        """Whether ``fn`` is identifiable by qualified name alone.

        Lambdas and functions defined inside other functions share ambiguous
        qualnames (``<lambda>``, ``…<locals>…``): two different such
        functions would collide on the same key and silently serve each
        other's cached outcomes, so they are never cached (module-level
        functions — the only kind the pool executors accept anyway — are).
        """
        qualname = getattr(fn, "__qualname__", "")
        return bool(qualname) and "<lambda>" not in qualname and "<locals>" not in qualname

    @staticmethod
    def outcome_key(fn: Callable[..., Any], config: Mapping[str, Any]) -> str:
        """Key for a custom sweep function applied to one config."""
        return RunCache.outcome_key_named(_function_key(fn), config)

    @staticmethod
    def outcome_key_named(fn_name: str, config: Mapping[str, Any]) -> str:
        """`outcome_key` from the function's dotted name instead of the object.

        The fabric plans work as plain JSON — a chunk manifest names the sweep
        function (``module.qualname``) rather than pickling it — so planner
        and worker must derive the *same* key from the name alone.  Keeping
        this as the single hashing path (``outcome_key`` delegates here)
        guarantees a fabric worker's entry is a later engine run's hit and
        vice versa.
        """
        text = json.dumps(
            {"fn": fn_name, "config": dict(config)},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return f"row-{hashlib.sha256(text.encode('utf-8')).hexdigest()}"

    @staticmethod
    def derived_key(namespace: str, base_key: str) -> str:
        """A key in a private ``namespace`` derived from another key.

        Lets a subsystem store its own enriched payload alongside the plain
        entry without colliding with it (the fabric stores
        ``{"row", "digests"}`` envelopes under ``derived_key("fab", item_key)``
        while still populating the plain entry for ordinary engine runs).
        """
        digest = hashlib.sha256(base_key.encode("utf-8")).hexdigest()
        return f"{namespace}-{digest}"

    # -- storage -------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored payload for ``key``, or ``None`` (counted as a miss)."""
        try:
            with open(self._path(key), encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("schema") != _SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        return entry.get("payload")

    def put(self, key: str, payload: Mapping[str, Any]) -> bool:
        """Store ``payload`` under ``key``; returns whether it was cached.

        Payloads that do not survive a JSON round-trip unchanged (tuples,
        exotic value types) are silently skipped rather than stored lossily —
        a cache hit must reproduce a fresh run exactly, or not exist.
        """
        payload = dict(payload)
        try:
            text = json.dumps(
                {"schema": _SCHEMA, "payload": payload}, sort_keys=True
            )
        except (TypeError, ValueError):
            return False
        if json.loads(text)["payload"] != payload:
            return False
        path = self._path(key)
        temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")

        def _write() -> None:
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            os.replace(temp, path)

        try:
            retry_call(
                _write,
                policy=_PUT_RETRY,
                retry_on=(OSError,),
                describe=f"cache write {path.name}",
            )
        except RetryExhaustedError:
            # Best-effort: a cache that cannot be written is a slower run,
            # not a failed one.  Leave no temp litter behind.
            try:
                os.unlink(temp)
            except OSError:
                pass
            return False
        return True

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self) -> str:
        return f"RunCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"
