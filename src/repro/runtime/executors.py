"""Pluggable executors: how the Engine maps work over configurations.

Three implementations cover the execution spectrum:

* :class:`SerialExecutor` — everything in-process, one item after another;
* :class:`ParallelExecutor` — the *cold* pool: a fresh
  :class:`~concurrent.futures.ProcessPoolExecutor` is spawned and torn down
  on every ``map`` call (the pre-warm-pool behaviour, kept as the
  apples-to-apples baseline for ``benchmarks/bench_sweep_throughput.py``);
* :class:`WorkerPool` — the *warm* pool: one persistent process pool that is
  spawned lazily on first use, warms each worker exactly once (importing the
  library so later tasks only unpickle their inputs), and is reused across
  every subsequent ``map``/``imap`` call until :meth:`WorkerPool.close`.

Executors need one method — ``map(fn, items) -> list`` — returning results
*in input order*, which is what keeps serial and parallel runs row-for-row
identical (every item carries its own seed; nothing depends on completion
order).  All built-in executors additionally provide ``imap`` (a lazy,
input-order iterator that yields results as dispatch chunks complete — the
primitive behind ``Engine.run_sweep(..., stream=True)``) and an idempotent
``close()``.

Work is dispatched to pools in *chunks*: one task carries a list of items and
returns the list of their results, so a thousand-run sweep costs tens of task
round-trips instead of a thousand.  ``chunk_multiplier`` controls the
trade-off — ``jobs × chunk_multiplier`` chunks per call — between transport
overhead (fewer, larger chunks) and load balance / streaming granularity
(more, smaller chunks).

Both pool executors default to the ``spawn`` start method (see
:data:`POOL_START_METHOD`): workers always execute the clean import path
instead of inheriting an arbitrary fork of the parent heap (monkeypatched
classes, mutated module globals, warmed RNGs), which keeps the determinism
digest guarantee — identical digests serial vs. parallel — independent of
parent-process state.  It is also the only start method with identical
behaviour on Linux, macOS, and Windows, and the fork-from-a-threaded-parent
path it replaces is deprecated since Python 3.12.  The price of spawning —
a fresh interpreter importing the library in every worker — is exactly what
:class:`WorkerPool` amortises to a one-time cost.

``fn`` and the items must be picklable for the pool executors (module-level
functions and plain-data configs/specs are; closures are not — keep per-run
lambdas inside the worker function).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Iterator, Protocol, Sequence

from ..errors import ConfigurationError, WorkerCrashError

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "WorkerPool",
    "executor_for",
    "describe_item",
    "POOL_START_METHOD",
]

#: Start method used by both pool executors (see the module docstring for why
#: ``spawn`` and not the platform default).  Override per executor with the
#: ``start_method`` constructor argument when embedding in an application that
#: has already made its own multiprocessing choices.
POOL_START_METHOD = "spawn"

#: Default number of dispatch chunks per worker per call.
DEFAULT_CHUNK_MULTIPLIER = 4

#: How many in-flight items a :class:`WorkerCrashError` names before truncating.
_MAX_NAMED_CANDIDATES = 8


def describe_item(item: Any) -> str:
    """A short human identification of one work item for error messages.

    Scenario specs (anything with ``name``/``seed`` attributes) and sweep
    configs (mappings with ``name``/``seed`` keys) render as
    ``name[seed=N]``; everything else falls back to a truncated ``repr``.
    """
    name = getattr(item, "name", None)
    seed = getattr(item, "seed", None)
    if name is None and seed is None and isinstance(item, dict):
        name, seed = item.get("name"), item.get("seed")
    if name is not None or seed is not None:
        label = str(name) if name else "<unnamed>"
        return f"{label}[seed={seed}]" if seed is not None else label
    text = repr(item)
    return text if len(text) <= 80 else text[:77] + "..."


def _apply_chunk(fn: Callable[[Any], Any], chunk: list) -> list:
    """Worker-side chunk body: one task applies ``fn`` to a list of items."""
    return [fn(item) for item in chunk]


def _warm_worker() -> None:
    """One-time per-worker warmup: import the library (and its registries).

    Runs as the pool initializer, so every worker pays the interpreter-startup
    and import cost exactly once; afterwards a task only unpickles its inputs.
    Importing :mod:`repro.experiments` pulls in the simulation stack and
    registers every detector/consensus/experiment entry the specs resolve.
    """
    import repro.experiments  # noqa: F401


def _chunk_spans(total: int, chunksize: int) -> list[tuple[int, int]]:
    return [(start, min(start + chunksize, total)) for start in range(0, total, chunksize)]


def _dispatch_chunks(
    pool: ProcessPoolExecutor,
    fn: Callable[[Any], Any],
    work: Sequence[Any],
    chunksize: int,
) -> Iterator[Any]:
    """Submit ``work`` in chunks and yield item results in input order.

    Results stream out as soon as the next-in-order chunk completes, so a
    consumer sees partial results while later chunks are still running; the
    overall order is always the input order.  A :class:`BrokenProcessPool`
    (a worker died — segfault, ``os._exit``, OOM-kill) is re-raised as
    :class:`~repro.errors.WorkerCrashError` naming every item whose result
    was lost, which necessarily includes the item that killed the worker.
    ``submit`` itself can raise it too — a worker that died while the pool
    sat idle breaks the pool before any future exists — so submission happens
    inside the same handler, and the ``finally`` sees whatever was submitted.
    """
    spans = _chunk_spans(len(work), chunksize)
    futures: list = []
    consumed = 0
    try:
        try:
            for start, end in spans:
                futures.append(pool.submit(_apply_chunk, fn, list(work[start:end])))
            for future in futures:
                results = future.result()
                consumed += 1
                yield from results
        except BrokenProcessPool as exc:
            lost = []
            for index, (start, end) in enumerate(spans):
                if index < consumed:
                    continue
                peer = futures[index] if index < len(futures) else None
                if (
                    peer is None
                    or peer.cancelled()
                    or not peer.done()
                    or peer.exception() is not None
                ):
                    lost.extend(work[start:end])
            candidates = [describe_item(item) for item in lost]
            named = ", ".join(candidates[:_MAX_NAMED_CANDIDATES])
            if len(candidates) > _MAX_NAMED_CANDIDATES:
                named += f", ... ({len(candidates) - _MAX_NAMED_CANDIDATES} more)"
            raise WorkerCrashError(
                f"a worker process died while executing {len(lost)} of "
                f"{len(work)} item(s); the crashing scenario is one of: {named}",
                candidates=candidates,
            ) from exc
    finally:
        # Reached on early consumer exit (abandoned streaming iterator),
        # KeyboardInterrupt, or a worker crash: drop whatever has not started.
        for future in futures:
            future.cancel()


class Executor(Protocol):
    """The executor interface the Engine dispatches through.

    ``map`` is the only required method.  The built-in executors also provide
    ``imap`` (lazy input-order iteration, used for streaming when present)
    and ``close()``; the Engine degrades gracefully when a custom executor
    offers neither.
    """

    jobs: int

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Apply ``fn`` to every item, returning results in input order."""
        ...


class SerialExecutor:
    """Run every item in-process, one after another (the default)."""

    jobs = 1

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        return [fn(item) for item in items]

    def imap(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> Iterator[Any]:
        """Lazy serial iteration: each result is computed as it is consumed."""
        for item in items:
            yield fn(item)

    def close(self) -> None:
        """Nothing to release; present so every executor is closable."""

    def __repr__(self) -> str:
        return "SerialExecutor()"


def _validated(jobs: int | None, chunk_multiplier: int) -> tuple[int, int]:
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be at least 1, got {jobs}")
    if chunk_multiplier < 1:
        raise ConfigurationError(
            f"chunk_multiplier must be at least 1, got {chunk_multiplier}"
        )
    return jobs or (os.cpu_count() or 1), chunk_multiplier


class ParallelExecutor:
    """The *cold* pool: a fresh process pool per ``map``/``imap`` call.

    Every call spawns a :class:`~concurrent.futures.ProcessPoolExecutor`,
    fans the items out in chunks, and tears the pool down again — paying
    worker startup (interpreter + library import under ``spawn``) on every
    call.  :class:`WorkerPool` amortises exactly that cost; this executor is
    kept as the per-call baseline the throughput benchmarks compare against,
    and for one-shot workloads where keeping processes alive is undesirable.

    Results come back in input order, so a parallel sweep produces
    byte-identical rows to a serial one for the same seeds.  Work smaller
    than two items short-circuits to the serial path — no pool is spawned
    just to run one simulation.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        chunk_multiplier: int = DEFAULT_CHUNK_MULTIPLIER,
        start_method: str | None = None,
    ) -> None:
        self.jobs, self._chunk_multiplier = _validated(jobs, chunk_multiplier)
        self._start_method = start_method or POOL_START_METHOD

    def _chunksize(self, total: int) -> int:
        return max(1, total // (self.jobs * self._chunk_multiplier))

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        return list(self.imap(fn, items))

    def imap(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> Iterator[Any]:
        """Yield results in input order from a pool that lives for this call."""
        work: Sequence[Any] = list(items)
        if len(work) < 2 or self.jobs == 1:
            for item in work:
                yield fn(item)
            return
        context = multiprocessing.get_context(self._start_method)
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(work)), mp_context=context
        ) as pool:
            yield from _dispatch_chunks(pool, fn, work, self._chunksize(len(work)))

    def close(self) -> None:
        """Nothing persistent to release (each call owns its own pool)."""

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


class WorkerPool:
    """The *warm* pool: one persistent process pool across every call.

    The pool is spawned lazily on the first call that actually needs it, each
    worker runs :func:`_warm_worker` exactly once (interpreter startup plus
    the library import happen per worker lifetime, not per call), and the
    same workers then serve every subsequent ``map``/``imap`` until
    :meth:`close`.  An :class:`~repro.runtime.engine.Engine` built with
    ``jobs=N`` owns one of these, so successive ``run`` / ``run_many`` /
    ``run_sweep`` calls — a whole experiment session — share the warm pool.

    Lifecycle: use as a context manager or call :meth:`close` (idempotent);
    a call after ``close`` lazily spawns a fresh pool.  If a worker dies the
    resulting :class:`~repro.errors.WorkerCrashError` names the in-flight
    scenarios and the broken pool is discarded, so the next call starts from
    a clean (re-spawned) pool instead of failing forever.

    Dispatch is chunked exactly like :class:`ParallelExecutor` — one task
    carries a list of items — and results always come back in input order.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        chunk_multiplier: int = DEFAULT_CHUNK_MULTIPLIER,
        start_method: str | None = None,
        warmup: Callable[[], None] | None = _warm_worker,
    ) -> None:
        self.jobs, self._chunk_multiplier = _validated(jobs, chunk_multiplier)
        self._start_method = start_method or POOL_START_METHOD
        self._warmup = warmup
        self._pool: ProcessPoolExecutor | None = None
        #: One line per pool crash over this executor's lifetime ("attempt N:
        #: cause"); folded into every WorkerCrashError so repeated respawn-
        #: and-crash cycles are diagnosable from the last log line alone.
        self.crash_history: list[str] = []

    # -- lifecycle -----------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the pool processes are currently spawned."""
        return self._pool is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context(self._start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=context,
                initializer=self._warmup,
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent; a later call re-spawns lazily)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        # Engines are often created without an explicit with-block; make sure
        # an abandoned pool's workers do not outlive the owning object.
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch ------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        return list(self.imap(fn, items))

    def imap(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> Iterator[Any]:
        """Yield results in input order as dispatch chunks complete."""
        work: Sequence[Any] = list(items)
        if len(work) < 2 or self.jobs == 1:
            # Too little work to be worth shipping out — but if the pool is
            # already warm it is cheaper than computing in the (busy) parent.
            if self._pool is None:
                for item in work:
                    yield fn(item)
                return
        pool = self._ensure_pool()
        try:
            yield from _dispatch_chunks(pool, fn, work, self._chunksize(len(work)))
        except WorkerCrashError as exc:
            # The pool is broken beyond this call; discard it so the next
            # call re-spawns instead of re-raising BrokenProcessPool forever.
            broken, self._pool = self._pool, None
            if broken is not None:
                broken.shutdown(wait=False, cancel_futures=True)
            # Fold this pool generation's crash into the lifetime history and
            # re-raise carrying it, so the caller's log shows every respawn-
            # and-crash cycle, not just the last one.
            sample = exc.candidates[0] if exc.candidates else "unknown item"
            self.crash_history.append(
                f"attempt {len(self.crash_history) + 1}: pool died on one of "
                f"{len(exc.candidates)} in-flight item(s) (e.g. {sample})"
            )
            raise WorkerCrashError(
                str(exc),
                candidates=exc.candidates,
                history=self.crash_history,
            ) from exc

    def _chunksize(self, total: int) -> int:
        return max(1, total // (self.jobs * self._chunk_multiplier))

    def __repr__(self) -> str:
        state = "warm" if self.alive else "idle"
        return f"WorkerPool(jobs={self.jobs}, {state})"


def executor_for(
    jobs: int | None,
    *,
    chunk_multiplier: int | None = None,
    pool: str = "warm",
) -> Executor:
    """Pick an executor: ``jobs`` ≤ 1 (or ``None``) → serial; else a pool.

    ``pool`` selects the pool flavour for ``jobs`` > 1: ``"warm"`` (default)
    is the persistent :class:`WorkerPool`, ``"cold"`` the per-call
    :class:`ParallelExecutor`.  ``chunk_multiplier`` (≥ 1) tunes how many
    dispatch chunks each worker gets per call; it is validated here so a bad
    value fails at construction, not mid-sweep.
    """
    if pool not in ("warm", "cold"):
        raise ConfigurationError(f"unknown pool mode {pool!r}; expected 'warm' or 'cold'")
    if chunk_multiplier is not None and chunk_multiplier < 1:
        raise ConfigurationError(
            f"chunk_multiplier must be at least 1, got {chunk_multiplier}"
        )
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    kwargs: dict[str, Any] = {}
    if chunk_multiplier is not None:
        kwargs["chunk_multiplier"] = chunk_multiplier
    if pool == "cold":
        return ParallelExecutor(jobs, **kwargs)
    return WorkerPool(jobs, **kwargs)
