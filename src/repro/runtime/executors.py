"""Pluggable executors: how the Engine maps work over configurations.

Executors only need one method — ``map(fn, items) -> list`` — returning the
results *in input order*, which is what keeps serial and parallel runs
row-for-row identical (every item carries its own seed; nothing depends on
completion order).

``fn`` and the items must be picklable for :class:`ParallelExecutor`
(module-level functions and plain-data configs/specs are; closures are not —
keep per-run lambdas inside the worker function).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Protocol, Sequence

from ..errors import ConfigurationError

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "executor_for"]


class Executor(Protocol):
    """The executor interface the Engine dispatches through."""

    jobs: int

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Apply ``fn`` to every item, returning results in input order."""
        ...


class SerialExecutor:
    """Run every item in-process, one after another (the default)."""

    jobs = 1

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        return [fn(item) for item in items]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan items out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Results still come back in input order (``pool.map`` preserves it), so a
    parallel sweep produces byte-identical rows to a serial one for the same
    seeds.  Work smaller than two items short-circuits to the serial path —
    no pool is spawned just to run one simulation.
    """

    def __init__(self, jobs: int | None = None, *, chunk_multiplier: int = 4) -> None:
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"jobs must be at least 1, got {jobs}")
        self.jobs = jobs or (os.cpu_count() or 1)
        self._chunk_multiplier = max(1, chunk_multiplier)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        work: Sequence[Any] = list(items)
        if len(work) < 2 or self.jobs == 1:
            return [fn(item) for item in work]
        chunksize = max(1, len(work) // (self.jobs * self._chunk_multiplier))
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(work))) as pool:
            return list(pool.map(fn, work, chunksize=chunksize))

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


def executor_for(jobs: int | None) -> Executor:
    """``jobs`` ≤ 1 (or ``None``) → serial; otherwise a process pool."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(jobs)
