"""Declarative, serializable scenario descriptions.

A :class:`ScenarioSpec` is a complete run configuration expressed as plain
data: the membership shape, the timing model, the crash schedule, the detector
stack, the workload (a consensus algorithm, a detector implementation, or both
stacked), property checks, the horizon, and the seed.  Because every part is
data — not callables — a spec can be serialized (``to_dict``/``from_dict``
round-trip exactly), shipped to a worker process by the
:class:`~repro.runtime.engine.ParallelExecutor`, stored in JSONL run logs, and
diffed between experiments.

Specs are usually built with the fluent
:func:`~repro.runtime.builder.scenario` builder, which also validates the
combination against the paper's requirement table.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from ..errors import ConfigurationError
from ..identity import ProcessId
from ..membership import (
    Membership,
    anonymous_identities,
    grouped_identities,
    random_identities,
    unique_identities,
)
from ..sim.failures import CrashSchedule
from ..topology import MonitoringTopology, build_topology
from ..sim.timing import (
    AsynchronousTiming,
    PartiallySynchronousTiming,
    SynchronousTiming,
    TimingModel,
)
from ..workloads.crashes import (
    cascading_crashes,
    crash_fraction,
    leader_targeted_crashes,
    minority_crashes,
)
from ..workloads.homonymy import membership_with_distinct_ids

__all__ = [
    "canonical_spec_hash",
    "MembershipSpec",
    "TimingSpec",
    "CrashSpec",
    "DetectorSpec",
    "KVSpec",
    "NetworkSpec",
    "TopologySpec",
    "ScenarioSpec",
    "full_mesh",
    "ring",
    "gossip",
    "asynchronous",
    "partial_sync",
    "synchronous",
    "no_crashes",
    "minority",
    "cascading",
    "leaders",
    "fraction",
    "crashes_at",
    "reliable",
    "lossy",
    "duplicating",
    "jittered",
    "asymmetric",
    "partitioned",
    "composed",
]


def _clean(params: Mapping[str, Any] | None) -> dict[str, Any]:
    """Copy a parameter mapping, dropping ``None`` values (the defaults)."""
    return {key: value for key, value in (params or {}).items() if value is not None}


def canonical_spec_hash(
    spec: "ScenarioSpec | Mapping[str, Any]", *, include_seed: bool = False
) -> str:
    """A stable content hash of a scenario, for digest-keyed run caching.

    The hash is SHA-256 over the spec's canonical JSON form (sorted keys), so
    two specs that serialize identically — however they were built — hash
    identically, and *any* edit to the scenario (membership, timing, crashes,
    network, detectors, workload, checks, horizon) changes the hash and
    invalidates cached runs.  The ``seed`` is excluded by default because the
    run cache keys on ``(spec hash, seed)`` — one hash addresses a whole
    repetition family; pass ``include_seed=True`` for a fully-closed key.
    """
    payload = dict(spec.to_dict() if isinstance(spec, ScenarioSpec) else spec)
    if not include_seed:
        payload.pop("seed", None)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Membership
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MembershipSpec:
    """The homonymy pattern, as data.

    ``kind`` selects the generator:

    =================  ====================================================
    ``distinct_ids``   ``n`` processes over ``distinct`` identifiers
    ``groups``         explicit homonymy group sizes (``[3, 3, 2]``)
    ``unique``         classical system, all identifiers distinct
    ``anonymous``      every process shares one identifier
    ``random``         identifiers drawn from a bounded domain
    ``explicit``       a literal identifier list (``["A", "A", "B"]``)
    =================  ====================================================
    """

    kind: str
    n: int | None = None
    distinct: int | None = None
    groups: tuple[int, ...] | None = None
    identities: tuple[Any, ...] | None = None
    domain_size: int | None = None
    seed: int | None = None
    prefix: str | None = None

    def build(self) -> Membership:
        """Materialise the membership object."""
        prefix = {} if self.prefix is None else {"prefix": self.prefix}
        if self.kind == "distinct_ids":
            return membership_with_distinct_ids(self.n, self.distinct, **prefix)
        if self.kind == "groups":
            return grouped_identities(list(self.groups), **prefix)
        if self.kind == "unique":
            return unique_identities(self.n, **prefix)
        if self.kind == "anonymous":
            return anonymous_identities(self.n)
        if self.kind == "random":
            return random_identities(
                self.n, domain_size=self.domain_size, seed=self.seed or 0, **prefix
            )
        if self.kind == "explicit":
            return Membership.of(list(self.identities))
        raise ConfigurationError(f"unknown membership kind {self.kind!r}")

    @property
    def size(self) -> int:
        """The number of processes the spec describes."""
        if self.kind == "groups":
            return sum(self.groups)
        if self.kind == "explicit":
            return len(self.identities)
        if self.n is None:
            raise ConfigurationError(f"membership kind {self.kind!r} needs n")
        return self.n

    def to_dict(self) -> dict:
        payload: dict[str, Any] = {"kind": self.kind}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name != "kind" and value is not None:
                payload[spec_field.name] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MembershipSpec":
        data = dict(payload)
        for key in ("groups", "identities"):
            if data.get(key) is not None:
                data[key] = tuple(data[key])
        return cls(**data)


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------
_TIMING_CLASSES: dict[str, type[TimingModel]] = {
    "asynchronous": AsynchronousTiming,
    "partial_sync": PartiallySynchronousTiming,
    "synchronous": SynchronousTiming,
}


@dataclass(frozen=True)
class TimingSpec:
    """A timing model as data: a kind plus its constructor parameters."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _TIMING_CLASSES:
            raise ConfigurationError(
                f"unknown timing kind {self.kind!r}; "
                f"expected one of {sorted(_TIMING_CLASSES)}"
            )
        object.__setattr__(self, "params", dict(self.params))

    def build(self) -> TimingModel:
        return _TIMING_CLASSES[self.kind](**self.params)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TimingSpec":
        return cls(kind=payload["kind"], params=dict(payload.get("params", {})))


def asynchronous(*, min_latency: float = 0.1, max_latency: float = 2.0, **extra) -> TimingSpec:
    """Reliable asynchronous links (the consensus experiments' default)."""
    return TimingSpec(
        "asynchronous",
        {"min_latency": min_latency, "max_latency": max_latency, **_clean(extra)},
    )


def partial_sync(
    gst: float,
    delta: float,
    *,
    min_latency: float = 0.1,
    pre_gst_loss: float | None = None,
    pre_gst_max_latency: float | None = None,
    max_step: float | None = None,
) -> TimingSpec:
    """Partially synchronous processes, eventually timely links (HPS)."""
    return TimingSpec(
        "partial_sync",
        {
            "gst": gst,
            "delta": delta,
            "min_latency": min_latency,
            **_clean(
                {
                    "pre_gst_loss": pre_gst_loss,
                    "pre_gst_max_latency": pre_gst_max_latency,
                    "max_step": max_step,
                }
            ),
        },
    )


def synchronous(step: float = 1.0, *, delivery_fraction: float | None = None) -> TimingSpec:
    """Lock-step synchronous rounds (HSS)."""
    return TimingSpec(
        "synchronous",
        {"step": step, **_clean({"delivery_fraction": delivery_fraction})},
    )


# ----------------------------------------------------------------------
# Crashes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashSpec:
    """A crash schedule as data, resolved against the membership at run time."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    def build(self, membership: Membership) -> CrashSchedule:
        params = dict(self.params)
        if self.kind == "none":
            return CrashSchedule.none()
        if self.kind == "minority":
            return minority_crashes(membership, **params)
        if self.kind == "cascading":
            count = min(params.pop("count"), membership.size - 1)
            return cascading_crashes(membership, count, **params)
        if self.kind == "leaders":
            count = params.pop("count", None)
            if count is None:
                count = max(1, (membership.size - 1) // 2)
            return leader_targeted_crashes(membership, count, **params)
        if self.kind == "fraction":
            return crash_fraction(membership, params.pop("fraction"), **params)
        if self.kind == "at_times":
            times = {
                ProcessId(int(index)): when
                for index, when in params.get("times", {}).items()
            }
            return CrashSchedule.at_times(times)
        raise ConfigurationError(f"unknown crash kind {self.kind!r}")

    def worst_case_faulty(self, n: int) -> int:
        """An upper bound on the number of crashes, for validation."""
        params = self.params
        if self.kind == "none":
            return 0
        if self.kind == "minority":
            count = params.get("count")
            return (n - 1) // 2 if count is None else min(count, n - 1)
        if self.kind == "cascading":
            return min(params["count"], n - 1)
        if self.kind == "leaders":
            count = params.get("count")
            return max(1, (n - 1) // 2) if count is None else min(count, n - 1)
        if self.kind == "fraction":
            return min(int(round(params["fraction"] * n)), n - 1)
        if self.kind == "at_times":
            return len(params.get("times", {}))
        raise ConfigurationError(f"unknown crash kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CrashSpec":
        params = dict(payload.get("params", {}))
        if payload["kind"] == "at_times" and "times" in params:
            # JSON turns the integer process indices into strings; undo that.
            params["times"] = {int(index): when for index, when in params["times"].items()}
        return cls(kind=payload["kind"], params=params)


def no_crashes() -> CrashSpec:
    """No process ever crashes."""
    return CrashSpec("none")


def minority(
    *, at: float = 10.0, stagger: float = 2.0, count: int | None = None
) -> CrashSpec:
    """Crash a minority (the largest one unless ``count`` is given)."""
    return CrashSpec("minority", _clean({"at": at, "stagger": stagger, "count": count}))


def cascading(
    count: int,
    *,
    first_at: float = 5.0,
    interval: float = 10.0,
    partial_broadcast_fraction: float | None = None,
) -> CrashSpec:
    """Crash ``count`` processes one after another (capped at ``n − 1``)."""
    return CrashSpec(
        "cascading",
        {
            "count": count,
            "first_at": first_at,
            "interval": interval,
            **_clean({"partial_broadcast_fraction": partial_broadcast_fraction}),
        },
    )


def leaders(count: int | None = None, *, at: float = 10.0, stagger: float = 2.0) -> CrashSpec:
    """Crash the likely leaders (smallest identifiers) first."""
    return CrashSpec("leaders", _clean({"count": count, "at": at, "stagger": stagger}))


def fraction(value: float, *, at: float = 10.0, stagger: float = 2.0, seed: int = 0) -> CrashSpec:
    """Crash a random fraction of the processes."""
    return CrashSpec("fraction", {"fraction": value, "at": at, "stagger": stagger, "seed": seed})


def crashes_at(times: Mapping[int, float]) -> CrashSpec:
    """Crash explicit process indices at explicit times."""
    return CrashSpec("at_times", {"times": {int(k): v for k, v in times.items()}})


# ----------------------------------------------------------------------
# Network (link models)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetworkSpec:
    """A link model as data: a ``LINKS`` registry name plus its parameters.

    The default (``kind="reliable"``) reproduces the historical network: every
    copy delivered exactly once at the timing model's draw.  Other kinds add
    loss, duplication, jitter, per-direction latency penalties, or timed
    partitions — see the helper constructors below and the
    :data:`~repro.runtime.registry.LINKS` registry.
    """

    kind: str = "reliable"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    @property
    def is_reliable(self) -> bool:
        """Whether this is the default (identity) link model."""
        return self.kind == "reliable"

    def build(self):
        """Materialise the :class:`~repro.sim.links.LinkModel`."""
        from .registry import build_link_model  # deferred: registry is heavyweight

        return build_link_model(self.kind, self.params)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NetworkSpec":
        return cls(kind=payload.get("kind", "reliable"), params=dict(payload.get("params", {})))


def reliable() -> NetworkSpec:
    """Every copy delivered exactly once at the timing model's draw (the default)."""
    return NetworkSpec("reliable")


def lossy(loss: float, *, start: float = 0.0, end: float | None = None) -> NetworkSpec:
    """Drop each copy with probability ``loss`` while ``start <= send < end``."""
    return NetworkSpec("lossy", {"loss": loss, **_clean({"start": start or None, "end": end})})


def duplicating(
    probability: float,
    *,
    copies: int = 2,
    spread: float = 0.0,
    start: float = 0.0,
    end: float | None = None,
) -> NetworkSpec:
    """Duplicate each copy with the given probability (``copies`` total arrivals)."""
    return NetworkSpec(
        "duplicating",
        {
            "probability": probability,
            "copies": copies,
            **_clean({"spread": spread or None, "start": start or None, "end": end}),
        },
    )


def jittered(max_jitter: float, *, start: float = 0.0, end: float | None = None) -> NetworkSpec:
    """Add ``uniform(0, max_jitter)`` to every copy's delivery time (reordering)."""
    return NetworkSpec(
        "jitter", {"max_jitter": max_jitter, **_clean({"start": start or None, "end": end})}
    )


def asymmetric(extra: Mapping[str, float], *, default: float = 0.0) -> NetworkSpec:
    """Per-direction latency penalties: ``{"0->1": 5.0}`` keyed by process indices."""
    return NetworkSpec("asymmetric", {"extra": dict(extra), "default": default})


def partitioned(*windows: Mapping[str, Any]) -> NetworkSpec:
    """Timed partitions with heal events.

    Each window is ``{"start": t0, "end": t1, "groups": [[0, 1], [2, 3, 4]]}``;
    ``end=None`` never heals.  Copies *sent* across a cut during its window
    are lost (copies already on the wire when the cut starts still arrive).
    """
    return NetworkSpec("partitioned", {"partitions": [dict(window) for window in windows]})


def composed(*stages: NetworkSpec) -> NetworkSpec:
    """Chain several link models; each stage transforms the previous output."""
    return NetworkSpec("compose", {"stages": [stage.to_dict() for stage in stages]})


# ----------------------------------------------------------------------
# Monitoring topology
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """The monitoring topology (who monitors whom), as data.

    The default (``kind="full_mesh"``) reproduces the historical implicit
    all-to-all monitoring; :meth:`ScenarioSpec.to_dict` omits the section
    entirely in that case so pre-topology canonical hashes (and hence run-cache
    keys) are preserved.  ``ring`` and ``gossip`` select the sparse O(n·k)
    designs in :mod:`repro.topology`; the builder only accepts them for
    programs that declare themselves topology-aware.
    """

    kind: str = "full_mesh"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        # Fail at construction, not at run time, on an unknown kind or bad
        # parameters (build_topology validates both).
        self.build()

    @property
    def is_full_mesh(self) -> bool:
        """Whether this is the default (historical all-to-all) topology."""
        return self.kind == "full_mesh"

    @property
    def is_default(self) -> bool:
        """Whether the spec serializes to nothing (full mesh, no parameters)."""
        return self.is_full_mesh and not self.params

    def build(self) -> MonitoringTopology:
        """Materialise the :class:`~repro.topology.MonitoringTopology`."""
        return build_topology(self.kind, self.params)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TopologySpec":
        return cls(
            kind=payload.get("kind", "full_mesh"), params=dict(payload.get("params", {}))
        )


def full_mesh() -> TopologySpec:
    """Every process monitors every other process (the historical default)."""
    return TopologySpec("full_mesh")


def ring(successors: int = 3) -> TopologySpec:
    """Each process monitors its ``successors`` next peers in ring order."""
    return TopologySpec("ring", {"successors": successors})


def gossip(fanout: int = 3) -> TopologySpec:
    """Heartbeat counters diffused to ``fanout`` seeded-random peers per period."""
    return TopologySpec("gossip", {"fanout": fanout})


# ----------------------------------------------------------------------
# Detectors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DetectorSpec:
    """One detector attachment: a registry name plus oracle parameters."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DetectorSpec":
        return cls(name=payload["name"], params=dict(payload.get("params", {})))


# ----------------------------------------------------------------------
# The replicated KV service workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KVSpec:
    """The replicated KV service workload, as data.

    The scenario's *membership* describes the replica group (homonymy and all);
    ``clients`` extra uniquely-named client processes are added by the KV
    runner.  ``consensus`` names the registry algorithm driving each log slot.
    ``loop`` selects closed- (``think_time``) or open-loop (``rate``) traffic,
    ``skew`` the key popularity (``uniform`` or ``zipf`` with exponent
    ``zipf_s``), and ``read_mode`` whether GETs are serialized through the log
    (linearizable) or answered from the local store (fast, possibly stale).
    """

    clients: int = 4
    ops_per_client: int = 6
    consensus: str = "homega_majority"
    consensus_params: Mapping[str, Any] = field(default_factory=dict)
    loop: str = "closed"
    think_time: float = 2.0
    rate: float = 0.5
    key_space: int = 8
    skew: str = "uniform"
    zipf_s: float = 1.2
    read_mode: str = "log"
    mix: Mapping[str, float] | None = None
    sync_period: float = 10.0
    max_slots: int = 4096

    def __post_init__(self) -> None:
        object.__setattr__(self, "consensus_params", dict(self.consensus_params))
        if self.mix is not None:
            object.__setattr__(self, "mix", dict(self.mix))
        if self.clients < 1:
            raise ConfigurationError("a KV workload needs at least one client")
        if self.ops_per_client < 0:
            raise ConfigurationError("ops_per_client must be non-negative")
        if self.loop not in ("closed", "open"):
            raise ConfigurationError(f"kv loop must be 'closed' or 'open', got {self.loop!r}")
        if self.skew not in ("uniform", "zipf"):
            raise ConfigurationError(f"kv skew must be 'uniform' or 'zipf', got {self.skew!r}")
        if self.read_mode not in ("log", "local"):
            raise ConfigurationError(
                f"kv read_mode must be 'log' or 'local', got {self.read_mode!r}"
            )

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "ops_per_client": self.ops_per_client,
            "consensus": self.consensus,
            "consensus_params": dict(self.consensus_params),
            "loop": self.loop,
            "think_time": self.think_time,
            "rate": self.rate,
            "key_space": self.key_space,
            "skew": self.skew,
            "zipf_s": self.zipf_s,
            "read_mode": self.read_mode,
            "mix": dict(self.mix) if self.mix is not None else None,
            "sync_period": self.sync_period,
            "max_slots": self.max_slots,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "KVSpec":
        defaults = cls()
        return cls(
            clients=payload.get("clients", defaults.clients),
            ops_per_client=payload.get("ops_per_client", defaults.ops_per_client),
            consensus=payload.get("consensus", defaults.consensus),
            consensus_params=dict(payload.get("consensus_params", {})),
            loop=payload.get("loop", defaults.loop),
            think_time=payload.get("think_time", defaults.think_time),
            rate=payload.get("rate", defaults.rate),
            key_space=payload.get("key_space", defaults.key_space),
            skew=payload.get("skew", defaults.skew),
            zipf_s=payload.get("zipf_s", defaults.zipf_s),
            read_mode=payload.get("read_mode", defaults.read_mode),
            mix=payload.get("mix"),
            sync_period=payload.get("sync_period", defaults.sync_period),
            max_slots=payload.get("max_slots", defaults.max_slots),
        )


# ----------------------------------------------------------------------
# The full scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable run configuration (see the module docstring).

    ``consensus`` and ``program`` name registry entries
    (:mod:`repro.runtime.registry`); when both are set the program is stacked
    *under* the consensus algorithm on every process, which is how the E8
    oracle-free configuration is expressed.  ``checks`` names detector
    property checkers evaluated over the finished trace.

    ``network`` selects the link model (loss, duplication, jitter, partitions;
    default: reliable links).  ``adversarial=True`` acknowledges that the
    scenario runs *outside* the paper's guarantees (e.g. post-GST loss in an
    HPS system); the builder rejects such combinations without it.
    """

    membership: MembershipSpec
    timing: TimingSpec = field(default_factory=asynchronous)
    crashes: CrashSpec = field(default_factory=no_crashes)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    adversarial: bool = False
    detectors: tuple[DetectorSpec, ...] = ()
    consensus: str | None = None
    consensus_params: Mapping[str, Any] = field(default_factory=dict)
    program: str | None = None
    program_params: Mapping[str, Any] = field(default_factory=dict)
    checks: tuple[str, ...] = ()
    kv: KVSpec | None = None
    topology: TopologySpec = field(default_factory=TopologySpec)
    backend: str = "sim"
    backend_params: Mapping[str, Any] = field(default_factory=dict)
    horizon: float = 500.0
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "detectors", tuple(self.detectors))
        object.__setattr__(self, "checks", tuple(self.checks))
        object.__setattr__(self, "consensus_params", dict(self.consensus_params))
        object.__setattr__(self, "program_params", dict(self.program_params))
        object.__setattr__(self, "backend_params", dict(self.backend_params))
        if self.backend not in ("sim", "real"):
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected 'sim' or 'real'"
            )

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """A copy of this spec with a different seed (for sweeps)."""
        return ScenarioSpec.from_dict({**self.to_dict(), "seed": seed})

    def canonical_hash(self, *, include_seed: bool = False) -> str:
        """This spec's content hash (see :func:`canonical_spec_hash`)."""
        return canonical_spec_hash(self, include_seed=include_seed)

    def to_dict(self) -> dict:
        payload = {
            "membership": self.membership.to_dict(),
            "timing": self.timing.to_dict(),
            "crashes": self.crashes.to_dict(),
            "network": self.network.to_dict(),
            "adversarial": self.adversarial,
            "detectors": [detector.to_dict() for detector in self.detectors],
            "consensus": self.consensus,
            "consensus_params": dict(self.consensus_params),
            "program": self.program,
            "program_params": dict(self.program_params),
            "checks": list(self.checks),
            "horizon": self.horizon,
            "seed": self.seed,
            "name": self.name,
        }
        # Specs without a KV section serialize exactly as before this section
        # existed, so canonical hashes (and hence cache keys) are preserved.
        if self.kv is not None:
            payload["kv"] = self.kv.to_dict()
        # Same preservation rule for the backend: the sim default serializes
        # exactly as before the real backend existed.
        if self.backend != "sim" or self.backend_params:
            payload["backend"] = self.backend
            payload["backend_params"] = dict(self.backend_params)
        # And for the monitoring topology: the full-mesh default serializes
        # exactly as before the topology layer existed.
        if not self.topology.is_default:
            payload["topology"] = self.topology.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(
            membership=MembershipSpec.from_dict(payload["membership"]),
            timing=TimingSpec.from_dict(payload.get("timing", {"kind": "asynchronous"})),
            crashes=CrashSpec.from_dict(payload.get("crashes", {"kind": "none"})),
            network=NetworkSpec.from_dict(payload.get("network", {"kind": "reliable"})),
            adversarial=bool(payload.get("adversarial", False)),
            detectors=tuple(
                DetectorSpec.from_dict(entry) for entry in payload.get("detectors", ())
            ),
            consensus=payload.get("consensus"),
            consensus_params=dict(payload.get("consensus_params", {})),
            program=payload.get("program"),
            program_params=dict(payload.get("program_params", {})),
            checks=tuple(payload.get("checks", ())),
            kv=KVSpec.from_dict(payload["kv"]) if payload.get("kv") else None,
            topology=TopologySpec.from_dict(payload.get("topology", {})),
            backend=payload.get("backend", "sim"),
            backend_params=dict(payload.get("backend_params", {})),
            horizon=payload.get("horizon", 500.0),
            seed=payload.get("seed", 0),
            name=payload.get("name", ""),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))
