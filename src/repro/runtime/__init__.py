"""The library's front door: declarative scenarios, one engine, many cores.

``repro.runtime`` is the single entry point every workload flows through —
simulations, parameter sweeps, and the experiments of EXPERIMENTS.md::

    from repro.runtime import Engine, scenario, partial_sync, cascading

    spec = (
        scenario("any-failures")
        .processes(8).homonyms([3, 3, 2])
        .crashes(cascading(5, first_at=6.0, interval=4.0))
        .detectors("HOmega", "HSigma", stabilization=20.0)
        .consensus("homega_hsigma")
        .horizon(700.0).seed(7)
        .build()
    )
    record = Engine().run(spec)                  # one run
    records = Engine(jobs=4).run_many(           # a multi-core sweep
        spec.with_seed(s) for s in range(32)
    )

The pieces:

* :mod:`~repro.runtime.spec` — :class:`ScenarioSpec` and its serializable
  parts (membership shape, timing, crashes, detectors), with
  ``to_dict``/``from_dict`` round-tripping;
* :mod:`~repro.runtime.builder` — the fluent :func:`scenario` builder, which
  validates combinations against the paper's requirement table;
* :mod:`~repro.runtime.registry` — name → component registries for
  detectors, consensus algorithms, programs, property checks, and
  experiments;
* :mod:`~repro.runtime.engine` — the :class:`Engine`, :class:`RunRecord`,
  and the module-level :func:`execute_spec` worker entry point;
* :mod:`~repro.runtime.executors` — :class:`SerialExecutor`, the persistent
  warm :class:`WorkerPool`, and the per-call (cold) :class:`ParallelExecutor`;
* :mod:`~repro.runtime.cache` — the digest-keyed :class:`RunCache` that
  memoizes completed runs on ``(canonical-spec-hash, seed)``.
"""

from ..analysis.runner import ParameterSweep
from .builder import ScenarioBuilder, ScenarioValidationError, scenario, validate_spec
from .cache import RunCache
from .engine import (
    Engine,
    RunRecord,
    default_consensus_detectors,
    distinct_proposals,
    execute_spec,
    run_once,
    run_with_digest_capture,
)
from .executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    WorkerPool,
    executor_for,
)
from .registry import (
    CHECKS,
    CONSENSUS,
    DETECTORS,
    EXPERIMENTS,
    LINKS,
    PROGRAMS,
    Registry,
    build_link_model,
    register_check,
    register_consensus,
    register_detector,
    register_experiment,
    register_link,
    register_program,
)
from .spec import (
    CrashSpec,
    DetectorSpec,
    KVSpec,
    MembershipSpec,
    NetworkSpec,
    ScenarioSpec,
    TimingSpec,
    TopologySpec,
    canonical_spec_hash,
    asymmetric,
    asynchronous,
    cascading,
    composed,
    crashes_at,
    duplicating,
    fraction,
    full_mesh,
    gossip,
    jittered,
    leaders,
    lossy,
    minority,
    no_crashes,
    partial_sync,
    partitioned,
    reliable,
    ring,
    synchronous,
)

__all__ = [
    "CHECKS",
    "CONSENSUS",
    "CrashSpec",
    "DETECTORS",
    "DetectorSpec",
    "EXPERIMENTS",
    "Engine",
    "Executor",
    "KVSpec",
    "LINKS",
    "MembershipSpec",
    "NetworkSpec",
    "PROGRAMS",
    "ParallelExecutor",
    "ParameterSweep",
    "Registry",
    "RunCache",
    "RunRecord",
    "ScenarioBuilder",
    "ScenarioSpec",
    "ScenarioValidationError",
    "SerialExecutor",
    "TimingSpec",
    "TopologySpec",
    "WorkerPool",
    "asymmetric",
    "asynchronous",
    "build_link_model",
    "canonical_spec_hash",
    "cascading",
    "composed",
    "crashes_at",
    "default_consensus_detectors",
    "distinct_proposals",
    "duplicating",
    "execute_spec",
    "executor_for",
    "fraction",
    "full_mesh",
    "gossip",
    "jittered",
    "leaders",
    "lossy",
    "minority",
    "no_crashes",
    "partial_sync",
    "partitioned",
    "register_check",
    "register_consensus",
    "register_detector",
    "register_experiment",
    "register_link",
    "register_program",
    "reliable",
    "ring",
    "run_once",
    "run_with_digest_capture",
    "scenario",
    "synchronous",
    "validate_spec",
]
