"""Fluent construction of validated :class:`ScenarioSpec` objects.

The builder is the ergonomic way to author scenarios::

    spec = (
        scenario("figure9-demo")
        .processes(8)
        .homonyms([3, 3, 2])
        .timing(partial_sync(gst=30.0, delta=1.0))
        .crashes(cascading(5))
        .detectors("HOmega", "HSigma", stabilization=20.0)
        .consensus("homega_hsigma")
        .horizon(700.0)
        .seed(7)
        .build()
    )

``build()`` validates the combination against the paper's requirement table
before returning the (immutable, serializable) spec:

* every detector class the chosen consensus algorithm queries must be
  attached — either as an oracle or published by a stacked implementation
  program (the E8 configuration);
* majority-based algorithms (Figure 8 and its baselines) reject crash
  schedules that can kill ``⌈n/2⌉`` or more processes (``t < n/2``);
* HΣ-based algorithms (Figure 9) accept any number of crashes;
* algorithms specialised to a homonymy extreme (the classical Ω and anonymous
  AΩ baselines) require the matching membership;
* implementation programs run in their system family only (Figure 6 needs
  partial synchrony, Figure 7 needs synchrony), and consensus algorithms are
  asynchronous-family programs, never synchronous ones;
* the network model must respect the declared family's link assumptions —
  HSS tolerates no link faults at all, HPS tolerates loss/duplication only
  before GST (eventually timely links), and HAS requires adversity that
  eventually heals; scenarios that deliberately step outside the guarantees
  (fault-envelope sweeps) must say so with ``.adversarial()``.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from ..errors import ConfigurationError
from .registry import CHECKS, CONSENSUS, LEADER_DETECTORS, PROGRAMS
from .spec import (
    CrashSpec,
    DetectorSpec,
    KVSpec,
    MembershipSpec,
    NetworkSpec,
    ScenarioSpec,
    TimingSpec,
    TopologySpec,
    no_crashes,
)

__all__ = ["scenario", "ScenarioBuilder", "ScenarioValidationError"]


class ScenarioValidationError(ConfigurationError):
    """A scenario combination contradicts the paper's requirement table."""


class ScenarioBuilder:
    """Accumulates scenario parts; ``build()`` validates and freezes them."""

    def __init__(self, name: str = "") -> None:
        self._name = name
        self._n: int | None = None
        # Shapes that need n are kept symbolic until build(), so the call
        # order of processes() and the shape method does not matter.
        self._shape: str | None = None
        self._shape_params: dict[str, Any] = {}
        self._membership: MembershipSpec | None = None
        self._timing: TimingSpec | None = None
        self._crashes: CrashSpec = no_crashes()
        self._network: NetworkSpec = NetworkSpec()
        self._adversarial: bool = False
        self._detectors: list[DetectorSpec] = []
        self._consensus: str | None = None
        self._consensus_params: dict[str, Any] = {}
        self._program: str | None = None
        self._program_params: dict[str, Any] = {}
        self._kv: KVSpec | None = None
        self._topology: TopologySpec = TopologySpec()
        self._checks: list[str] = []
        self._backend: str = "sim"
        self._backend_params: dict[str, Any] = {}
        self._horizon: float = 500.0
        self._seed: int = 0

    # -- membership ----------------------------------------------------
    def processes(self, n: int) -> "ScenarioBuilder":
        """Declare the system size ``n`` (combined with a shape method)."""
        self._n = n
        return self

    def homonyms(self, groups: Sequence[int]) -> "ScenarioBuilder":
        """Homonymy groups by size: ``[3, 3, 2]`` = 8 processes, 3 ids."""
        return self.membership(MembershipSpec("groups", groups=tuple(groups)))

    def distinct_ids(self, distinct: int) -> "ScenarioBuilder":
        """``n`` processes spread evenly over ``distinct`` identifiers."""
        return self._set_shape("distinct_ids", distinct=distinct)

    def unique_ids(self) -> "ScenarioBuilder":
        """All identifiers distinct (classical AS extreme)."""
        return self._set_shape("unique")

    def anonymous(self) -> "ScenarioBuilder":
        """One shared identifier (anonymous AAS extreme)."""
        return self._set_shape("anonymous")

    def identities(self, identities: Sequence[Any]) -> "ScenarioBuilder":
        """An explicit identifier list, e.g. ``["A", "A", "B"]``."""
        return self.membership(MembershipSpec("explicit", identities=tuple(identities)))

    def random_ids(self, *, domain_size: int, seed: int = 0) -> "ScenarioBuilder":
        """Identifiers drawn uniformly from a bounded domain."""
        return self._set_shape("random", domain_size=domain_size, seed=seed)

    def membership(self, spec: MembershipSpec) -> "ScenarioBuilder":
        """Use a pre-built membership spec."""
        self._membership = spec
        self._shape = None
        self._shape_params = {}
        return self

    def _set_shape(self, kind: str, **params: Any) -> "ScenarioBuilder":
        self._shape = kind
        self._shape_params = params
        self._membership = None
        return self

    # -- environment ---------------------------------------------------
    def timing(self, spec: TimingSpec) -> "ScenarioBuilder":
        """Set the timing model (see :func:`asynchronous`/:func:`partial_sync`/
        :func:`synchronous` in :mod:`repro.runtime.spec`)."""
        self._timing = spec
        return self

    def crashes(self, spec: CrashSpec) -> "ScenarioBuilder":
        """Set the crash schedule (see the crash helpers in the spec module)."""
        self._crashes = spec
        return self

    def network(self, spec: NetworkSpec) -> "ScenarioBuilder":
        """Set the link model (see :func:`lossy`/:func:`partitioned`/
        :func:`composed` and friends in :mod:`repro.runtime.spec`)."""
        self._network = spec
        return self

    def adversarial(self, value: bool = True) -> "ScenarioBuilder":
        """Acknowledge that the scenario runs outside the paper's guarantees.

        Required for network models that violate the declared system family's
        link assumptions (e.g. post-GST loss under HPS, never-healing loss
        under HAS): the run is still meaningful — that is what the E9
        fault-envelope sweep measures — but none of the paper's termination
        claims apply to it.
        """
        self._adversarial = value
        return self

    # -- detectors and workload ----------------------------------------
    def detectors(
        self,
        *detectors: str | DetectorSpec,
        stabilization: float | None = None,
        noise_period: float | None = 5.0,
    ) -> "ScenarioBuilder":
        """Attach detector oracles by name (or pre-built specs).

        ``stabilization`` applies to every named detector; ``noise_period``
        only to the leader-electing ones (Ω, AΩ, HΩ).
        """
        for detector in detectors:
            if isinstance(detector, DetectorSpec):
                self._detectors.append(detector)
                continue
            params: dict[str, Any] = {}
            if stabilization is not None:
                params["stabilization_time"] = stabilization
            if detector in LEADER_DETECTORS and noise_period is not None:
                params["noise_period"] = noise_period
            self._detectors.append(DetectorSpec(detector, params))
        return self

    def consensus(self, name: str, **params: Any) -> "ScenarioBuilder":
        """Select the consensus algorithm by registry name."""
        self._consensus = name
        self._consensus_params = params
        return self

    def program(self, name: str, **params: Any) -> "ScenarioBuilder":
        """Select a detector-implementation program by registry name.

        Combined with :meth:`consensus`, the program is stacked underneath
        the consensus algorithm on every process (the E8 configuration).
        """
        self._program = name
        self._program_params = params
        return self

    def kv(self, spec: KVSpec | None = None, **options: Any) -> "ScenarioBuilder":
        """Run the replicated KV service workload on this system.

        The scenario's membership describes the *replica group*; the KV runner
        adds the client processes.  Pass a pre-built :class:`KVSpec` or its
        keyword options (``clients``, ``ops_per_client``, ``consensus``,
        ``skew``, ``read_mode``, …).
        """
        if spec is not None and options:
            raise ScenarioValidationError(
                "pass either a pre-built KVSpec or keyword options, not both"
            )
        self._kv = spec if spec is not None else KVSpec(**options)
        return self

    def topology(self, spec: TopologySpec | str, **params: Any) -> "ScenarioBuilder":
        """Set the monitoring topology: who monitors whom.

        Pass a pre-built :class:`TopologySpec` (see :func:`full_mesh`,
        :func:`ring`, :func:`gossip` in :mod:`repro.runtime.spec`) or a kind
        name plus its parameters (``.topology("ring", successors=3)``).  The
        default is the historical full mesh; sparse topologies are only valid
        for programs that declare themselves topology-aware.
        """
        if isinstance(spec, TopologySpec):
            if params:
                raise ScenarioValidationError(
                    "pass either a pre-built TopologySpec or a kind name with "
                    "keyword parameters, not both"
                )
            self._topology = spec
        else:
            self._topology = TopologySpec(spec, params)
        return self

    def check(self, *names: str) -> "ScenarioBuilder":
        """Evaluate detector property checkers over the finished trace."""
        self._checks.extend(names)
        return self

    def backend(self, name: str, **params: Any) -> "ScenarioBuilder":
        """Select the execution backend: ``"sim"`` (default) or ``"real"``.

        ``"real"`` executes the scenario as N OS processes exchanging frames
        over TCP (:mod:`repro.transport`); ``params`` go to the orchestrator
        (``time_scale`` — wall seconds per scenario time unit, ``log_dir`` —
        keep the JSONL node logs there, ``settle``, ``fault_action``,
        ``keep_logs``).
        """
        self._backend = name
        self._backend_params = params
        return self

    # -- run control ---------------------------------------------------
    def horizon(self, horizon: float) -> "ScenarioBuilder":
        """Simulated-time bound for the run."""
        self._horizon = horizon
        return self

    def seed(self, seed: int) -> "ScenarioBuilder":
        """Root seed for every RNG stream of the run."""
        self._seed = seed
        return self

    # -- build ---------------------------------------------------------
    def build(self) -> ScenarioSpec:
        """Validate the combination and return the frozen spec."""
        if self._shape is not None:
            if self._n is None:
                raise ScenarioValidationError(
                    f"{self._shape} membership shapes need the system size: "
                    "call processes(n) as well"
                )
            membership_spec = MembershipSpec(self._shape, n=self._n, **self._shape_params)
        elif self._membership is not None:
            membership_spec = self._membership
            if self._n is not None and membership_spec.size != self._n:
                raise ScenarioValidationError(
                    f"processes({self._n}) contradicts the membership shape "
                    f"({membership_spec.size} processes)"
                )
        else:
            if self._n is None:
                raise ScenarioValidationError(
                    "a scenario needs a membership: call processes(n) plus a "
                    "shape method (homonyms/distinct_ids/unique_ids/anonymous)"
                )
            membership_spec = MembershipSpec("unique", n=self._n)

        timing_spec = self._timing or TimingSpec("asynchronous", {"min_latency": 0.1, "max_latency": 2.0})
        spec = ScenarioSpec(
            membership=membership_spec,
            timing=timing_spec,
            crashes=self._crashes,
            network=self._network,
            adversarial=self._adversarial,
            detectors=tuple(self._detectors),
            consensus=self._consensus,
            consensus_params=dict(self._consensus_params),
            program=self._program,
            program_params=dict(self._program_params),
            checks=tuple(self._checks),
            kv=self._kv,
            topology=self._topology,
            backend=self._backend,
            backend_params=dict(self._backend_params),
            horizon=self._horizon,
            seed=self._seed,
            name=self._name,
        )
        validate_spec(spec)
        return spec


def scenario(name: str = "") -> ScenarioBuilder:
    """Start a fluent scenario description (the library's front door)."""
    return ScenarioBuilder(name)


def _network_envelope_violation(spec: ScenarioSpec) -> str | None:
    """Why the network model breaks the declared family's link assumptions.

    Returns ``None`` when the combination is inside the paper's envelope:

    * ``HSS`` (synchronous) assumes every copy arrives inside its synchronous
      step — no loss, duplication, or extra delay of any kind;
    * ``HPS`` (partially synchronous) assumes *eventually timely* links —
      loss/duplication must stop by GST (extra finite delay is fine, because
      the paper's δ is unknown to the algorithms anyway);
    * ``HAS`` (asynchronous) assumes reliable links — adversity that never
      heals voids the termination guarantees.
    """
    if spec.network.is_reliable:
        return None
    model = spec.network.build()
    faults_until = model.unreliable_until()
    extra_delay = model.extra_delay_bound()
    if spec.timing.kind == "synchronous":
        if faults_until > 0 or extra_delay > 0:
            return (
                "an HSS system assumes reliable in-step delivery, but the "
                f"network model ({model.describe()}) can lose, duplicate, or "
                "delay copies"
            )
    elif spec.timing.kind == "partial_sync":
        gst = spec.timing.params.get("gst", 50.0)
        if faults_until > gst:
            until = "forever" if math.isinf(faults_until) else f"until t={faults_until}"
            return (
                "HPS guarantees assume eventually timely links (loss must stop "
                f"by GST={gst}), but the network model ({model.describe()}) "
                f"stays adversarial {until} — that is post-GST loss"
            )
    else:
        if math.isinf(faults_until):
            return (
                "HAS guarantees assume reliable links, but the network model "
                f"({model.describe()}) can lose or duplicate copies forever"
            )
    return None


def validate_spec(spec: ScenarioSpec) -> None:
    """Check a spec against the paper's requirement table (raises on error)."""
    if spec.consensus is None and spec.program is None and spec.kv is None:
        raise ScenarioValidationError(
            "a scenario needs a workload: pick a consensus algorithm, a "
            "detector-implementation program, a KV service (.kv()), or a "
            "stacked combination"
        )

    if not spec.topology.is_full_mesh:
        _validate_sparse_topology(spec)

    violation = _network_envelope_violation(spec)
    if violation is not None and not spec.adversarial:
        raise ScenarioValidationError(
            f"{violation}; the paper's guarantees do not cover this run — "
            "acknowledge it with .adversarial() to execute anyway"
        )

    if spec.backend == "real":
        _validate_real_backend(spec)

    membership = spec.membership.build()
    n = membership.size
    worst_faulty = spec.crashes.worst_case_faulty(n)

    provided = {detector.name for detector in spec.detectors}
    if spec.program is not None:
        program_entry = PROGRAMS.resolve(spec.program)
        published = program_entry.provides_detector(spec.program_params)
        if published:
            provided.add(published)
        if (
            program_entry.requires_timing is not None
            and spec.timing.kind != program_entry.requires_timing
        ):
            raise ScenarioValidationError(
                f"program {spec.program!r} ({program_entry.paper_item}) requires "
                f"{program_entry.requires_timing!r} timing, got {spec.timing.kind!r}"
            )

    for check in spec.checks:
        CHECKS.resolve(check)

    if spec.kv is not None:
        if spec.consensus is not None or spec.program is not None:
            raise ScenarioValidationError(
                "the KV workload owns the whole system: drop .consensus()/"
                ".program() and name the replication algorithm in the kv "
                "section (kv(consensus=...)) instead"
            )
        _validate_kv(spec, membership, n, worst_faulty, provided)
        return

    if spec.consensus is None:
        return

    entry = CONSENSUS.resolve(spec.consensus)
    if spec.timing.kind == "synchronous":
        raise ScenarioValidationError(
            "the consensus algorithms are asynchronous-family programs; "
            "a synchronous (HSS) timing model cannot drive them"
        )
    missing = [name for name in entry.requires_detectors if name not in provided]
    if missing:
        raise ScenarioValidationError(
            f"consensus {spec.consensus!r} ({entry.paper_item}) queries "
            f"{', '.join(entry.requires_detectors)} but "
            f"{', '.join(missing)} is not attached (and no stacked program "
            "publishes it)"
        )
    if entry.needs_majority and 2 * worst_faulty >= n:
        raise ScenarioValidationError(
            f"consensus {spec.consensus!r} ({entry.paper_item}) assumes a "
            f"majority of correct processes (t < n/2), but the crash schedule "
            f"can kill {worst_faulty} of {n}; use an HΣ-based algorithm "
            "(e.g. 'homega_hsigma') for any-failures runs"
        )
    if entry.membership_constraint == "unique" and not membership.is_uniquely_identified:
        raise ScenarioValidationError(
            f"consensus {spec.consensus!r} is only defined for unique "
            "identifiers; the membership has homonyms"
        )
    if entry.membership_constraint == "anonymous" and not membership.is_anonymous:
        raise ScenarioValidationError(
            f"consensus {spec.consensus!r} is only defined for anonymous "
            "systems; the membership has distinct identifiers"
        )


def _validate_sparse_topology(spec: ScenarioSpec) -> None:
    """What a sparse (non-full-mesh) monitoring topology can drive.

    Topologies reshape *monitoring traffic*: which peers a program pings and
    who hears its heartbeats.  Only programs that declare themselves
    topology-aware draw targets from the topology — the paper-figure
    algorithms (Figures 3–9) are specified as broadcast protocols whose
    correctness arguments count replies from the full membership, so thinning
    their traffic would change the algorithm, not the topology.  Consensus
    and the KV workload are likewise full-membership protocols.
    """
    topo = spec.topology.build()
    if spec.program is None:
        raise ScenarioValidationError(
            f"a {topo.describe()} topology reshapes monitoring traffic, so the "
            "scenario needs a monitoring program: pick a topology-aware one "
            "with .program(...) (e.g. 'heartbeat' or 'membership')"
        )
    program_entry = PROGRAMS.resolve(spec.program)
    if not program_entry.topology_aware:
        raise ScenarioValidationError(
            f"program {spec.program!r} ({program_entry.paper_item}) is a "
            "broadcast protocol whose correctness argument needs the full "
            f"membership; it cannot run under a {topo.describe()} topology"
        )
    if spec.consensus is not None or spec.kv is not None:
        raise ScenarioValidationError(
            "consensus and KV workloads are full-membership protocols; a "
            f"{topo.describe()} topology only applies to monitoring programs — "
            "drop .consensus()/.kv() or use the default full mesh"
        )


def _validate_real_backend(spec: ScenarioSpec) -> None:
    """What the asyncio/TCP backend can and cannot execute.

    The real backend runs *message-passing programs* — code that lives
    entirely behind the context protocol.  Oracle detectors read the global
    failure pattern (omniscience no real process has), the KV runner and the
    consensus metrics pipeline are wired to the simulator's trace, and
    synchronous rounds don't exist on a real network; all of those stay
    sim-only and are rejected here with an explanation rather than failing
    at run time inside a subprocess.
    """
    if spec.program is None:
        raise ScenarioValidationError(
            "the real backend runs message-passing programs: pick one with "
            ".program(...) (e.g. 'heartbeat'); oracle-backed consensus and "
            "the KV workload are sim-only"
        )
    if spec.consensus is not None or spec.kv is not None:
        raise ScenarioValidationError(
            "the real backend cannot run consensus or KV workloads yet: "
            "their detector oracles and metrics read the simulator's global "
            "failure pattern and trace; drop .consensus()/.kv() or use "
            'backend="sim"'
        )
    if spec.detectors:
        raise ScenarioValidationError(
            "detector oracles are omniscient (they read the failure "
            "pattern) and cannot exist on the real backend; use an "
            "implementation program instead"
        )
    if spec.timing.kind == "synchronous":
        raise ScenarioValidationError(
            "a real network has no synchronous rounds; HSS scenarios are "
            "sim-only"
        )
    if not spec.network.is_reliable:
        raise ScenarioValidationError(
            ".network(...) link models are simulator schedule transforms; "
            "on the real backend, shape the actual TCP links instead with "
            'backend_params={"link": {"loss": …, "delay": …, "jitter": …, '
            '"duplicate": …}} (see repro.transport.node.ShapedLink)'
        )
    if spec.backend_params.get("link"):
        from ..transport.node import validate_link_params

        validate_link_params(dict(spec.backend_params["link"]))
    if not spec.topology.is_full_mesh:
        raise ScenarioValidationError(
            "sparse monitoring topologies (ring/gossip) are sim-only for "
            "now: the real backend meshes every node pair at startup — use "
            'the default full mesh with backend="real"'
        )


def _validate_kv(spec: ScenarioSpec, membership, n: int, worst_faulty: int, provided) -> None:
    """The KV section's slice of the requirement table.

    The scenario's membership and crash schedule describe the *replica
    group* — the KV runner adds client processes on top — so the majority
    and homonymy constraints of the chosen replication algorithm are judged
    against the replicas, exactly as for a bare consensus scenario.
    """
    if spec.timing.kind == "synchronous":
        raise ScenarioValidationError(
            "the KV service replicates through asynchronous-family consensus "
            "algorithms; a synchronous (HSS) timing model cannot drive it"
        )
    entry = CONSENSUS.resolve(spec.kv.consensus)
    missing = [name for name in entry.requires_detectors if name not in provided]
    if missing:
        raise ScenarioValidationError(
            f"KV replication via {spec.kv.consensus!r} ({entry.paper_item}) "
            f"queries {', '.join(entry.requires_detectors)} but "
            f"{', '.join(missing)} is not attached"
        )
    if entry.needs_majority and 2 * worst_faulty >= n:
        raise ScenarioValidationError(
            f"KV replication via {spec.kv.consensus!r} ({entry.paper_item}) "
            f"assumes a majority of correct replicas (t < n/2), but the crash "
            f"schedule can kill {worst_faulty} of {n} replicas; use an "
            "HΣ-based algorithm (e.g. 'homega_hsigma') for any-failures runs"
        )
    if entry.membership_constraint == "unique" and not membership.is_uniquely_identified:
        raise ScenarioValidationError(
            f"KV replication via {spec.kv.consensus!r} is only defined for "
            "unique identifiers; the replica membership has homonyms"
        )
    if entry.membership_constraint == "anonymous" and not membership.is_anonymous:
        raise ScenarioValidationError(
            f"KV replication via {spec.kv.consensus!r} is only defined for "
            "anonymous systems; the replica membership has distinct identifiers"
        )
