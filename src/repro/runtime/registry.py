"""Name → component registries for the runtime front door.

Experiments, examples, and the CLI resolve detectors, consensus algorithms,
detector-implementation programs, property checkers, and whole experiments by
name, so new scenarios are data instead of import plumbing.  Each registry is
a :class:`Registry` instance; registering a duplicate name raises unless
``overwrite=True``, so plugins cannot silently shadow the paper's components.

The consensus registry additionally stores each algorithm's *requirements* —
the paper's assumption table (which detector classes it queries, whether it
needs a majority of correct processes, and which homonymy extreme it is
specialised to).  The :class:`~repro.runtime.builder.ScenarioBuilder` enforces
these at build time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from ..algorithms import (
    HeartbeatMonitorProgram,
    HSigmaSynchronousProgram,
    OhpPollingProgram,
    ScriptAliveProgram,
)
from ..consensus import (
    AnonymousAOmegaASigmaConsensus,
    AnonymousAOmegaConsensus,
    ClassicalOmegaConsensus,
    HOmegaHSigmaConsensus,
    HOmegaMajorityConsensus,
    NoCoordinationConsensus,
)
from ..detectors import (
    AOmegaOracle,
    APOracle,
    ASigmaOracle,
    DiamondHPOracle,
    DiamondPOracle,
    HOmegaOracle,
    HSigmaOracle,
    OmegaOracle,
    PerfectOracle,
    ScriptEOracle,
    SigmaOracle,
    check_aomega_election,
    check_ap,
    check_asigma,
    check_diamond_hp,
    check_diamond_p,
    check_homega_election,
    check_hsigma,
    check_omega_election,
    check_script_e,
    check_sigma,
)
from ..errors import ConfigurationError
from ..membership import Membership
from ..sim.links import (
    AsymmetricLinks,
    ComposedLinks,
    DuplicatingLinks,
    JitterLinks,
    LinkModel,
    LossyLinks,
    PartitionedLinks,
    ReliableLinks,
)

__all__ = [
    "Registry",
    "ConsensusEntry",
    "DETECTORS",
    "CONSENSUS",
    "PROGRAMS",
    "CHECKS",
    "EXPERIMENTS",
    "LINKS",
    "register_detector",
    "register_consensus",
    "register_program",
    "register_check",
    "register_experiment",
    "register_link",
    "build_link_model",
]


class Registry:
    """A named component table with explicit registration and lookup."""

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._entries: dict[str, Any] = {}

    def register(self, name: str, entry: Any, *, overwrite: bool = False) -> Any:
        if not overwrite and name in self._entries:
            raise ConfigurationError(
                f"{self._kind} {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        self._entries[name] = entry
        return entry

    def resolve(self, name: str) -> Any:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise ConfigurationError(
                f"unknown {self._kind} {name!r}; registered: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


#: Detector oracles: name → ``(params) -> DetectorFactory``.
DETECTORS = Registry("detector")

#: Consensus algorithms: name → :class:`ConsensusEntry`.
CONSENSUS = Registry("consensus algorithm")

#: Detector-implementation programs: name → ``(params) -> ProcessProgram``.
PROGRAMS = Registry("program")

#: Trace property checkers: name → ``(trace, pattern) -> CheckResult``.
CHECKS = Registry("property check")

#: Whole experiments: id → ``run(quick=..., seed=..., engine=...)``.
EXPERIMENTS = Registry("experiment")

#: Link models: name → ``(**params) -> LinkModel``.
LINKS = Registry("link model")


def register_detector(name: str, maker: Callable[..., Any], *, overwrite: bool = False):
    """Register a detector oracle class under ``name``.

    ``maker`` is called as ``maker(services, **params)`` when the run starts.
    """

    def factory_of(params: Mapping[str, Any]):
        fixed = dict(params)
        return lambda services: maker(services, **fixed)

    return DETECTORS.register(name, factory_of, overwrite=overwrite)


@dataclass(frozen=True)
class ConsensusEntry:
    """A consensus algorithm plus its paper assumptions.

    ``build(proposal, membership, params)`` instantiates the program for one
    process.  ``requires_detectors`` lists the detector attachments the
    algorithm queries; ``needs_majority`` encodes the ``t < n/2`` assumption;
    ``membership_constraint`` is ``None``, ``"unique"``, or ``"anonymous"``.
    """

    build: Callable[[Any, Membership, Mapping[str, Any]], Any]
    requires_detectors: tuple[str, ...] = ()
    needs_majority: bool = False
    membership_constraint: str | None = None
    paper_item: str = ""


def register_consensus(
    name: str,
    build: Callable[[Any, Membership, Mapping[str, Any]], Any],
    *,
    requires_detectors: tuple[str, ...] = (),
    needs_majority: bool = False,
    membership_constraint: str | None = None,
    paper_item: str = "",
    overwrite: bool = False,
) -> ConsensusEntry:
    entry = ConsensusEntry(
        build=build,
        requires_detectors=requires_detectors,
        needs_majority=needs_majority,
        membership_constraint=membership_constraint,
        paper_item=paper_item,
    )
    return CONSENSUS.register(name, entry, overwrite=overwrite)


@dataclass(frozen=True)
class ProgramEntry:
    """A detector-implementation program plus its timing requirement.

    ``topology_aware`` marks programs that draw their probe/heartbeat targets
    from the scenario's monitoring topology (``topology`` and ``index`` are
    injected into their build parameters for sparse topologies); the builder
    rejects sparse topologies for every other program.
    """

    build: Callable[[Mapping[str, Any]], Any]
    requires_timing: str | None = None
    paper_item: str = ""
    topology_aware: bool = False

    def provides_detector(self, params: Mapping[str, Any]) -> str | None:
        """The detector name the program publishes (``detector_name`` param)."""
        return params.get("detector_name")


def register_program(
    name: str,
    build: Callable[[Mapping[str, Any]], Any],
    *,
    requires_timing: str | None = None,
    paper_item: str = "",
    topology_aware: bool = False,
    overwrite: bool = False,
) -> ProgramEntry:
    entry = ProgramEntry(
        build=build,
        requires_timing=requires_timing,
        paper_item=paper_item,
        topology_aware=topology_aware,
    )
    return PROGRAMS.register(name, entry, overwrite=overwrite)


def register_check(name: str, checker: Callable[..., Any], *, overwrite: bool = False):
    return CHECKS.register(name, checker, overwrite=overwrite)


def register_experiment(name: str, runner: Callable[..., Any], *, overwrite: bool = False):
    return EXPERIMENTS.register(name, runner, overwrite=overwrite)


def register_link(name: str, maker: Callable[..., LinkModel], *, overwrite: bool = False):
    """Register a link model under ``name``; ``maker`` is called as ``maker(**params)``."""
    return LINKS.register(name, maker, overwrite=overwrite)


def build_link_model(kind: str, params: Mapping[str, Any]) -> LinkModel:
    """Materialise a link model from its spec data (``kind`` + parameters)."""
    return LINKS.resolve(kind)(**dict(params))


# ----------------------------------------------------------------------
# Built-in detectors (the paper's oracle catalogue)
# ----------------------------------------------------------------------
for _name, _oracle in (
    ("Perfect", PerfectOracle),
    ("DiamondP", DiamondPOracle),
    ("Omega", OmegaOracle),
    ("Sigma", SigmaOracle),
    ("AP", APOracle),
    ("AOmega", AOmegaOracle),
    ("ASigma", ASigmaOracle),
    ("DiamondHP", DiamondHPOracle),
    ("HOmega", HOmegaOracle),
    ("HSigma", HSigmaOracle),
    ("ScriptE", ScriptEOracle),
):
    register_detector(_name, _oracle)

#: Oracles that elect leaders and therefore accept a pre-stabilization
#: ``noise_period``; the builder only forwards that parameter to these.
LEADER_DETECTORS = frozenset({"Omega", "AOmega", "HOmega"})


# ----------------------------------------------------------------------
# Built-in link models (the network fault vocabulary)
# ----------------------------------------------------------------------
def _make_partitioned_links(*, partitions: Any = ()) -> PartitionedLinks:
    """Accept the JSON window shape ``[{"start":, "end":, "groups": [[...]]}]``."""
    return PartitionedLinks.from_windows(list(partitions))


def _make_composed_links(*, stages: Any = ()) -> ComposedLinks:
    """Accept nested specs: ``[{"kind": ..., "params": {...}}, ...]``."""
    return ComposedLinks(
        tuple(
            build_link_model(stage["kind"], stage.get("params", {})) for stage in stages
        )
    )


for _name, _maker in (
    ("reliable", ReliableLinks),
    ("lossy", LossyLinks),
    ("duplicating", DuplicatingLinks),
    ("jitter", JitterLinks),
    ("asymmetric", AsymmetricLinks),
    ("partitioned", _make_partitioned_links),
    ("compose", _make_composed_links),
):
    register_link(_name, _maker)


# ----------------------------------------------------------------------
# Built-in consensus algorithms (Section 5 plus baselines/ablations)
# ----------------------------------------------------------------------
register_consensus(
    "homega_majority",
    lambda proposal, membership, params: HOmegaMajorityConsensus(
        proposal, n=membership.size, **params
    ),
    requires_detectors=("HOmega",),
    needs_majority=True,
    paper_item="Figure 8 (Theorem 7)",
)
register_consensus(
    "homega_hsigma",
    lambda proposal, membership, params: HOmegaHSigmaConsensus(proposal, **params),
    requires_detectors=("HOmega", "HSigma"),
    needs_majority=False,
    paper_item="Figure 9 (Theorem 8)",
)
register_consensus(
    "no_coordination",
    lambda proposal, membership, params: NoCoordinationConsensus(
        proposal, n=membership.size, **params
    ),
    requires_detectors=("HOmega",),
    needs_majority=True,
    paper_item="Figure 8 ablation (E7)",
)
register_consensus(
    "classical_omega",
    lambda proposal, membership, params: ClassicalOmegaConsensus(
        proposal, n=membership.size, **params
    ),
    requires_detectors=("Omega",),
    needs_majority=True,
    membership_constraint="unique",
    paper_item="classical Ω baseline",
)
register_consensus(
    "anonymous_aomega",
    lambda proposal, membership, params: AnonymousAOmegaConsensus(
        proposal, n=membership.size, **params
    ),
    requires_detectors=("AOmega",),
    needs_majority=True,
    membership_constraint="anonymous",
    paper_item="Bonnet–Raynal AΩ baseline",
)
register_consensus(
    "aomega_asigma",
    lambda proposal, membership, params: AnonymousAOmegaASigmaConsensus(
        proposal, **params
    ),
    requires_detectors=("AOmega", "ASigma"),
    needs_majority=False,
    membership_constraint="anonymous",
    paper_item="Figure 9 anonymous instance",
)


# ----------------------------------------------------------------------
# Built-in detector-implementation programs (Figures 3, 6, 7)
# ----------------------------------------------------------------------
register_program(
    "ohp_polling",
    lambda params: OhpPollingProgram(**params),
    requires_timing="partial_sync",
    paper_item="Figure 6 (◇HP/HΩ in HPS[∅])",
)
register_program(
    "hsigma_sync",
    lambda params: HSigmaSynchronousProgram(**params),
    requires_timing="synchronous",
    paper_item="Figure 7 (HΣ in HSS[∅])",
)
register_program(
    "script_alive",
    lambda params: ScriptAliveProgram(**params),
    paper_item="Figure 3 (ℰ)",
)
register_program(
    "heartbeat",
    lambda params: HeartbeatMonitorProgram(**params),
    paper_item="sim-vs-real validation workload (SNIPPETS.md Snippet 1)",
    topology_aware=True,
)


def _build_membership_program(params: Mapping[str, Any]):
    """Lazy import: the churn program is only needed for churn scenarios."""
    from ..algorithms.membership import ClusterMembershipProgram

    return ClusterMembershipProgram(**params)


register_program(
    "membership",
    _build_membership_program,
    paper_item="dynamic membership / churn workload (SNIPPETS.md Snippet 2 join)",
    topology_aware=True,
)


# ----------------------------------------------------------------------
# Built-in property checkers
# ----------------------------------------------------------------------
def _check_kv_linearizable(trace, pattern):
    """Certify a KV run's client history (lazy import: kv → runtime → here)."""
    from ..workloads.kv.linearizability import check_kv_linearizable

    return check_kv_linearizable(trace, pattern)


register_check("kv_linearizable", _check_kv_linearizable)


def _check_hb_detection(trace, pattern):
    """Judge a heartbeat run's detections (lazy import: transport → runtime → here)."""
    from ..transport.validate import check_hb_detection

    return check_hb_detection(trace, pattern)


register_check("hb_detection", _check_hb_detection)


def _check_topo_detection(trace, pattern):
    """Judge per-index detections under a sparse topology (lazy import)."""
    from ..transport.validate import check_topo_detection

    return check_topo_detection(trace, pattern)


register_check("topo_detection", _check_topo_detection)


def _check_membership_churn(trace, pattern):
    """Judge a churn run's view convergence (lazy import)."""
    from ..workloads.churn import check_membership_churn

    return check_membership_churn(trace, pattern)


register_check("membership_churn", _check_membership_churn)

for _name, _checker in (
    ("diamond_p", check_diamond_p),
    ("omega", check_omega_election),
    ("sigma", check_sigma),
    ("ap", check_ap),
    ("aomega", check_aomega_election),
    ("asigma", check_asigma),
    ("diamond_hp", check_diamond_hp),
    ("homega", check_homega_election),
    ("hsigma", check_hsigma),
    ("script_e", check_script_e),
):
    register_check(_name, _checker)
