"""Monitoring topologies: who monitors whom.

Every monitoring workload before this layer existed was implicitly
*full-mesh*: each process pinged (and was pinged by) every other process,
which costs O(n²) link messages per round and caps the reproduction's
scaling experiments at a handful of processes.  This module extracts the
"who monitors whom / who hears my heartbeats" assumption into a pluggable
object so sparse designs plug in without touching the monitor programs'
timeout machinery:

* :class:`FullMesh` — the historical default; every process watches every
  other process.  Scenario specs that do not name a topology serialize,
  hash, and execute exactly as before the layer existed.
* :class:`Ring` — each process monitors its ``successors`` next peers in
  ring order (the ``AwesomeFailureDetector`` design of SNIPPETS.md
  Snippet 2, with its explicit completeness-vs-accuracy knob ``M``):
  O(n·k) messages per round, and a crash is still detected when a victim's
  direct monitors die with it, because survivors recompute their successor
  windows over the shrinking alive view (*ring repair*).
* :class:`Gossip` — heartbeat-counter tables diffused to ``fanout`` peers
  drawn from the per-process deterministic RNG each period (SWIM-style
  dissemination): O(n·k) messages per round with probabilistic, but in
  practice fast, propagation.

Topologies are *configuration*, not membership knowledge: they compute
target sets over opaque process **indices** (the same indices the transport
backend uses to address peers), never over identities, so homonymy is
irrelevant here and the paper's "no initial knowledge of the membership"
adversary is untouched for the identity-based algorithms.

Everything is deterministic: target sets are pure functions of the sorted
member index list (and, for gossip, an explicitly passed RNG — the caller's
per-process stream), so runs digest identically across serial and pooled
execution.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Mapping, Sequence

import random

from .errors import ConfigurationError

__all__ = [
    "MonitoringTopology",
    "FullMesh",
    "Ring",
    "Gossip",
    "build_topology",
    "topology_from_dict",
    "ring_successors",
]


def ring_successors(index: int, members: Sequence[int], k: int) -> tuple[int, ...]:
    """The next ``k`` distinct members after ``index`` in ring order.

    ``members`` is a sorted sequence of process indices (usually the local
    alive view, including ``index`` itself).  The ring wraps: the successor
    of the largest member is the smallest.  ``index`` need not be a member —
    a joiner computes its prospective monitors before anyone has merged it —
    in which case its position is where it *would* sit.  When ``k`` covers
    everyone (``k >= len(others)``), the result degenerates to the full mesh.
    """
    others = [member for member in members if member != index]
    if not others or k <= 0:
        return ()
    if k >= len(others):
        return tuple(others)
    start = bisect_right(others, index)
    return tuple(others[(start + offset) % len(others)] for offset in range(k))


class MonitoringTopology:
    """Base class: target-set computation over sorted member index lists."""

    kind: str = ""

    @property
    def is_full_mesh(self) -> bool:
        """Whether this topology reproduces the historical all-to-all behaviour."""
        return False

    def monitor_targets(self, index: int, members: Sequence[int]) -> tuple[int, ...]:
        """The peers process ``index`` actively monitors, given its alive view."""
        raise NotImplementedError

    def gossip_targets(
        self, index: int, members: Sequence[int], rng: random.Random
    ) -> tuple[int, ...]:
        """The peers process ``index`` diffuses state to this period.

        Deterministic topologies simply return :meth:`monitor_targets`;
        :class:`Gossip` draws from ``rng`` (the caller's per-process stream).
        """
        return self.monitor_targets(index, members)

    def expected_copies_per_round(self, n: int) -> int:
        """A back-of-envelope per-round message bound, for tables and docs."""
        raise NotImplementedError

    def params(self) -> dict[str, Any]:
        """The constructor parameters, for serialization."""
        return {}

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": self.params()}

    def describe(self) -> str:
        return self.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({params})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MonitoringTopology)
            and self.kind == other.kind
            and self.params() == other.params()
        )

    def __hash__(self) -> int:
        return hash((self.kind, tuple(sorted(self.params().items()))))


class FullMesh(MonitoringTopology):
    """Every process monitors every other process (the historical default)."""

    kind = "full_mesh"

    @property
    def is_full_mesh(self) -> bool:
        return True

    def monitor_targets(self, index: int, members: Sequence[int]) -> tuple[int, ...]:
        return tuple(member for member in members if member != index)

    def expected_copies_per_round(self, n: int) -> int:
        return n * (n - 1)

    def describe(self) -> str:
        return "full mesh (all-to-all)"


class Ring(MonitoringTopology):
    """Each process monitors its ``successors`` next peers in ring order."""

    kind = "ring"

    def __init__(self, *, successors: int = 3) -> None:
        if successors < 1:
            raise ConfigurationError("a ring topology needs at least one successor")
        self.successors = successors

    def monitor_targets(self, index: int, members: Sequence[int]) -> tuple[int, ...]:
        return ring_successors(index, members, self.successors)

    def expected_copies_per_round(self, n: int) -> int:
        return n * min(self.successors, max(n - 1, 0))

    def params(self) -> dict[str, Any]:
        return {"successors": self.successors}

    def describe(self) -> str:
        return f"ring (k={self.successors} successors)"


class Gossip(MonitoringTopology):
    """Heartbeat counters diffused to ``fanout`` random-but-seeded peers."""

    kind = "gossip"

    def __init__(self, *, fanout: int = 3) -> None:
        if fanout < 1:
            raise ConfigurationError("a gossip topology needs a fanout of at least one")
        self.fanout = fanout

    def monitor_targets(self, index: int, members: Sequence[int]) -> tuple[int, ...]:
        # Gossip monitors everyone *passively* (per-peer counter staleness);
        # the active per-period send set comes from gossip_targets.
        return tuple(member for member in members if member != index)

    def gossip_targets(
        self, index: int, members: Sequence[int], rng: random.Random
    ) -> tuple[int, ...]:
        others = [member for member in members if member != index]
        if len(others) <= self.fanout:
            return tuple(others)
        return tuple(sorted(rng.sample(others, self.fanout)))

    def expected_copies_per_round(self, n: int) -> int:
        return n * min(self.fanout, max(n - 1, 0))

    def params(self) -> dict[str, Any]:
        return {"fanout": self.fanout}

    def describe(self) -> str:
        return f"gossip (fanout={self.fanout})"


_TOPOLOGIES: dict[str, type[MonitoringTopology]] = {
    "full_mesh": FullMesh,
    "ring": Ring,
    "gossip": Gossip,
}


def build_topology(kind: str, params: Mapping[str, Any] | None = None) -> MonitoringTopology:
    """Materialise a topology from its spec data (``kind`` + parameters)."""
    try:
        cls = _TOPOLOGIES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown monitoring topology {kind!r}; expected one of {sorted(_TOPOLOGIES)}"
        ) from None
    return cls(**dict(params or {}))


def topology_from_dict(payload: Mapping[str, Any]) -> MonitoringTopology:
    """Rebuild a topology from its ``to_dict`` form."""
    return build_topology(payload["kind"], payload.get("params", {}))
