"""Shared machinery of the consensus programs.

All the paper's consensus algorithms (and the baselines derived from them)
share the same skeleton: they proceed in asynchronous rounds, buffer the
messages of each phase per round, and propagate decisions through a reliable
``DECIDE`` relay (the paper's Task T2).  This module hosts that common part so
the per-algorithm modules contain only the logic that differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..sim.message import Message
from ..sim.process import ProcessContext, ProcessProgram

__all__ = ["ConsensusKeys", "ConsensusProgram"]

#: The ⊥ ("bottom") estimate used by Phases 1 and 2.
BOTTOM = "⊥-consensus"


@dataclass(frozen=True)
class ConsensusKeys:
    """Standard trace keys recorded by the consensus programs."""

    ROUND: str = "consensus.round"
    PHASE: str = "consensus.phase"
    ESTIMATE: str = "consensus.est1"
    DECIDED_ROUND: str = "consensus.decided_round"


KEYS = ConsensusKeys()


class ConsensusProgram(ProcessProgram):
    """Base class for round-based consensus programs.

    Subclasses implement :meth:`run_round` (one full round of the algorithm,
    as a generator) and may override :meth:`on_extra_setup` to register
    additional handlers.  The base class provides:

    * the proposal / estimate / round-counter state,
    * per-round, per-phase message buffers (``COORD``, ``PH0``, ``PH1``,
      ``PH2``) with arrival-order preserved,
    * the reliable ``DECIDE`` relay of Task T2, and
    * trace recording of rounds and decisions.
    """

    #: Message kinds buffered per round by the base class.
    _BUFFERED_KINDS = ("COORD", "PH0", "PH1", "PH2")

    def __init__(self, proposal: Any, *, record_outputs: bool = True) -> None:
        self.proposal = proposal
        self.est1 = proposal
        self.round = 0
        self.record_outputs = record_outputs
        self.decided_value: Any = None
        self.decided = False
        self._buffers: dict[str, dict[int, list[Message]]] = {
            kind: {} for kind in self._BUFFERED_KINDS
        }

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def setup(self, ctx: ProcessContext) -> None:
        for kind in self._BUFFERED_KINDS:
            ctx.on(kind, self._make_buffer_handler(kind))
        ctx.on("DECIDE", lambda msg: self._on_decide(ctx, msg))
        self.on_extra_setup(ctx)
        ctx.spawn(lambda: self._round_loop(ctx), name="consensus-rounds")

    def on_extra_setup(self, ctx: ProcessContext) -> None:
        """Hook for subclasses that need extra handlers or state."""

    def _make_buffer_handler(self, kind: str):
        def handler(message: Message) -> None:
            self._buffers[kind].setdefault(message["round"], []).append(message)

        return handler

    # ------------------------------------------------------------------
    # The round loop (Task T1)
    # ------------------------------------------------------------------
    def _round_loop(self, ctx: ProcessContext):
        while not self.decided:
            self.round += 1
            if self.record_outputs:
                ctx.record(KEYS.ROUND, self.round)
                ctx.record(KEYS.ESTIMATE, self.est1)
            yield from self.run_round(ctx, self.round)

    def run_round(self, ctx: ProcessContext, round_number: int):
        """Execute one round of the algorithm (a generator)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Deciding (Line 32 of Figure 8, Line 51 of Figure 9, and Task T2)
    # ------------------------------------------------------------------
    def decide(self, ctx: ProcessContext, value: Any) -> None:
        """Decide ``value``: relay it and stop participating in new rounds."""
        if self.decided:
            return
        ctx.broadcast("DECIDE", value=value)
        self._mark_decided(ctx, value)

    def _on_decide(self, ctx: ProcessContext, message: Message) -> None:
        if self.decided:
            return
        # Task T2: forward the decision once, then adopt it.
        ctx.broadcast("DECIDE", value=message["value"])
        self._mark_decided(ctx, message["value"])

    def _mark_decided(self, ctx: ProcessContext, value: Any) -> None:
        self.decided = True
        self.decided_value = value
        ctx.decide(value)
        if self.record_outputs:
            ctx.record(KEYS.DECIDED_ROUND, self.round)

    # ------------------------------------------------------------------
    # Message-buffer helpers used by the subclasses' phases
    # ------------------------------------------------------------------
    def messages(self, kind: str, round_number: int) -> list[Message]:
        """The buffered messages of ``kind`` for ``round_number`` (arrival order)."""
        return self._buffers[kind].get(round_number, [])

    def count(self, kind: str, round_number: int) -> int:
        """How many messages of ``kind`` were received for ``round_number``."""
        return len(self.messages(kind, round_number))

    def count_matching(self, kind: str, round_number: int, **fields: Any) -> int:
        """How many buffered messages of ``kind``/``round`` match the given fields."""
        return sum(
            1 for message in self.messages(kind, round_number) if message.matches(**fields)
        )

    def estimates(self, kind: str, round_number: int, **fields: Any) -> list[Any]:
        """The ``estimate`` payloads of the matching buffered messages."""
        return [
            message["estimate"]
            for message in self.messages(kind, round_number)
            if message.matches(**fields)
        ]

    def has_message(self, kind: str, round_number: int, **fields: Any) -> bool:
        """Whether at least one matching message has been buffered."""
        return self.count_matching(kind, round_number, **fields) > 0

    def describe(self) -> str:
        return type(self).__name__
