"""Baseline: classical Ω + majority consensus for unique-identifier systems.

This is what Figure 8 degenerates to when every process has its own
identifier: the detector elects a single correct leader, every
``h_multiplicity`` equals 1, and the Leaders' Coordination Phase becomes a
no-op (a leader only has to hear its own ``COORD``).  The baseline keeps the
coordination phase disabled to match the classical algorithm exactly; the E6
experiment compares it against the homonymous algorithm at the unique-id
extreme.
"""

from __future__ import annotations

from typing import Any

from ..sim.process import ProcessContext
from .homega_majority import HOmegaMajorityConsensus

__all__ = ["ClassicalOmegaConsensus"]


class ClassicalOmegaConsensus(HOmegaMajorityConsensus):
    """Round-based Ω + majority consensus (unique identifiers)."""

    def __init__(
        self,
        proposal: Any,
        *,
        n: int,
        t: int | None = None,
        detector_name: str = "Omega",
        record_outputs: bool = True,
    ) -> None:
        super().__init__(
            proposal,
            n=n,
            t=t,
            detector_name=detector_name,
            use_coordination_phase=False,
            record_outputs=record_outputs,
        )

    def considers_itself_leader(self, ctx: ProcessContext) -> bool:
        return ctx.detector(self.detector_name).leader == ctx.identity

    def leader_multiplicity(self, ctx: ProcessContext) -> int:
        return 1

    def describe(self) -> str:
        return "Baseline consensus (Ω, unique ids, majority)"
