"""Validity / Agreement / Termination checking for consensus runs.

The validator takes a run trace, the run's failure pattern, and the proposal
each process started with, and reports whether the three consensus properties
of Section 5.1 hold:

* **Validity** — every decided value is one of the proposed values;
* **Agreement** — all decided values are equal (including decisions taken by
  processes that later crash);
* **Termination** — every correct process decides (within the simulated
  horizon; the caller controls how generous that horizon is).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ConsensusViolationError
from ..identity import ProcessId
from ..sim.clock import Time
from ..sim.failures import FailurePattern
from ..sim.trace import RunTrace
from .base import ConsensusKeys

__all__ = ["ConsensusVerdict", "validate_consensus"]

KEYS = ConsensusKeys()


@dataclass(frozen=True)
class ConsensusVerdict:
    """The outcome of validating one consensus run."""

    validity_ok: bool
    agreement_ok: bool
    termination_ok: bool
    violations: tuple[str, ...] = ()
    decided_values: dict[ProcessId, Any] = field(default_factory=dict)
    decision_times: dict[ProcessId, Time] = field(default_factory=dict)
    decision_rounds: dict[ProcessId, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether all three properties hold."""
        return self.validity_ok and self.agreement_ok and self.termination_ok

    def __bool__(self) -> bool:
        return self.ok

    @property
    def last_decision_time(self) -> Time | None:
        """When the last process decided, or ``None`` when nobody decided."""
        if not self.decision_times:
            return None
        return max(self.decision_times.values())

    @property
    def max_decision_round(self) -> int | None:
        """The largest round in which any process decided."""
        if not self.decision_rounds:
            return None
        return max(self.decision_rounds.values())

    def raise_on_safety_violation(self) -> None:
        """Raise :class:`ConsensusViolationError` when validity or agreement fail."""
        if not (self.validity_ok and self.agreement_ok):
            raise ConsensusViolationError("; ".join(self.violations))


def validate_consensus(
    trace: RunTrace,
    pattern: FailurePattern,
    proposals: Mapping[ProcessId, Any],
    *,
    require_termination: bool = True,
) -> ConsensusVerdict:
    """Validate one consensus run.

    ``proposals`` maps every process to the value it proposed.  When
    ``require_termination`` is ``False`` the termination property is reported
    but a missing decision is not listed as a violation — useful for
    experiments that deliberately cut runs short (e.g. the ablation measuring
    how often the no-coordination variant fails to decide).
    """
    violations: list[str] = []
    decided_values: dict[ProcessId, Any] = {}
    decision_times: dict[ProcessId, Time] = {}
    decision_rounds: dict[ProcessId, int] = {}

    proposed_values = set(proposals.values())
    for process, decision in trace.decisions.items():
        decided_values[process] = decision.value
        decision_times[process] = decision.time
        round_of_decision = trace.final_value(process, KEYS.DECIDED_ROUND)
        if round_of_decision is not None:
            decision_rounds[process] = round_of_decision

    # Validity ----------------------------------------------------------
    validity_ok = True
    for process, value in decided_values.items():
        if value not in proposed_values:
            validity_ok = False
            violations.append(
                f"{process!r} decided {value!r}, which was never proposed"
            )

    # Agreement ---------------------------------------------------------
    agreement_ok = True
    distinct_values = set(decided_values.values())
    if len(distinct_values) > 1:
        agreement_ok = False
        violations.append(
            f"processes decided different values: {sorted(map(repr, distinct_values))}"
        )

    # Termination -------------------------------------------------------
    undecided_correct = sorted(
        process for process in pattern.correct if process not in decided_values
    )
    termination_ok = not undecided_correct
    if undecided_correct and require_termination:
        violations.append(
            "correct processes never decided: "
            + ", ".join(repr(process) for process in undecided_correct)
        )

    return ConsensusVerdict(
        validity_ok=validity_ok,
        agreement_ok=agreement_ok,
        termination_ok=termination_ok,
        violations=tuple(violations),
        decided_values=decided_values,
        decision_times=decision_times,
        decision_rounds=decision_rounds,
    )
