"""Anonymous variant of Figure 9: consensus with AΩ and AΣ (quorum counting).

The paper closes Section 5.3 by observing that Figure 9 "can be easily
transformed into an algorithm that solves consensus in AAS[AΩ, AΣ]": remove
the Leaders' Coordination Phase and replace the HΩ leader test by the boolean
AΩ flag; the HΣ quorums become AΣ's ``(label, size)`` quorums.  The resulting
Phase 0 is the Bonnet–Raynal anonymous algorithm's.

This class implements that transformation.  It reuses the Figure 9 skeleton
but assembles quorums by *counting* messages whose senders carry the pair's
label (the anonymous quorums carry sizes, not identifier multisets).  It
serves as the anonymous baseline for experiment E5 and as a working rendering
of the prior-work algorithm the paper generalises.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..sim.message import Message
from ..sim.process import ProcessContext
from .base import BOTTOM
from .homega_hsigma import HOmegaHSigmaConsensus

__all__ = ["AnonymousAOmegaASigmaConsensus"]


class AnonymousAOmegaASigmaConsensus(HOmegaHSigmaConsensus):
    """Consensus in ``AAS[AΩ, AΣ]`` (anonymous systems, any number of crashes)."""

    def __init__(
        self,
        proposal: Any,
        *,
        aomega_name: str = "AOmega",
        asigma_name: str = "ASigma",
        record_outputs: bool = True,
    ) -> None:
        super().__init__(
            proposal,
            homega_name=aomega_name,
            hsigma_name=asigma_name,
            record_outputs=record_outputs,
        )

    # ------------------------------------------------------------------
    # Leader hooks: AΩ is a boolean flag, there are no homonymous leaders.
    # ------------------------------------------------------------------
    def considers_itself_leader(self, ctx: ProcessContext) -> bool:
        return bool(ctx.detector(self.homega_name).a_leader)

    def leader_multiplicity(self, ctx: ProcessContext) -> int:
        return 1

    def _coordination_phase(self, ctx: ProcessContext, round_number: int):
        # The anonymous algorithm has no Leaders' Coordination Phase; the
        # COORD broadcast is kept because Phase 2 uses it to detect that
        # another process already moved to the next round.
        ctx.broadcast(
            "COORD", round=round_number, identity=ctx.identity, estimate=self.est1
        )
        return
        yield  # pragma: no cover - makes this method a generator like the parent

    # ------------------------------------------------------------------
    # Quorum assembly: AΣ pairs are (label, size); labels come from a_sigma.
    # ------------------------------------------------------------------
    def _current_labels(self, ctx: ProcessContext) -> frozenset:
        return frozenset(label for label, _ in ctx.detector(self.hsigma_name).a_sigma)

    def _find_quorum(
        self, ctx: ProcessContext, kind: str, round_number: int
    ) -> list[Message] | None:
        received = self.messages(kind, round_number)
        if not received:
            return None
        pairs = sorted(ctx.detector(self.hsigma_name).a_sigma, key=repr)
        sub_rounds = sorted({message["sub_round"] for message in received})
        for label, size in pairs:
            for sub_round in sub_rounds:
                candidates = [
                    message
                    for message in received
                    if message["sub_round"] == sub_round and label in message["labels"]
                ]
                if len(candidates) >= size > 0:
                    return candidates[:size]
        return None

    def _should_advance_sub_round(
        self,
        ctx: ProcessContext,
        kind: str,
        round_number: int,
        sub_round: int,
        current_labels: frozenset,
    ) -> bool:
        if self._current_labels(ctx) != current_labels:
            return True
        return any(
            message["sub_round"] > sub_round for message in self.messages(kind, round_number)
        )

    # The parent reads ``h_labels``/``h_quora`` when (re)entering a phase;
    # route those reads to the AΣ detector's label set and pairs.
    def _hsigma(self, ctx: ProcessContext):
        detector = ctx.detector(self.hsigma_name)

        class _LabelsAdapter:
            """Expose the AΣ detector under the attribute the parent reads."""

            @property
            def h_labels(self):
                return frozenset(label for label, _ in detector.a_sigma)

            @property
            def h_quora(self):
                return detector.a_sigma

            @property
            def a_sigma(self):
                return detector.a_sigma

        return _LabelsAdapter()

    def describe(self) -> str:
        return "Baseline consensus (AΩ + AΣ, anonymous, any number of crashes)"
