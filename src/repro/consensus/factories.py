"""Named, picklable consensus factories (``proposal -> ConsensusProgram``).

Scenario-level code frequently needs a *factory* that turns one process's
proposal into a consensus program instance — :class:`ConsensusScenario` takes
one, and the replicated-KV workload builds one instance per log slot.  An
inline ``lambda`` works but has two costs: it cannot cross a process boundary
(the pool executors pickle by reference), and the run cache refuses to key on
it (``<lambda>`` qualnames are ambiguous, so two different lambdas could serve
each other's cache entries).

A :class:`ConsensusFactory` is the named alternative: a plain picklable object
wrapping the program class and its fixed keyword arguments.  The helpers below
cover the registry's algorithm catalogue.
"""

from __future__ import annotations

from typing import Any

from .anonymous_aomega import AnonymousAOmegaConsensus
from .anonymous_aomega_asigma import AnonymousAOmegaASigmaConsensus
from .base import ConsensusProgram
from .classical_omega import ClassicalOmegaConsensus
from .homega_hsigma import HOmegaHSigmaConsensus
from .homega_majority import HOmegaMajorityConsensus
from .no_coordination import NoCoordinationConsensus

__all__ = [
    "ConsensusFactory",
    "homega_majority_factory",
    "homega_hsigma_factory",
    "no_coordination_factory",
    "classical_omega_factory",
    "anonymous_aomega_factory",
    "aomega_asigma_factory",
]


class ConsensusFactory:
    """A named ``proposal -> ConsensusProgram`` callable.

    Instances pickle (class by reference, keyword arguments by value) and
    carry a stable qualified name, so scenarios built around one are eligible
    for run caching and pool dispatch — unlike inline lambdas.
    """

    def __init__(self, program_class: type[ConsensusProgram], **kwargs: Any) -> None:
        self.program_class = program_class
        self.kwargs = dict(kwargs)

    def __call__(self, proposal: Any) -> ConsensusProgram:
        return self.program_class(proposal, **self.kwargs)

    def __getstate__(self) -> dict:
        return {"program_class": self.program_class, "kwargs": self.kwargs}

    def __setstate__(self, state: dict) -> None:
        self.program_class = state["program_class"]
        self.kwargs = state["kwargs"]

    def describe(self) -> str:
        """Short human-readable name used in traces and experiment tables."""
        return self.program_class.__name__

    def __repr__(self) -> str:
        args = ", ".join(f"{key}={value!r}" for key, value in sorted(self.kwargs.items()))
        return f"ConsensusFactory({self.program_class.__name__}, {args})"


def homega_majority_factory(*, n: int, **params: Any) -> ConsensusFactory:
    """Figure 8: consensus in ``HAS[t < n/2, HΩ]`` (``n`` known)."""
    return ConsensusFactory(HOmegaMajorityConsensus, n=n, **params)


def homega_hsigma_factory(**params: Any) -> ConsensusFactory:
    """Figure 9: consensus in ``HAS[HΩ, HΣ]`` (any crashes, ``n`` unknown)."""
    return ConsensusFactory(HOmegaHSigmaConsensus, **params)


def no_coordination_factory(*, n: int, **params: Any) -> ConsensusFactory:
    """Figure 8 without the Leaders' Coordination Phase (the E7 ablation)."""
    return ConsensusFactory(NoCoordinationConsensus, n=n, **params)


def classical_omega_factory(*, n: int, **params: Any) -> ConsensusFactory:
    """The unique-identifier Ω + majority baseline."""
    return ConsensusFactory(ClassicalOmegaConsensus, n=n, **params)


def anonymous_aomega_factory(*, n: int, **params: Any) -> ConsensusFactory:
    """The Bonnet–Raynal-style AΩ + majority baseline."""
    return ConsensusFactory(AnonymousAOmegaConsensus, n=n, **params)


def aomega_asigma_factory(**params: Any) -> ConsensusFactory:
    """The Figure 9 anonymous instance (AΩ + AΣ)."""
    return ConsensusFactory(AnonymousAOmegaASigmaConsensus, **params)
