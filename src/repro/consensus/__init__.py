"""Consensus algorithms for homonymous systems, plus baselines and validators.

The two algorithms of the paper's Section 5:

* :class:`~repro.consensus.homega_majority.HOmegaMajorityConsensus` —
  Figure 8: consensus in ``HAS[t < n/2, HΩ]`` (majority of correct processes,
  ``n`` known, membership unknown).
* :class:`~repro.consensus.homega_hsigma.HOmegaHSigmaConsensus` —
  Figure 9: consensus in ``HAS[HΩ, HΣ]`` (any number of crashes, ``n``
  unknown).

Baselines and ablations:

* :class:`~repro.consensus.classical_omega.ClassicalOmegaConsensus` — the
  unique-identifier Ω + majority algorithm Figure 8 degenerates to when every
  identifier is distinct.
* :class:`~repro.consensus.anonymous_aomega.AnonymousAOmegaConsensus` — the
  Bonnet–Raynal-style AΩ + majority algorithm Figure 8 was derived from.
* :class:`~repro.consensus.no_coordination.NoCoordinationConsensus` —
  Figure 8 *without* the Leaders' Coordination Phase (the paper's main
  algorithmic addition), used by the E7 ablation.

:mod:`repro.consensus.validator` checks Validity, Agreement, and Termination
of a run trace.
"""

from .anonymous_aomega import AnonymousAOmegaConsensus
from .anonymous_aomega_asigma import AnonymousAOmegaASigmaConsensus
from .base import ConsensusKeys, ConsensusProgram
from .classical_omega import ClassicalOmegaConsensus
from .factories import (
    ConsensusFactory,
    anonymous_aomega_factory,
    aomega_asigma_factory,
    classical_omega_factory,
    homega_hsigma_factory,
    homega_majority_factory,
    no_coordination_factory,
)
from .homega_hsigma import HOmegaHSigmaConsensus
from .homega_majority import HOmegaMajorityConsensus
from .no_coordination import NoCoordinationConsensus
from .validator import ConsensusVerdict, validate_consensus

__all__ = [
    "AnonymousAOmegaASigmaConsensus",
    "AnonymousAOmegaConsensus",
    "ClassicalOmegaConsensus",
    "ConsensusFactory",
    "ConsensusKeys",
    "ConsensusProgram",
    "ConsensusVerdict",
    "HOmegaHSigmaConsensus",
    "HOmegaMajorityConsensus",
    "NoCoordinationConsensus",
    "anonymous_aomega_factory",
    "aomega_asigma_factory",
    "classical_omega_factory",
    "homega_hsigma_factory",
    "homega_majority_factory",
    "no_coordination_factory",
    "validate_consensus",
]
