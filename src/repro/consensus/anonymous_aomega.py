"""Baseline: anonymous AΩ + majority consensus (Bonnet–Raynal style).

Figure 8 of the paper was derived from the anonymous algorithm of Bonnet &
Raynal by replacing AΩ with HΩ and adding the Leaders' Coordination Phase.
This baseline is the original shape: the leader question is answered by the
boolean AΩ flag, there is no coordination phase, and Phase 0 onwards is
unchanged.  It is used at the anonymous extreme of the E6 homonymy-spectrum
experiment.
"""

from __future__ import annotations

from typing import Any

from ..sim.process import ProcessContext
from .homega_majority import HOmegaMajorityConsensus

__all__ = ["AnonymousAOmegaConsensus"]


class AnonymousAOmegaConsensus(HOmegaMajorityConsensus):
    """Round-based AΩ + majority consensus for anonymous systems."""

    def __init__(
        self,
        proposal: Any,
        *,
        n: int,
        t: int | None = None,
        detector_name: str = "AOmega",
        record_outputs: bool = True,
    ) -> None:
        super().__init__(
            proposal,
            n=n,
            t=t,
            detector_name=detector_name,
            use_coordination_phase=False,
            record_outputs=record_outputs,
        )

    def considers_itself_leader(self, ctx: ProcessContext) -> bool:
        return bool(ctx.detector(self.detector_name).a_leader)

    def leader_multiplicity(self, ctx: ProcessContext) -> int:
        return 1

    def describe(self) -> str:
        return "Baseline consensus (AΩ, anonymous, majority)"
