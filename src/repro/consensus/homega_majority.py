"""Figure 8: consensus in ``HAS[t < n/2, HΩ]``.

The algorithm runs in rounds of four phases:

* **Leaders' Coordination Phase** — every process broadcasts
  ``COORD(id(p), r, est1)``.  A process that considers itself a leader
  (its HΩ detector names its own identifier) waits until it has received one
  ``COORD`` of its own identifier for this round from each of its
  ``h_multiplicity`` homonymous leaders, then adopts the minimum of their
  estimates.  This is the paper's addition over the anonymous algorithm it is
  derived from: it makes all homonymous leaders eventually propose the same
  value (Lemma 7).
* **Phase 0** — leaders broadcast their estimate; non-leaders wait for a
  leader's ``PH0`` and adopt it.
* **Phase 1** — everybody broadcasts its estimate and waits for ``n − t`` of
  them; if more than ``n/2`` carry the same value ``v`` the process keeps
  ``v``, otherwise ``⊥``.
* **Phase 2** — everybody broadcasts the Phase 1 outcome and waits for
  ``n − t`` of them; a process that sees only ``v ≠ ⊥`` decides ``v``, one
  that sees ``v`` and ``⊥`` adopts ``v`` for the next round, one that sees
  only ``⊥`` keeps its estimate.

Decisions are propagated by the reliable ``DECIDE`` relay of the base class.

The class also serves as the skeleton for the baselines: subclasses override
the two leader hooks to plug in Ω or AΩ instead of HΩ, and the ablation
subclass disables the coordination phase.
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError
from ..sim.process import ProcessContext
from .base import BOTTOM, ConsensusProgram

__all__ = ["HOmegaMajorityConsensus"]


class HOmegaMajorityConsensus(ConsensusProgram):
    """The Figure 8 algorithm (code for one process)."""

    def __init__(
        self,
        proposal: Any,
        *,
        n: int,
        t: int | None = None,
        detector_name: str = "HOmega",
        use_coordination_phase: bool = True,
        record_outputs: bool = True,
    ) -> None:
        """``n`` is the (known) system size; ``t`` the assumed maximum number of
        crashes, defaulting to the largest minority ``⌈n/2⌉ − 1``."""
        super().__init__(proposal, record_outputs=record_outputs)
        if n <= 0:
            raise ConfigurationError("the system size n must be positive")
        if t is None:
            t = (n - 1) // 2
        if not 0 <= t < n / 2:
            raise ConfigurationError(
                f"Figure 8 requires a majority of correct processes (t < n/2); got t={t}, n={n}"
            )
        self.n = n
        self.t = t
        self.detector_name = detector_name
        self.use_coordination_phase = use_coordination_phase

    # ------------------------------------------------------------------
    # Leader hooks (overridden by the Ω / AΩ baselines)
    # ------------------------------------------------------------------
    def considers_itself_leader(self, ctx: ProcessContext) -> bool:
        """Whether the underlying detector currently names this process a leader."""
        return ctx.detector(self.detector_name).h_leader == ctx.identity

    def leader_multiplicity(self, ctx: ProcessContext) -> int:
        """How many homonymous leaders the detector currently reports."""
        return ctx.detector(self.detector_name).h_multiplicity

    # ------------------------------------------------------------------
    # One round (Lines 7-35 of Figure 8)
    # ------------------------------------------------------------------
    def run_round(self, ctx: ProcessContext, round_number: int):
        yield from self._coordination_phase(ctx, round_number)
        if self.decided:
            return
        yield from self._phase_zero(ctx, round_number)
        if self.decided:
            return
        estimate_after_phase_one = yield from self._phase_one(ctx, round_number)
        if self.decided:
            return
        yield from self._phase_two(ctx, round_number, estimate_after_phase_one)

    # -- Leaders' Coordination Phase --------------------------------------
    def _coordination_phase(self, ctx: ProcessContext, round_number: int):
        ctx.broadcast(
            "COORD", round=round_number, identity=ctx.identity, estimate=self.est1
        )
        if not self.use_coordination_phase:
            return
        yield ctx.wait_until(
            lambda: self.decided
            or not self.considers_itself_leader(ctx)
            or self.count_matching("COORD", round_number, identity=ctx.identity)
            >= self.leader_multiplicity(ctx)
        )
        if self.decided:
            return
        own_estimates = self.estimates("COORD", round_number, identity=ctx.identity)
        if own_estimates:
            # Lines 12-14: adopt the smallest estimate among homonymous leaders.
            self.est1 = min(own_estimates)

    # -- Phase 0 -----------------------------------------------------------
    def _phase_zero(self, ctx: ProcessContext, round_number: int):
        yield ctx.wait_until(
            lambda: self.decided
            or self.considers_itself_leader(ctx)
            or self.has_message("PH0", round_number)
        )
        if self.decided:
            return
        ph0_estimates = self.estimates("PH0", round_number)
        if ph0_estimates:
            self.est1 = ph0_estimates[0]
        ctx.broadcast("PH0", round=round_number, estimate=self.est1)

    # -- Phase 1 -----------------------------------------------------------
    def _phase_one(self, ctx: ProcessContext, round_number: int):
        ctx.broadcast("PH1", round=round_number, estimate=self.est1)
        required = self.n - self.t
        yield ctx.wait_until(
            lambda: self.decided or self.count("PH1", round_number) >= required
        )
        if self.decided:
            return BOTTOM
        received = self.estimates("PH1", round_number)
        for value in set(received):
            if received.count(value) > self.n / 2:
                return value
        return BOTTOM

    # -- Phase 2 -----------------------------------------------------------
    def _phase_two(self, ctx: ProcessContext, round_number: int, est2: Any):
        ctx.broadcast("PH2", round=round_number, estimate=est2)
        required = self.n - self.t
        yield ctx.wait_until(
            lambda: self.decided or self.count("PH2", round_number) >= required
        )
        if self.decided:
            return
        received = set(self.estimates("PH2", round_number))
        non_bottom = received - {BOTTOM}
        if len(non_bottom) == 1:
            value = next(iter(non_bottom))
            if received == non_bottom:
                # Line 32: every received estimate is the same non-⊥ value.
                self.decide(ctx, value)
                return
            # Line 33: both v and ⊥ were received — adopt v for the next round.
            self.est1 = value
        # Line 34: only ⊥ received — keep the current estimate.

    def describe(self) -> str:
        return "Figure-8 consensus (HΩ, majority)"
