"""Figure 9: consensus in ``HAS[HΩ, HΣ]`` — any number of crashes, ``n`` unknown.

The round structure mirrors Figure 8 (Leaders' Coordination Phase, Phase 0),
but Phases 1 and 2 replace the "wait for ``n − t`` messages" quorums with the
HΣ detector's quorums:

* every ``PH1``/``PH2`` message carries the sender's identifier, the current
  *sub-round*, the sender's current ``h_labels``, and its estimate;
* a process exits the phase when it can assemble, for some pair
  ``(x, mset) ∈ h_quora``, a set ``M`` of messages of one sub-round whose
  senders all carry label ``x`` and whose identifier multiset equals ``mset``;
* whenever its own ``h_labels`` grows, or it learns that another process
  moved to a higher sub-round, it enters a new sub-round and re-broadcasts its
  message with the fresh labels, so quorum assembly can catch up with the
  detector's evolution.

Phase 2 additionally exits when a ``COORD`` message of the next round shows
that somebody already moved on.  Decisions propagate through the ``DECIDE``
relay of the base class, so correct processes stuck in a phase after others
decided still terminate.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..identity import IdentityMultiset
from ..sim.message import Message
from ..sim.process import ProcessContext
from .base import BOTTOM, ConsensusProgram

__all__ = ["HOmegaHSigmaConsensus"]


class HOmegaHSigmaConsensus(ConsensusProgram):
    """The Figure 9 algorithm (code for one process)."""

    def __init__(
        self,
        proposal: Any,
        *,
        homega_name: str = "HOmega",
        hsigma_name: str = "HSigma",
        record_outputs: bool = True,
    ) -> None:
        super().__init__(proposal, record_outputs=record_outputs)
        self.homega_name = homega_name
        self.hsigma_name = hsigma_name

    # ------------------------------------------------------------------
    # Detector accessors
    # ------------------------------------------------------------------
    def _homega(self, ctx: ProcessContext):
        return ctx.detector(self.homega_name)

    def _hsigma(self, ctx: ProcessContext):
        return ctx.detector(self.hsigma_name)

    def considers_itself_leader(self, ctx: ProcessContext) -> bool:
        """Whether the HΩ detector currently names this process a leader."""
        return self._homega(ctx).h_leader == ctx.identity

    def leader_multiplicity(self, ctx: ProcessContext) -> int:
        """The number of homonymous leaders reported by the HΩ detector."""
        return self._homega(ctx).h_multiplicity

    # ------------------------------------------------------------------
    # One round (Lines 7-62 of Figure 9)
    # ------------------------------------------------------------------
    def run_round(self, ctx: ProcessContext, round_number: int):
        yield from self._coordination_phase(ctx, round_number)
        if self.decided:
            return
        yield from self._phase_zero(ctx, round_number)
        if self.decided:
            return
        est2 = yield from self._phase_one(ctx, round_number)
        if self.decided:
            return
        yield from self._phase_two(ctx, round_number, est2)

    # -- Leaders' Coordination Phase and Phase 0 (identical to Figure 8) ----
    def _coordination_phase(self, ctx: ProcessContext, round_number: int):
        ctx.broadcast(
            "COORD", round=round_number, identity=ctx.identity, estimate=self.est1
        )
        yield ctx.wait_until(
            lambda: self.decided
            or not self.considers_itself_leader(ctx)
            or self.count_matching("COORD", round_number, identity=ctx.identity)
            >= self.leader_multiplicity(ctx)
        )
        if self.decided:
            return
        own_estimates = self.estimates("COORD", round_number, identity=ctx.identity)
        if own_estimates:
            self.est1 = min(own_estimates)

    def _phase_zero(self, ctx: ProcessContext, round_number: int):
        yield ctx.wait_until(
            lambda: self.decided
            or self.considers_itself_leader(ctx)
            or self.has_message("PH0", round_number)
        )
        if self.decided:
            return
        ph0_estimates = self.estimates("PH0", round_number)
        if ph0_estimates:
            self.est1 = ph0_estimates[0]
        ctx.broadcast("PH0", round=round_number, estimate=self.est1)

    # -- Phase 1 (Lines 19-38) ----------------------------------------------
    def _phase_one(self, ctx: ProcessContext, round_number: int):
        sub_round = 1
        current_labels = frozenset(self._hsigma(ctx).h_labels)
        self._broadcast_phase_message(ctx, "PH1", round_number, sub_round, current_labels, self.est1)
        while True:
            if self.decided:
                return BOTTOM
            # Lines 23-24: a PH2 of this round short-circuits the phase.
            ph2_messages = self.messages("PH2", round_number)
            if ph2_messages:
                return ph2_messages[0]["estimate"]
            # Lines 25-31: try to assemble a quorum of PH1 messages.
            quorum = self._find_quorum(ctx, "PH1", round_number)
            if quorum is not None:
                estimates = {message["estimate"] for message in quorum}
                return estimates.pop() if len(estimates) == 1 else BOTTOM
            # Lines 32-36: new labels or a higher sub-round force a re-broadcast.
            if self._should_advance_sub_round(ctx, "PH1", round_number, sub_round, current_labels):
                sub_round += 1
                current_labels = frozenset(self._hsigma(ctx).h_labels)
                self._broadcast_phase_message(
                    ctx, "PH1", round_number, sub_round, current_labels, self.est1
                )
                continue
            yield ctx.wait_until(
                self._phase_wait_predicate(ctx, "PH1", round_number, sub_round, current_labels,
                                           also_exit_on_next_round_coord=False)
            )

    # -- Phase 2 (Lines 39-61) ----------------------------------------------
    def _phase_two(self, ctx: ProcessContext, round_number: int, est2: Any):
        sub_round = 1
        current_labels = frozenset(self._hsigma(ctx).h_labels)
        self._broadcast_phase_message(ctx, "PH2", round_number, sub_round, current_labels, est2)
        while True:
            if self.decided:
                return
            # Lines 43-44: somebody already started the next round.
            if self.has_message("COORD", round_number + 1):
                return
            # Lines 45-54: try to assemble a quorum of PH2 messages.
            quorum = self._find_quorum(ctx, "PH2", round_number)
            if quorum is not None:
                received = {message["estimate"] for message in quorum}
                non_bottom = received - {BOTTOM}
                if len(non_bottom) == 1:
                    value = next(iter(non_bottom))
                    if received == non_bottom:
                        self.decide(ctx, value)
                        return
                    self.est1 = value
                return
            # Lines 55-59: new labels or a higher sub-round force a re-broadcast.
            if self._should_advance_sub_round(ctx, "PH2", round_number, sub_round, current_labels):
                sub_round += 1
                current_labels = frozenset(self._hsigma(ctx).h_labels)
                self._broadcast_phase_message(
                    ctx, "PH2", round_number, sub_round, current_labels, est2
                )
                continue
            yield ctx.wait_until(
                self._phase_wait_predicate(ctx, "PH2", round_number, sub_round, current_labels,
                                           also_exit_on_next_round_coord=True)
            )

    # ------------------------------------------------------------------
    # Quorum assembly and sub-round bookkeeping
    # ------------------------------------------------------------------
    def _broadcast_phase_message(
        self,
        ctx: ProcessContext,
        kind: str,
        round_number: int,
        sub_round: int,
        labels: frozenset,
        estimate: Any,
    ) -> None:
        ctx.broadcast(
            kind,
            round=round_number,
            identity=ctx.identity,
            sub_round=sub_round,
            labels=tuple(labels),
            estimate=estimate,
        )

    def _find_quorum(
        self, ctx: ProcessContext, kind: str, round_number: int
    ) -> list[Message] | None:
        """Find a message set ``M`` realising some pair of ``h_quora`` (Lines 25-28/45-48).

        All messages of ``M`` belong to the same sub-round, every sender's
        announced labels contain the pair's label, and the multiset of sender
        identifiers equals the pair's multiset.  The first feasible pair (in a
        deterministic order) is returned.
        """
        received = self.messages(kind, round_number)
        if not received:
            return None
        pairs = sorted(self._hsigma(ctx).h_quora, key=repr)
        sub_rounds = sorted({message["sub_round"] for message in received})
        for label, multiset in pairs:
            if not isinstance(multiset, IdentityMultiset):
                multiset = IdentityMultiset(multiset)
            for sub_round in sub_rounds:
                candidates = [
                    message
                    for message in received
                    if message["sub_round"] == sub_round and label in message["labels"]
                ]
                chosen = self._select_messages_matching(candidates, multiset)
                if chosen is not None:
                    return chosen
        return None

    @staticmethod
    def _select_messages_matching(
        candidates: Iterable[Message], multiset: IdentityMultiset
    ) -> list[Message] | None:
        """Pick, per identifier, the required number of candidate messages."""
        chosen: list[Message] = []
        remaining = dict(multiset.counts)
        if not remaining:
            return None
        for message in candidates:
            identity = message["identity"]
            if remaining.get(identity, 0) > 0:
                chosen.append(message)
                remaining[identity] -= 1
        if any(count > 0 for count in remaining.values()):
            return None
        return chosen

    def _should_advance_sub_round(
        self,
        ctx: ProcessContext,
        kind: str,
        round_number: int,
        sub_round: int,
        current_labels: frozenset,
    ) -> bool:
        if frozenset(self._hsigma(ctx).h_labels) != current_labels:
            return True
        return any(
            message["sub_round"] > sub_round for message in self.messages(kind, round_number)
        )

    def _phase_wait_predicate(
        self,
        ctx: ProcessContext,
        kind: str,
        round_number: int,
        sub_round: int,
        current_labels: frozenset,
        *,
        also_exit_on_next_round_coord: bool,
    ):
        def predicate() -> bool:
            if self.decided:
                return True
            if kind == "PH1" and self.messages("PH2", round_number):
                return True
            if also_exit_on_next_round_coord and self.has_message("COORD", round_number + 1):
                return True
            if self._find_quorum(ctx, kind, round_number) is not None:
                return True
            return self._should_advance_sub_round(
                ctx, kind, round_number, sub_round, current_labels
            )

        return predicate

    def describe(self) -> str:
        return "Figure-9 consensus (HΩ + HΣ)"
