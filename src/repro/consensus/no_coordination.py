"""Ablation: Figure 8 without the Leaders' Coordination Phase.

The paper presents the coordination phase as the main algorithmic change
needed to move from the anonymous AΩ algorithm to the homonymous HΩ one:
without it, several homonymous leaders may keep broadcasting *different*
estimates in Phase 0, non-leaders adopt whichever they hear first, Phase 1
then fails to gather a majority for a single value, and the round ends
undecided — potentially forever.

This class is that broken variant, kept only for the E7 ablation, which
measures how often runs with multiple homonymous leaders fail to decide
within a generous horizon (and confirms the full algorithm always decides).
"""

from __future__ import annotations

from typing import Any

from .homega_majority import HOmegaMajorityConsensus

__all__ = ["NoCoordinationConsensus"]


class NoCoordinationConsensus(HOmegaMajorityConsensus):
    """Figure 8 with the Leaders' Coordination Phase removed (ablation only)."""

    def __init__(
        self,
        proposal: Any,
        *,
        n: int,
        t: int | None = None,
        detector_name: str = "HOmega",
        record_outputs: bool = True,
    ) -> None:
        super().__init__(
            proposal,
            n=n,
            t=t,
            detector_name=detector_name,
            use_coordination_phase=False,
            record_outputs=record_outputs,
        )

    def describe(self) -> str:
        return "Ablation: Figure-8 without Leaders' Coordination Phase"
