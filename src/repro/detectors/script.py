"""Oracle for the auxiliary class ℰ (Definition 1 of the paper).

A detector of class ℰ gives each process a *sequence* ``alive`` of
identifiers such that eventually the identifiers of the correct processes are
permanently in the prefix: for every correct ``q``,
``rank(id(q), alive_p) ≤ |Correct|``.

The class is only defined for systems with unique identifiers; it is used by
the Figure 4 reduction (HΣ → Σ) to pick, among candidate quorums, one made of
low-ranked — eventually correct — processes.  The message-passing
implementation of ℰ (Figure 3) lives in :mod:`repro.algorithms.script_alive`.
"""

from __future__ import annotations

from ..errors import DetectorError
from ..identity import ProcessId
from ..sim.system import DetectorServices
from .base import OracleDetector, stable_draw
from .views import ScriptEView

__all__ = ["ScriptEOracle"]


class ScriptEOracle(OracleDetector):
    """Ground-truth ℰ: correct identifiers ranked first after stabilization."""

    def __init__(self, services: DetectorServices, **kwargs) -> None:
        if not services.membership.is_uniquely_identified:
            raise DetectorError(
                "class ℰ is only defined for systems with unique identifiers"
            )
        super().__init__(services, **kwargs)

    def view_for(self, process: ProcessId) -> ScriptEView:
        def read_alive() -> tuple:
            members = list(self.membership.processes)
            if self.stabilized:
                # Correct processes first (each group ordered deterministically).
                members.sort(
                    key=lambda other: (not self.pattern.is_correct(other), other.index)
                )
            else:
                # An arbitrary—but deterministic—pre-stabilization order that
                # differs across processes and noise windows.
                members.sort(
                    key=lambda other: stable_draw(process.index, self.noise_window(), other.index)
                )
            return tuple(self.membership.identity_of(other) for other in members)

        return ScriptEView(read_alive)
