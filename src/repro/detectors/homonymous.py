"""Oracles for the homonymous failure-detector classes ◇HP, HΩ, and HΣ.

These are the classes the paper introduces.  The oracles realise them from the
failure pattern so consensus algorithms can be evaluated in ``HAS[HΩ]`` and
``HAS[HΩ, HΣ]`` exactly as the paper states them; the message-passing
*implementations* of the same classes live in :mod:`repro.algorithms`.
"""

from __future__ import annotations

from ..identity import Identity, IdentityMultiset, ProcessId
from ..sim.system import DetectorServices
from .base import OracleDetector, stable_draw
from .views import DiamondHPView, HOmegaView, HSigmaView

__all__ = ["DiamondHPOracle", "HOmegaOracle", "HSigmaOracle"]

#: Label whose quorum is the whole membership (safe pre-stabilization output).
_LABEL_ALL = "hΣ:all"
#: Label whose quorum is the correct set (the liveness-providing pairs).
_LABEL_CORRECT = "hΣ:correct"


class DiamondHPOracle(OracleDetector):
    """◇HP: ``h_trusted`` eventually equals the multiset ``I(Correct)``.

    Before stabilization the oracle trusts every currently alive process,
    which over-approximates ``I(Correct)`` in the multiset-inclusion order.
    """

    def view_for(self, process: ProcessId) -> DiamondHPView:
        def read_trusted() -> IdentityMultiset:
            if self.stabilized:
                members = sorted(self.pattern.correct)
            else:
                members = sorted(self.pattern.alive_at(self.clock.now))
            return self.membership.identity_multiset(members)

        return DiamondHPView(read_trusted)


class HOmegaOracle(OracleDetector):
    """HΩ: eventually every correct process sees the same correct identifier
    together with its multiplicity among the correct processes.

    The eventual leader identifier is the smallest identifier carried by a
    correct process (smallest by representation, matching the deterministic
    choice Observation 1 makes when deriving HΩ from ◇HP).  Before
    stabilization each process sees a pseudo-random identifier from ``I(Π)``
    with an arbitrary multiplicity, re-drawn every noise window, so consensus
    algorithms are exercised against multiple simultaneous self-styled
    leaders — the situation the Leaders' Coordination Phase exists for.
    """

    def eventual_leader(self) -> tuple[Identity, int]:
        """The eventual ``(h_leader, h_multiplicity)`` pair of this run."""
        correct_ids = self.correct_identities()
        leader = min(correct_ids.support(), key=repr)
        return leader, correct_ids.multiplicity(leader)

    def leader_processes(self) -> frozenset[ProcessId]:
        """The correct processes carrying the eventual leader identifier."""
        leader, _ = self.eventual_leader()
        return frozenset(
            process
            for process in self.pattern.correct
            if self.membership.identity_of(process) == leader
        )

    def view_for(self, process: ProcessId) -> HOmegaView:
        all_ids = sorted(self.membership.identity_multiset().support(), key=repr)

        def read_pair() -> tuple[Identity, int]:
            if self.stabilized:
                return self.eventual_leader()
            draw = stable_draw(process.index, self.noise_window(), "hΩ")
            identity = all_ids[draw % len(all_ids)]
            multiplicity = 1 + (draw // 7) % self.membership.size
            return identity, multiplicity

        return HOmegaView(read_pair)


class HSigmaOracle(OracleDetector):
    """HΣ: quorum system over identifier multisets.

    * ``h_labels``: every process always participates in the ``all`` quorum;
      correct processes additionally participate in the ``correct`` quorum
      from the stabilization time on.  Labels only ever grow (monotonicity).
    * ``h_quora``: every process always knows the pair ``(all, I(Π))``;
      from the stabilization time on it also knows ``(correct, I(Correct))``.

    Safety holds because a quorum matching ``I(Π)`` must be the whole process
    set and a quorum matching ``I(Correct)`` drawn from holders of the
    ``correct`` label must be the correct set itself — and both intersect any
    other such quorum (the correct set is non-empty).  Liveness holds because
    the ``correct`` pair names a multiset entirely covered by correct label
    holders.

    Note the oracle needs the full membership ``I(Π)`` — which an algorithm
    without membership knowledge could not know.  That is exactly why HΣ needs
    either the synchronous implementation of Figure 7 or a reduction from a
    stronger class; as an oracle it is allowed this knowledge.
    """

    def view_for(self, process: ProcessId) -> HSigmaView:
        everyone = self.membership.identity_multiset()

        def read_quora() -> frozenset:
            pairs = {(_LABEL_ALL, everyone)}
            if self.stabilized:
                pairs.add((_LABEL_CORRECT, self.correct_identities()))
            return frozenset(pairs)

        def read_labels() -> frozenset:
            labels = {_LABEL_ALL}
            if self.stabilized and self.pattern.is_correct(process):
                labels.add(_LABEL_CORRECT)
            return frozenset(labels)

        return HSigmaView(read_quora, read_labels)

    def label_holders(self, label: str) -> frozenset[ProcessId]:
        """``S(label)``: processes that ever carry ``label`` in ``h_labels``."""
        if label == _LABEL_ALL:
            return frozenset(self.membership.processes)
        if label == _LABEL_CORRECT:
            return self.pattern.correct
        return frozenset()
