"""Failure-detector classes, oracles, query views, and property checkers.

The paper works with three families of failure-detector classes:

* classical (unique identifiers): ``P``, ``◇P`` (its complement), ``Ω``, ``Σ``;
* anonymous: ``AP``, ``AΩ``, ``AΣ``;
* homonymous (this paper's contribution): ``◇HP``, ``HΩ``, ``HΣ``;

plus the auxiliary class ``ℰ`` (Definition 1) used by the HΣ → Σ reduction.

For every class this package provides:

* a *query view* — the per-process variables the class exposes
  (:mod:`repro.detectors.views`);
* an *oracle* — a ground-truth implementation parameterised by a
  stabilization time, used to enrich asynchronous systems exactly as the
  paper writes ``HAS[HΩ]`` (:mod:`repro.detectors.classical`,
  :mod:`repro.detectors.anonymous`, :mod:`repro.detectors.homonymous`,
  :mod:`repro.detectors.script`);
* a *property checker* that validates a recorded output trace against the
  run's failure pattern (:mod:`repro.detectors.properties`).
"""

from .anonymous import AOmegaOracle, APOracle, ASigmaOracle
from .base import OracleDetector, OutputKeys
from .classes import DetectorClass, detector_catalog
from .classical import DiamondPOracle, OmegaOracle, PerfectOracle, SigmaOracle
from .homonymous import DiamondHPOracle, HOmegaOracle, HSigmaOracle
from .properties import (
    CheckResult,
    check_aomega_election,
    check_ap,
    check_asigma,
    check_diamond_hp,
    check_diamond_p,
    check_homega_election,
    check_hsigma,
    check_omega_election,
    check_script_e,
    check_sigma,
)
from .probe import (
    DetectorProbeProgram,
    aomega_probes,
    ap_probes,
    asigma_probes,
    diamond_hp_probes,
    diamond_p_probes,
    homega_probes,
    hsigma_probes,
    omega_probes,
    script_e_probes,
    sigma_probes,
)
from .script import ScriptEOracle
from .views import (
    AOmegaView,
    APView,
    ASigmaView,
    DiamondHPView,
    DiamondPView,
    HOmegaView,
    HSigmaView,
    OmegaView,
    ScriptEView,
    SigmaView,
)

__all__ = [
    "AOmegaOracle",
    "AOmegaView",
    "APOracle",
    "APView",
    "ASigmaOracle",
    "ASigmaView",
    "CheckResult",
    "DetectorClass",
    "DetectorProbeProgram",
    "DiamondHPOracle",
    "DiamondHPView",
    "DiamondPOracle",
    "DiamondPView",
    "HOmegaOracle",
    "HOmegaView",
    "HSigmaOracle",
    "HSigmaView",
    "OmegaOracle",
    "OmegaView",
    "OracleDetector",
    "OutputKeys",
    "PerfectOracle",
    "ScriptEOracle",
    "ScriptEView",
    "SigmaOracle",
    "SigmaView",
    "check_aomega_election",
    "check_ap",
    "check_asigma",
    "check_diamond_hp",
    "check_diamond_p",
    "check_homega_election",
    "check_hsigma",
    "check_omega_election",
    "check_script_e",
    "check_sigma",
    "detector_catalog",
    "aomega_probes",
    "ap_probes",
    "asigma_probes",
    "diamond_hp_probes",
    "diamond_p_probes",
    "homega_probes",
    "hsigma_probes",
    "omega_probes",
    "script_e_probes",
    "sigma_probes",
]
