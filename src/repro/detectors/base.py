"""Oracle base class and standard trace keys for detector outputs.

An *oracle* is a ground-truth failure detector: it computes its output from
the run's failure pattern instead of from messages.  Oracles are how the paper
enriches a system with a detector class — ``HAS[HΩ]`` means "asynchronous
homonymous system where each process can query an HΩ black box" — without
saying anything about how the box is built.

Every oracle takes a *stabilization time*.  Before it, the oracle may output
arbitrary (but type-correct and safety-preserving) values, optionally
different across processes and changing over time; from the stabilization time
on it outputs the eventual values the class definition promises.  This lets
tests and experiments control how long consensus has to cope with an unstable
detector.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import DetectorError
from ..identity import ProcessId
from ..sim.clock import Time
from ..sim.system import DetectorServices

__all__ = ["OutputKeys", "OracleDetector", "stable_draw"]


def stable_draw(*parts: object) -> int:
    """A deterministic pseudo-random integer derived from ``parts``.

    Oracles use this (instead of Python's ``hash``, which is randomised per
    interpreter run) for their pre-stabilization "noise", so complete runs are
    reproducible across processes and machines for a fixed configuration.
    """
    digest = hashlib.sha256(repr(parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class OutputKeys:
    """Standard trace keys under which detector outputs are recorded.

    Emulated detectors (reductions and message-passing implementations) record
    their output variables under these keys so the property checkers can find
    them regardless of which algorithm produced them.
    """

    H_LEADER: str = "HOmega.h_leader"
    H_MULTIPLICITY: str = "HOmega.h_multiplicity"
    H_TRUSTED: str = "DiamondHP.h_trusted"
    H_QUORA: str = "HSigma.h_quora"
    H_LABELS: str = "HSigma.h_labels"
    SIGMA_TRUSTED: str = "Sigma.trusted"
    DIAMOND_P_TRUSTED: str = "DiamondP.trusted"
    OMEGA_LEADER: str = "Omega.leader"
    SCRIPT_E_ALIVE: str = "ScriptE.alive"
    AP_ANAP: str = "AP.anap"
    A_OMEGA_LEADER: str = "AOmega.a_leader"
    A_SIGMA_PAIRS: str = "ASigma.a_sigma"


#: Singleton instance used throughout the code base.
KEYS = OutputKeys()


class OracleDetector:
    """Common machinery for ground-truth detectors.

    Concrete oracles implement :meth:`view_for` (returning the class-specific
    view) in terms of :meth:`stabilized` and the failure pattern held in
    ``self.pattern``.
    """

    def __init__(
        self,
        services: DetectorServices,
        *,
        stabilization_time: Time | None = None,
        noise_period: Time | None = None,
    ) -> None:
        self.services = services
        self.membership = services.membership
        self.pattern = services.failure_pattern
        self.clock = services.clock
        if stabilization_time is None:
            # By default the oracle stabilises shortly after the last crash,
            # which is the earliest time a real detector could possibly settle.
            stabilization_time = self.pattern.last_crash_time() + 1.0
        if stabilization_time < 0:
            raise DetectorError("the stabilization time cannot be negative")
        self.stabilization_time = float(stabilization_time)
        self.noise_period = noise_period
        self._rng = services.rng_streams.stream(f"oracle:{type(self).__name__}")
        self._schedule_wakeups()

    # ------------------------------------------------------------------
    # Wake-ups: blocked processes must be re-evaluated when outputs change.
    # ------------------------------------------------------------------
    def _schedule_wakeups(self) -> None:
        self.services.schedule(self.stabilization_time, self.services.poke_all)
        if self.noise_period and self.noise_period > 0:
            boundary = self.noise_period
            while boundary < self.stabilization_time:
                self.services.schedule(boundary, self.services.poke_all)
                boundary += self.noise_period

    # ------------------------------------------------------------------
    # Helpers for concrete oracles
    # ------------------------------------------------------------------
    @property
    def stabilized(self) -> bool:
        """Whether the oracle has reached its stabilization time."""
        return self.clock.now >= self.stabilization_time

    def noise_window(self) -> int:
        """The index of the current pre-stabilization noise window.

        Oracles that output changing pre-stabilization values key their choice
        on ``(process, noise_window())`` so the output is deterministic within
        a window and changes across windows.
        """
        if not self.noise_period or self.noise_period <= 0:
            return 0
        return int(self.clock.now / self.noise_period)

    def correct_identities(self):
        """``I(Correct)`` for this run."""
        return self.pattern.correct_identity_multiset()

    def view_for(self, process: ProcessId):
        """Return the per-process query view (implemented by subclasses)."""
        raise NotImplementedError
