"""Property checkers for failure-detector output traces.

Emulated detectors (reductions and message-passing implementations) record
their output variables into the run trace under the standard keys of
:class:`~repro.detectors.base.OutputKeys`.  The functions in this module take
such a trace together with the run's failure pattern and decide whether the
recorded behaviour satisfies the defining properties of the target class —
election for HΩ/Ω/AΩ, liveness for ◇HP/◇P̄/ℰ/AP, and the
validity/monotonicity/liveness/safety quadruple for HΣ/Σ/AΣ.

"Eventual" properties are judged against the *final* recorded value of every
correct process (the run must have been long enough for the algorithm to
settle); perpetual properties (safety, validity, monotonicity) are judged
against every recorded snapshot of every process, faulty ones included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..identity import Identity, IdentityMultiset, ProcessId
from ..sim.clock import Time
from ..sim.failures import FailurePattern
from ..sim.trace import RunTrace
from .base import OutputKeys

__all__ = [
    "CheckResult",
    "check_homega_election",
    "check_diamond_hp",
    "check_diamond_p",
    "check_omega_election",
    "check_sigma",
    "check_script_e",
    "check_ap",
    "check_aomega_election",
    "check_asigma",
    "check_hsigma",
]

KEYS = OutputKeys()


@dataclass(frozen=True)
class CheckResult:
    """The verdict of one property check."""

    ok: bool
    violations: tuple[str, ...] = ()
    stabilization_time: Time | None = None
    details: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok

    @classmethod
    def from_violations(
        cls,
        violations: Iterable[str],
        *,
        stabilization_time: Time | None = None,
        details: dict | None = None,
    ) -> "CheckResult":
        violations = tuple(violations)
        return cls(
            ok=not violations,
            violations=violations,
            stabilization_time=stabilization_time,
            details=details or {},
        )


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _final_values(
    trace: RunTrace,
    pattern: FailurePattern,
    key: str,
    violations: list[str],
) -> dict[ProcessId, Any]:
    """Final recorded value of ``key`` for every correct process."""
    finals: dict[ProcessId, Any] = {}
    for process in sorted(pattern.correct):
        records = trace.records_of(process, key)
        if not records:
            violations.append(f"correct process {process!r} never recorded {key!r}")
            continue
        finals[process] = records[-1].value
    return finals


def _stabilization_time(
    trace: RunTrace, processes: Iterable[ProcessId], key: str
) -> Time | None:
    """Earliest time from which every given process holds its final value of ``key``."""
    times: list[Time] = []
    for process in processes:
        records = trace.records_of(process, key)
        if not records:
            return None
        final = records[-1].value
        stable = trace.first_time_value_holds(process, key, lambda value: value == final)
        if stable is None:
            return None
        times.append(stable)
    return max(times) if times else None


def _joint_stabilization(*times: Time | None) -> Time | None:
    known = [time for time in times if time is not None]
    if len(known) != len(times):
        return None
    return max(known) if known else None


# ----------------------------------------------------------------------
# HΩ — election (the paper's Section 3.2 definition)
# ----------------------------------------------------------------------
def check_homega_election(
    trace: RunTrace,
    pattern: FailurePattern,
    *,
    leader_key: str = KEYS.H_LEADER,
    multiplicity_key: str = KEYS.H_MULTIPLICITY,
) -> CheckResult:
    """Check the HΩ election property.

    Eventually every correct process permanently holds the same identifier
    ``ℓ ∈ I(Correct)`` in ``h_leader`` and ``mult_{I(Correct)}(ℓ)`` in
    ``h_multiplicity``.
    """
    violations: list[str] = []
    leaders = _final_values(trace, pattern, leader_key, violations)
    multiplicities = _final_values(trace, pattern, multiplicity_key, violations)
    correct_ids = pattern.correct_identity_multiset()

    if leaders:
        distinct = set(leaders.values())
        if len(distinct) > 1:
            violations.append(f"correct processes disagree on the leader: {sorted(map(repr, distinct))}")
        else:
            leader = next(iter(distinct))
            if leader not in correct_ids:
                violations.append(
                    f"the elected identifier {leader!r} does not belong to any correct process"
                )
            expected_multiplicity = correct_ids.multiplicity(leader)
            for process, multiplicity in multiplicities.items():
                if multiplicity != expected_multiplicity:
                    violations.append(
                        f"{process!r} reports multiplicity {multiplicity} for {leader!r}, "
                        f"expected {expected_multiplicity}"
                    )
    stabilization = _joint_stabilization(
        _stabilization_time(trace, pattern.correct, leader_key),
        _stabilization_time(trace, pattern.correct, multiplicity_key),
    )
    return CheckResult.from_violations(
        violations,
        stabilization_time=stabilization,
        details={"leaders": {p: v for p, v in leaders.items()}},
    )


# ----------------------------------------------------------------------
# ◇HP and ◇P̄ — eventual exact knowledge of the correct processes
# ----------------------------------------------------------------------
def check_diamond_hp(
    trace: RunTrace,
    pattern: FailurePattern,
    *,
    key: str = KEYS.H_TRUSTED,
) -> CheckResult:
    """Check ◇HP liveness: eventually ``h_trusted = I(Correct)`` forever."""
    violations: list[str] = []
    finals = _final_values(trace, pattern, key, violations)
    expected = pattern.correct_identity_multiset()
    for process, value in finals.items():
        if not isinstance(value, IdentityMultiset):
            violations.append(f"{process!r} recorded a non-multiset value {value!r}")
            continue
        if value != expected:
            violations.append(
                f"{process!r} converged to {sorted(map(repr, value))}, "
                f"expected I(Correct) = {sorted(map(repr, expected))}"
            )
    return CheckResult.from_violations(
        violations,
        stabilization_time=_stabilization_time(trace, pattern.correct, key),
    )


def check_diamond_p(
    trace: RunTrace,
    pattern: FailurePattern,
    *,
    key: str = KEYS.DIAMOND_P_TRUSTED,
) -> CheckResult:
    """Check ◇P̄ liveness: eventually ``trusted`` equals the correct identifiers."""
    violations: list[str] = []
    finals = _final_values(trace, pattern, key, violations)
    expected = frozenset(
        pattern.membership.identity_of(process) for process in pattern.correct
    )
    for process, value in finals.items():
        if frozenset(value) != expected:
            violations.append(
                f"{process!r} converged to {sorted(map(repr, value))}, "
                f"expected {sorted(map(repr, expected))}"
            )
    return CheckResult.from_violations(
        violations,
        stabilization_time=_stabilization_time(trace, pattern.correct, key),
    )


# ----------------------------------------------------------------------
# Ω and AΩ — election in classical and anonymous systems
# ----------------------------------------------------------------------
def check_omega_election(
    trace: RunTrace,
    pattern: FailurePattern,
    *,
    key: str = KEYS.OMEGA_LEADER,
) -> CheckResult:
    """Check Ω: eventually all correct processes trust the same correct identifier."""
    violations: list[str] = []
    finals = _final_values(trace, pattern, key, violations)
    correct_ids = {
        pattern.membership.identity_of(process) for process in pattern.correct
    }
    if finals:
        distinct = set(finals.values())
        if len(distinct) > 1:
            violations.append(f"correct processes disagree on the leader: {sorted(map(repr, distinct))}")
        elif next(iter(distinct)) not in correct_ids:
            violations.append(
                f"the elected identifier {next(iter(distinct))!r} is not a correct process's identifier"
            )
    return CheckResult.from_violations(
        violations,
        stabilization_time=_stabilization_time(trace, pattern.correct, key),
    )


def check_aomega_election(
    trace: RunTrace,
    pattern: FailurePattern,
    *,
    key: str = KEYS.A_OMEGA_LEADER,
) -> CheckResult:
    """Check AΩ: eventually exactly one correct process holds ``True``."""
    violations: list[str] = []
    finals = _final_values(trace, pattern, key, violations)
    leaders = [process for process, value in finals.items() if value]
    if finals and len(leaders) != 1:
        violations.append(
            f"expected exactly one correct process with a true flag, found {len(leaders)}"
        )
    return CheckResult.from_violations(
        violations,
        stabilization_time=_stabilization_time(trace, pattern.correct, key),
        details={"leaders": leaders},
    )


# ----------------------------------------------------------------------
# Σ — quorums of identifiers (unique-identifier systems)
# ----------------------------------------------------------------------
def check_sigma(
    trace: RunTrace,
    pattern: FailurePattern,
    *,
    key: str = KEYS.SIGMA_TRUSTED,
) -> CheckResult:
    """Check Σ liveness (eventually only correct identifiers) and safety
    (every two quorums ever output intersect)."""
    violations: list[str] = []
    finals = _final_values(trace, pattern, key, violations)
    correct_ids = frozenset(
        pattern.membership.identity_of(process) for process in pattern.correct
    )
    for process, value in finals.items():
        if not frozenset(value) <= correct_ids:
            violations.append(
                f"{process!r} finally trusts {sorted(map(repr, value))}, "
                "which is not a subset of the correct identifiers"
            )

    all_quorums: list[tuple[ProcessId, Time, frozenset]] = []
    for process in pattern.membership.processes:
        for record in trace.records_of(process, key):
            all_quorums.append((process, record.time, frozenset(record.value)))
    for index, (process_a, time_a, quorum_a) in enumerate(all_quorums):
        for process_b, time_b, quorum_b in all_quorums[index:]:
            if not quorum_a & quorum_b:
                violations.append(
                    f"quorums {sorted(map(repr, quorum_a))} (at {process_a!r}, t={time_a}) and "
                    f"{sorted(map(repr, quorum_b))} (at {process_b!r}, t={time_b}) do not intersect"
                )
    return CheckResult.from_violations(
        violations,
        stabilization_time=_stabilization_time(trace, pattern.correct, key),
    )


# ----------------------------------------------------------------------
# ℰ — ranked alive sequence
# ----------------------------------------------------------------------
def check_script_e(
    trace: RunTrace,
    pattern: FailurePattern,
    *,
    key: str = KEYS.SCRIPT_E_ALIVE,
) -> CheckResult:
    """Check ℰ: eventually the correct identifiers occupy the first ``|Correct|`` ranks."""
    violations: list[str] = []
    finals = _final_values(trace, pattern, key, violations)
    correct_count = len(pattern.correct)
    correct_ids = [
        pattern.membership.identity_of(process) for process in sorted(pattern.correct)
    ]
    for process, sequence in finals.items():
        sequence = tuple(sequence)
        for identity in correct_ids:
            if identity not in sequence or sequence.index(identity) + 1 > correct_count:
                violations.append(
                    f"{process!r}: correct identifier {identity!r} does not end up within "
                    f"the first {correct_count} ranks of {sequence!r}"
                )
    return CheckResult.from_violations(
        violations,
        stabilization_time=_stabilization_time(trace, pattern.correct, key),
    )


# ----------------------------------------------------------------------
# AP — eventually tight upper bound on the number of alive processes
# ----------------------------------------------------------------------
def check_ap(
    trace: RunTrace,
    pattern: FailurePattern,
    *,
    key: str = KEYS.AP_ANAP,
) -> CheckResult:
    """Check AP safety (never below the alive count) and liveness (eventually exact)."""
    violations: list[str] = []
    for process in pattern.membership.processes:
        for record in trace.records_of(process, key):
            alive = len(pattern.alive_at(record.time))
            if record.value < alive:
                violations.append(
                    f"{process!r} output {record.value} at t={record.time} while "
                    f"{alive} processes were alive (safety violation)"
                )
    finals = _final_values(trace, pattern, key, violations)
    expected = len(pattern.correct)
    for process, value in finals.items():
        if value != expected:
            violations.append(
                f"{process!r} converged to {value}, expected |Correct| = {expected}"
            )
    return CheckResult.from_violations(
        violations,
        stabilization_time=_stabilization_time(trace, pattern.correct, key),
    )


# ----------------------------------------------------------------------
# AΣ — anonymous quorums (label, size)
# ----------------------------------------------------------------------
def check_asigma(
    trace: RunTrace,
    pattern: FailurePattern,
    *,
    key: str = KEYS.A_SIGMA_PAIRS,
) -> CheckResult:
    """Check the four AΣ properties on a recorded trace."""
    violations: list[str] = []
    snapshots: dict[ProcessId, list[tuple[Time, frozenset]]] = {}
    for process in pattern.membership.processes:
        series = [
            (record.time, frozenset(record.value)) for record in trace.records_of(process, key)
        ]
        if series:
            snapshots[process] = series

    # Validity: no snapshot holds two pairs with the same label.
    for process, series in snapshots.items():
        for time, pairs in series:
            labels = [label for label, _ in pairs]
            if len(labels) != len(set(labels)):
                violations.append(
                    f"{process!r} held two pairs with the same label at t={time}"
                )

    # Monotonicity: once (x, y) appears, later snapshots keep some (x, y' <= y).
    for process, series in snapshots.items():
        for index in range(len(series) - 1):
            _, current = series[index]
            _, following = series[index + 1]
            for label, size in current:
                successors = [s for l, s in following if l == label]
                if not successors or min(successors) > size:
                    violations.append(
                        f"{process!r} dropped or grew the quorum of label {label!r} "
                        "(monotonicity violation)"
                    )

    # S_A(x): processes that ever held a pair with label x.
    holders: dict[Any, set[ProcessId]] = {}
    for process, series in snapshots.items():
        for _, pairs in series:
            for label, _ in pairs:
                holders.setdefault(label, set()).add(process)

    # Liveness: each correct process finally holds a satisfiable pair.
    finals = _final_values(trace, pattern, key, violations)
    for process, pairs in finals.items():
        satisfied = any(
            len(holders.get(label, set()) & pattern.correct) >= size
            for label, size in pairs
        )
        if not satisfied:
            violations.append(
                f"{process!r} never finally holds a pair (x, y) with at least y correct "
                "holders of x (liveness violation)"
            )

    # Safety: no two pairs ever output admit disjoint quorums.
    seen_pairs: set[tuple[Any, int]] = set()
    for series in snapshots.values():
        for _, pairs in series:
            seen_pairs.update(pairs)
    pair_list = sorted(seen_pairs, key=repr)
    for index, (label_a, size_a) in enumerate(pair_list):
        for label_b, size_b in pair_list[index:]:
            set_a = holders.get(label_a, set())
            set_b = holders.get(label_b, set())
            if size_a > len(set_a) or size_b > len(set_b):
                continue  # one of the quorums can never form: vacuously safe
            if size_a + size_b <= len(set_a | set_b):
                violations.append(
                    f"pairs ({label_a!r}, {size_a}) and ({label_b!r}, {size_b}) admit "
                    "disjoint quorums (safety violation)"
                )
    return CheckResult.from_violations(violations)


# ----------------------------------------------------------------------
# HΣ — homonymous quorums (label, identifier multiset)
# ----------------------------------------------------------------------
def check_hsigma(
    trace: RunTrace,
    pattern: FailurePattern,
    *,
    quora_key: str = KEYS.H_QUORA,
    labels_key: str = KEYS.H_LABELS,
) -> CheckResult:
    """Check the four HΣ properties (Section 3.2 of the paper) on a trace."""
    violations: list[str] = []
    membership = pattern.membership

    quora_series: dict[ProcessId, list[tuple[Time, frozenset]]] = {}
    labels_series: dict[ProcessId, list[tuple[Time, frozenset]]] = {}
    for process in membership.processes:
        quora = [(r.time, frozenset(r.value)) for r in trace.records_of(process, quora_key)]
        labels = [(r.time, frozenset(r.value)) for r in trace.records_of(process, labels_key)]
        if quora:
            quora_series[process] = quora
        if labels:
            labels_series[process] = labels

    # Validity: no h_quora snapshot contains two pairs with the same label.
    for process, series in quora_series.items():
        for time, pairs in series:
            labels = [label for label, _ in pairs]
            if len(labels) != len(set(labels)):
                violations.append(
                    f"{process!r} held two quorum pairs with the same label at t={time}"
                )

    # Monotonicity (1): h_labels never shrinks.
    for process, series in labels_series.items():
        for index in range(len(series) - 1):
            _, current = series[index]
            _, following = series[index + 1]
            if not current <= following:
                violations.append(
                    f"{process!r} removed labels from h_labels (monotonicity violation)"
                )

    # Monotonicity (2): once (x, m) is held, later snapshots keep some (x, m' ⊆ m).
    for process, series in quora_series.items():
        for index in range(len(series) - 1):
            _, current = series[index]
            _, following = series[index + 1]
            for label, multiset in current:
                successors = [m for l, m in following if l == label]
                if not successors or not all(
                    isinstance(m, IdentityMultiset) for m in successors
                ):
                    violations.append(
                        f"{process!r} dropped the quorum pair of label {label!r} "
                        "(monotonicity violation)"
                    )
                    continue
                if not any(m.issubset(multiset) for m in successors):
                    violations.append(
                        f"{process!r} grew the quorum multiset of label {label!r} "
                        "(monotonicity violation)"
                    )

    # S(x): processes that ever carry label x in h_labels.
    holders: dict[Any, set[ProcessId]] = {}
    for process, series in labels_series.items():
        for _, labels in series:
            for label in labels:
                holders.setdefault(label, set()).add(process)

    # Liveness: each correct process finally holds a pair (x, m) with
    # m ⊆ I(S(x) ∩ Correct).
    finals = _final_values(trace, pattern, quora_key, violations)
    for process, pairs in finals.items():
        satisfied = False
        for label, multiset in pairs:
            correct_holders = holders.get(label, set()) & pattern.correct
            if multiset.issubset(membership.identity_multiset(sorted(correct_holders))):
                satisfied = True
                break
        if not satisfied:
            violations.append(
                f"{process!r} never finally holds a pair (x, m) with m ⊆ I(S(x) ∩ Correct) "
                "(liveness violation)"
            )

    # Safety: no two pairs ever output admit disjoint realising quorums.
    seen_pairs: set[tuple[Any, IdentityMultiset]] = set()
    for series in quora_series.values():
        for _, pairs in series:
            seen_pairs.update(pairs)
    pair_list = sorted(seen_pairs, key=repr)
    for index, (label_a, multiset_a) in enumerate(pair_list):
        for label_b, multiset_b in pair_list[index:]:
            if _disjoint_quora_exist(
                membership,
                holders.get(label_a, set()),
                multiset_a,
                holders.get(label_b, set()),
                multiset_b,
            ):
                violations.append(
                    f"pairs ({label_a!r}, {multiset_a!r}) and ({label_b!r}, {multiset_b!r}) "
                    "admit disjoint quorums (safety violation)"
                )
    return CheckResult.from_violations(violations)


def _disjoint_quora_exist(
    membership,
    holders_a: set[ProcessId],
    multiset_a: IdentityMultiset,
    holders_b: set[ProcessId],
    multiset_b: IdentityMultiset,
) -> bool:
    """Decide whether disjoint ``Q1 ⊆ holders_a`` with ``I(Q1) = multiset_a`` and
    ``Q2 ⊆ holders_b`` with ``I(Q2) = multiset_b`` exist.

    Processes carrying different identifiers never compete for the same slot,
    so feasibility decomposes per identifier: writing ``a_i``/``b_i``/``c_i``
    for the holders carrying identifier ``i`` exclusive to ``holders_a``,
    exclusive to ``holders_b``, and shared, disjoint quorums exist iff for
    every identifier ``q1_i ≤ a_i + c_i``, ``q2_i ≤ b_i + c_i`` and
    ``q1_i + q2_i ≤ a_i + b_i + c_i``.
    """
    identities = multiset_a.support() | multiset_b.support()
    for identity in identities:
        need_a = multiset_a.multiplicity(identity)
        need_b = multiset_b.multiplicity(identity)
        with_id_a = {p for p in holders_a if membership.identity_of(p) == identity}
        with_id_b = {p for p in holders_b if membership.identity_of(p) == identity}
        only_a = len(with_id_a - with_id_b)
        only_b = len(with_id_b - with_id_a)
        shared = len(with_id_a & with_id_b)
        if need_a > only_a + shared:
            return False
        if need_b > only_b + shared:
            return False
        if need_a + need_b > only_a + only_b + shared:
            return False
    return True
