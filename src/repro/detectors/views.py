"""Per-process query views of failure detectors.

A *view* is the object a process's algorithm holds when the system is enriched
with a failure detector: it exposes exactly the variables the class definition
gives that process (``h_leader`` and ``h_multiplicity`` for HΩ, ``h_quora``
and ``h_labels`` for HΣ, and so on) and nothing else.

Views are deliberately thin: they are constructed from reader callables so the
same view types serve both the ground-truth oracles and the message-passing
implementations/reductions (whose views read the emulating program's state).
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..identity import Identity, IdentityMultiset

__all__ = [
    "OmegaView",
    "DiamondPView",
    "SigmaView",
    "ScriptEView",
    "APView",
    "AOmegaView",
    "ASigmaView",
    "DiamondHPView",
    "HOmegaView",
    "HSigmaView",
]

#: A quorum label.  Labels are opaque hashable values; the HΣ implementation of
#: Figure 7 uses identifier multisets themselves as labels.
Label = Hashable


class OmegaView:
    """Ω: a single eventually-agreed identifier of a correct process."""

    def __init__(self, read_leader: Callable[[], Identity]) -> None:
        self._read_leader = read_leader

    @property
    def leader(self) -> Identity:
        """The current leader estimate of this process."""
        return self._read_leader()


class DiamondPView:
    """◇P̄ (complement of ◇P): the set of identifiers trusted to be correct."""

    def __init__(self, read_trusted: Callable[[], frozenset]) -> None:
        self._read_trusted = read_trusted

    @property
    def trusted(self) -> frozenset:
        """The identifiers this process currently trusts."""
        return self._read_trusted()


class SigmaView:
    """Σ: live, always-intersecting quorums of identifiers."""

    def __init__(self, read_trusted: Callable[[], frozenset]) -> None:
        self._read_trusted = read_trusted

    @property
    def trusted(self) -> frozenset:
        """The current quorum of this process."""
        return self._read_trusted()


class ScriptEView:
    """ℰ (Definition 1): a ranked sequence of identifiers."""

    def __init__(self, read_alive: Callable[[], tuple]) -> None:
        self._read_alive = read_alive

    @property
    def alive(self) -> tuple:
        """The current ranked sequence (position 0 is rank 1)."""
        return self._read_alive()

    def rank(self, identity: Identity) -> float:
        """``rank(i, alive)`` — positions start at 1; absent ids rank ``inf``."""
        sequence = self.alive
        try:
            return sequence.index(identity) + 1
        except ValueError:
            return float("inf")


class APView:
    """AP: an eventually tight upper bound on the number of alive processes."""

    def __init__(self, read_anap: Callable[[], int]) -> None:
        self._read_anap = read_anap

    @property
    def anap(self) -> int:
        """The current upper bound."""
        return self._read_anap()


class AOmegaView:
    """AΩ: a boolean that is eventually true at exactly one correct process."""

    def __init__(self, read_flag: Callable[[], bool]) -> None:
        self._read_flag = read_flag

    @property
    def a_leader(self) -> bool:
        """Whether this process currently considers itself the leader."""
        return self._read_flag()


class ASigmaView:
    """AΣ: a set of ``(label, quorum_size)`` pairs."""

    def __init__(self, read_pairs: Callable[[], frozenset]) -> None:
        self._read_pairs = read_pairs

    @property
    def a_sigma(self) -> frozenset:
        """The current ``(label, size)`` pairs of this process."""
        return self._read_pairs()


class DiamondHPView:
    """◇HP: a multiset that eventually equals ``I(Correct)``."""

    def __init__(self, read_trusted: Callable[[], IdentityMultiset]) -> None:
        self._read_trusted = read_trusted

    @property
    def h_trusted(self) -> IdentityMultiset:
        """The multiset of identifiers this process currently trusts."""
        return self._read_trusted()


class HOmegaView:
    """HΩ: an eventually common correct identifier with its correct multiplicity."""

    def __init__(self, read_pair: Callable[[], tuple[Identity, int]]) -> None:
        self._read_pair = read_pair

    @property
    def h_leader(self) -> Identity:
        """The current leader identifier."""
        return self._read_pair()[0]

    @property
    def h_multiplicity(self) -> int:
        """The multiplicity associated with the current leader identifier."""
        return self._read_pair()[1]

    def read(self) -> tuple[Identity, int]:
        """Atomically read ``(h_leader, h_multiplicity)``."""
        return self._read_pair()


class HSigmaView:
    """HΣ: quorum descriptions (``h_quora``) and quorum participation (``h_labels``)."""

    def __init__(
        self,
        read_quora: Callable[[], frozenset],
        read_labels: Callable[[], frozenset],
    ) -> None:
        self._read_quora = read_quora
        self._read_labels = read_labels

    @property
    def h_quora(self) -> frozenset:
        """The current set of ``(label, IdentityMultiset)`` pairs."""
        return self._read_quora()

    @property
    def h_labels(self) -> frozenset:
        """The labels whose quorums this process participates in."""
        return self._read_labels()
