"""Oracles for the anonymous failure-detector classes AP, AΩ, and AΣ.

Anonymous classes make no reference to identifiers at all, so these oracles
work for any membership (the paper's ``AAS[∅]`` systems are homonymous systems
where every identifier is the default ``⊥``; the class definitions themselves
never look at identifiers).
"""

from __future__ import annotations

from ..identity import ProcessId
from ..sim.system import DetectorServices
from .base import OracleDetector, stable_draw
from .views import AOmegaView, APView, ASigmaView

__all__ = ["APOracle", "AOmegaOracle", "ASigmaOracle"]

#: Label shared by every process before stabilization (quorum = everyone).
_LABEL_ALL = "aΣ:all"
#: Label held only by correct processes (quorum = the correct set).
_LABEL_CORRECT = "aΣ:correct"


class APOracle(OracleDetector):
    """AP: an upper bound on the number of alive processes, eventually tight.

    The oracle returns the exact number of currently alive processes, which is
    always an upper bound on itself (safety) and equals ``|Correct|`` once the
    last faulty process has crashed (liveness).  A pessimism margin can be
    added to model a slower real implementation; the margin decays to zero at
    the stabilization time.
    """

    def __init__(self, services: DetectorServices, *, pessimism: int = 0, **kwargs) -> None:
        super().__init__(services, **kwargs)
        self._pessimism = max(0, int(pessimism))

    def view_for(self, process: ProcessId) -> APView:
        def read_anap() -> int:
            alive = len(self.pattern.alive_at(self.clock.now))
            if self.stabilized:
                # Never dip below the number of currently alive processes:
                # safety must hold even if the caller configured a
                # stabilization time earlier than the last crash.
                return max(len(self.pattern.correct), alive)
            return min(self.membership.size, alive + self._pessimism)

        return APView(read_anap)


class AOmegaOracle(OracleDetector):
    """AΩ: eventually exactly one correct process has its flag set.

    The elected process is the correct process with the smallest internal
    index — a choice no real anonymous algorithm could make (the class is not
    realistic, as the paper recalls), which is precisely why it has to be an
    oracle.  Before stabilization the flags are pseudo-random, so several or
    zero processes may consider themselves leader.
    """

    def _eventual_leader_process(self) -> ProcessId:
        return min(self.pattern.correct)

    def view_for(self, process: ProcessId) -> AOmegaView:
        def read_flag() -> bool:
            if self.stabilized:
                return process == self._eventual_leader_process()
            return bool(stable_draw(process.index, self.noise_window(), "aΩ") % 2)

        return AOmegaView(read_flag)


class ASigmaOracle(OracleDetector):
    """AΣ: intersecting quorums described as ``(label, size)`` pairs.

    * Before stabilization every process outputs ``(all, n)`` — the quorum of
      all processes, which intersects everything.
    * From stabilization on, correct processes additionally output
      ``(correct, |Correct|)``, and only correct processes ever carry that
      label, so any two full-size quorums named by it are the correct set
      itself.

    Both quorum families pairwise intersect, and the liveness pair
    ``(correct, |Correct|)`` is satisfiable by correct processes only.
    """

    def view_for(self, process: ProcessId) -> ASigmaView:
        def read_pairs() -> frozenset:
            pairs = {(_LABEL_ALL, self.membership.size)}
            if self.stabilized and self.pattern.is_correct(process):
                pairs.add((_LABEL_CORRECT, len(self.pattern.correct)))
            return frozenset(pairs)

        return ASigmaView(read_pairs)

    def label_holders(self, label: str) -> frozenset[ProcessId]:
        """``S_A(label)``: the processes that may ever output a pair with ``label``.

        Exposed for the AΣ → HΣ reduction and for the property checkers.
        """
        if label == _LABEL_ALL:
            return frozenset(self.membership.processes)
        if label == _LABEL_CORRECT:
            return self.pattern.correct
        return frozenset()
