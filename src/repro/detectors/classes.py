"""The catalogue of failure-detector classes the paper talks about.

This module is purely descriptive: it names the classes, says which system
family they were defined for, what their per-process output looks like, and
whether the paper regards them as *realistic* (implementable in a synchronous
system of that family).  The reduction registry (:mod:`repro.reductions.registry`)
uses it as the node set of the Figure 5 relation graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import UnknownDetectorClassError

__all__ = ["DetectorClass", "DetectorClassInfo", "detector_catalog"]


class DetectorClass(enum.Enum):
    """Failure-detector classes appearing in the paper."""

    # Classical (unique identifiers).
    P = "P"
    DIAMOND_P = "◇P"            # complement of ◇P in the paper's notation: ◇P̄
    OMEGA = "Ω"
    SIGMA = "Σ"
    SCRIPT_E = "ℰ"              # Definition 1 (ranked alive list)
    # Anonymous.
    AP = "AP"
    A_OMEGA = "AΩ"
    A_SIGMA = "AΣ"
    # Homonymous (this paper).
    DIAMOND_HP = "◇HP"
    H_OMEGA = "HΩ"
    H_SIGMA = "HΣ"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DetectorClassInfo:
    """Descriptive metadata for one failure-detector class."""

    detector_class: DetectorClass
    family: str
    output: str
    introduced_in: str
    realistic_note: str


_CATALOG: dict[DetectorClass, DetectorClassInfo] = {
    DetectorClass.P: DetectorClassInfo(
        DetectorClass.P,
        family="classical",
        output="set of identifiers of processes suspected to have crashed",
        introduced_in="Chandra & Toueg 1996",
        realistic_note="implementable in synchronous systems with known membership",
    ),
    DetectorClass.DIAMOND_P: DetectorClassInfo(
        DetectorClass.DIAMOND_P,
        family="classical",
        output="set `trusted` that eventually equals the identifiers of the correct processes",
        introduced_in="complement of ◇P (Chandra & Toueg 1996)",
        realistic_note="implementable under partial synchrony with unique identifiers",
    ),
    DetectorClass.OMEGA: DetectorClassInfo(
        DetectorClass.OMEGA,
        family="classical",
        output="variable `leader` that eventually holds the same correct identifier everywhere",
        introduced_in="Chandra, Hadzilacos & Toueg 1996",
        realistic_note="implementable under partial synchrony with unique identifiers",
    ),
    DetectorClass.SIGMA: DetectorClassInfo(
        DetectorClass.SIGMA,
        family="classical",
        output="quorum `trusted`: live intersecting sets of identifiers",
        introduced_in="Delporte-Gallet, Fauconnier & Guerraoui 2010",
        realistic_note="weakest for registers; implementable with a correct majority",
    ),
    DetectorClass.SCRIPT_E: DetectorClassInfo(
        DetectorClass.SCRIPT_E,
        family="classical",
        output="sequence `alive` whose prefix eventually contains exactly the correct identifiers",
        introduced_in="this paper, Definition 1 (service used informally before)",
        realistic_note="implementable in AS[∅] without membership knowledge (Figure 3)",
    ),
    DetectorClass.AP: DetectorClassInfo(
        DetectorClass.AP,
        family="anonymous",
        output="integer `anap`: an eventually tight upper bound on the number of alive processes",
        introduced_in="Bonnet & Raynal 2011",
        realistic_note="implementable in anonymous synchronous systems; not under partial synchrony",
    ),
    DetectorClass.A_OMEGA: DetectorClassInfo(
        DetectorClass.A_OMEGA,
        family="anonymous",
        output="boolean `a_leader`: eventually true at exactly one correct process",
        introduced_in="Bonnet & Raynal 2013",
        realistic_note="not realistic: cannot be implemented even in anonymous synchronous systems",
    ),
    DetectorClass.A_SIGMA: DetectorClassInfo(
        DetectorClass.A_SIGMA,
        family="anonymous",
        output="set of (label, size) pairs describing intersecting quorums",
        introduced_in="Bonnet & Raynal 2013",
        realistic_note="anonymous counterpart of Σ",
    ),
    DetectorClass.DIAMOND_HP: DetectorClassInfo(
        DetectorClass.DIAMOND_HP,
        family="homonymous",
        output="multiset `h_trusted` that eventually equals I(Correct)",
        introduced_in="this paper (homonymous counterpart of ◇P̄)",
        realistic_note="implementable in HPS[∅] without membership knowledge (Figure 6)",
    ),
    DetectorClass.H_OMEGA: DetectorClassInfo(
        DetectorClass.H_OMEGA,
        family="homonymous",
        output="pair (`h_leader`, `h_multiplicity`): a correct identifier and its correct multiplicity",
        introduced_in="this paper (homonymous counterpart of Ω)",
        realistic_note="implementable in HPS[∅]; the anonymous analogue AΩ is not realistic",
    ),
    DetectorClass.H_SIGMA: DetectorClassInfo(
        DetectorClass.H_SIGMA,
        family="homonymous",
        output="pair of variables `h_quora` (label → identifier multiset) and `h_labels`",
        introduced_in="this paper (homonymous counterpart of Σ)",
        realistic_note="implementable in HSS[∅] without membership knowledge (Figure 7)",
    ),
}


def detector_catalog() -> dict[DetectorClass, DetectorClassInfo]:
    """Return the full class catalogue (a defensive copy)."""
    return dict(_CATALOG)


def info_for(detector_class: DetectorClass) -> DetectorClassInfo:
    """Return the metadata of one class."""
    try:
        return _CATALOG[detector_class]
    except KeyError:
        raise UnknownDetectorClassError(f"unknown detector class {detector_class!r}") from None
