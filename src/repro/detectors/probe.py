"""A probe program that periodically samples detector outputs into the trace.

Experiments that study a detector in isolation (convergence of the Figure 6
implementation, behaviour of an oracle, output of a reduction) attach the
detector to a system whose processes run a :class:`DetectorProbeProgram`: the
probe queries the detector every ``period`` time units and records the answers
under the standard trace keys, so the property checkers and the convergence
analysis can be applied afterwards.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..sim.process import ProcessContext, ProcessProgram
from .base import OutputKeys

__all__ = [
    "DetectorProbeProgram",
    "homega_probes",
    "diamond_hp_probes",
    "hsigma_probes",
    "sigma_probes",
    "diamond_p_probes",
    "omega_probes",
    "script_e_probes",
    "ap_probes",
    "aomega_probes",
    "asigma_probes",
]

KEYS = OutputKeys()

Probe = Callable[[ProcessContext], Any]


class DetectorProbeProgram(ProcessProgram):
    """Record the outputs of attached detectors at a fixed sampling period."""

    def __init__(
        self,
        probes: Mapping[str, Probe],
        *,
        period: float = 1.0,
        samples: int | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError("the sampling period must be positive")
        self._probes = dict(probes)
        self._period = period
        self._samples = samples

    def setup(self, ctx: ProcessContext) -> None:
        ctx.spawn(lambda: self._sample_loop(ctx), name="detector-probe")

    def _sample_loop(self, ctx: ProcessContext):
        taken = 0
        while self._samples is None or taken < self._samples:
            for key, probe in self._probes.items():
                ctx.record(key, probe(ctx))
            taken += 1
            yield ctx.sleep(self._period)


# ----------------------------------------------------------------------
# Ready-made probe sets, one per detector class
# ----------------------------------------------------------------------
def homega_probes(detector_name: str = "HOmega") -> dict[str, Probe]:
    """Probes recording ``h_leader`` and ``h_multiplicity`` of an HΩ detector."""
    return {
        KEYS.H_LEADER: lambda ctx: ctx.detector(detector_name).h_leader,
        KEYS.H_MULTIPLICITY: lambda ctx: ctx.detector(detector_name).h_multiplicity,
    }


def diamond_hp_probes(detector_name: str = "DiamondHP") -> dict[str, Probe]:
    """Probes recording ``h_trusted`` of a ◇HP detector."""
    return {KEYS.H_TRUSTED: lambda ctx: ctx.detector(detector_name).h_trusted}


def hsigma_probes(detector_name: str = "HSigma") -> dict[str, Probe]:
    """Probes recording ``h_quora`` and ``h_labels`` of an HΣ detector."""
    return {
        KEYS.H_QUORA: lambda ctx: ctx.detector(detector_name).h_quora,
        KEYS.H_LABELS: lambda ctx: ctx.detector(detector_name).h_labels,
    }


def sigma_probes(detector_name: str = "Sigma") -> dict[str, Probe]:
    """Probes recording ``trusted`` of a Σ detector."""
    return {KEYS.SIGMA_TRUSTED: lambda ctx: ctx.detector(detector_name).trusted}


def diamond_p_probes(detector_name: str = "DiamondP") -> dict[str, Probe]:
    """Probes recording ``trusted`` of a ◇P̄ detector."""
    return {KEYS.DIAMOND_P_TRUSTED: lambda ctx: ctx.detector(detector_name).trusted}


def omega_probes(detector_name: str = "Omega") -> dict[str, Probe]:
    """Probes recording ``leader`` of an Ω detector."""
    return {KEYS.OMEGA_LEADER: lambda ctx: ctx.detector(detector_name).leader}


def script_e_probes(detector_name: str = "ScriptE") -> dict[str, Probe]:
    """Probes recording ``alive`` of an ℰ detector."""
    return {KEYS.SCRIPT_E_ALIVE: lambda ctx: ctx.detector(detector_name).alive}


def ap_probes(detector_name: str = "AP") -> dict[str, Probe]:
    """Probes recording ``anap`` of an AP detector."""
    return {KEYS.AP_ANAP: lambda ctx: ctx.detector(detector_name).anap}


def aomega_probes(detector_name: str = "AOmega") -> dict[str, Probe]:
    """Probes recording ``a_leader`` of an AΩ detector."""
    return {KEYS.A_OMEGA_LEADER: lambda ctx: ctx.detector(detector_name).a_leader}


def asigma_probes(detector_name: str = "ASigma") -> dict[str, Probe]:
    """Probes recording ``a_sigma`` of an AΣ detector."""
    return {KEYS.A_SIGMA_PAIRS: lambda ctx: ctx.detector(detector_name).a_sigma}
