"""Oracles for the classical failure-detector classes (unique identifiers).

These classes are defined for systems where every process has its own
identifier (the paper's ``AS[∅]`` model).  The oracles check that assumption
at construction time: handing them a homonymous membership is almost always a
configuration bug, because the class definitions talk about sets of
identifiers and silently collapse homonyms.
"""

from __future__ import annotations

from ..errors import DetectorError
from ..identity import ProcessId
from ..sim.system import DetectorServices
from .base import OracleDetector, stable_draw
from .views import DiamondPView, OmegaView, SigmaView

__all__ = ["PerfectOracle", "DiamondPOracle", "OmegaOracle", "SigmaOracle"]


class _UniqueIdOracle(OracleDetector):
    """Base for oracles whose class is only defined with unique identifiers."""

    def __init__(self, services: DetectorServices, **kwargs) -> None:
        if not services.membership.is_uniquely_identified:
            raise DetectorError(
                f"{type(self).__name__} is only defined for systems with unique "
                "identifiers; the membership has homonyms"
            )
        super().__init__(services, **kwargs)


class PerfectOracle(_UniqueIdOracle):
    """A perfect failure detector ``P``: suspects exactly the crashed processes.

    ``P`` itself is not used by the paper's algorithms, but it is a convenient
    strongest-possible baseline for sanity checks and for building other
    oracles in tests.
    """

    def view_for(self, process: ProcessId) -> DiamondPView:
        def read_suspected() -> frozenset:
            now = self.clock.now
            return frozenset(
                self.membership.identity_of(other)
                for other in self.membership.processes
                if not self.pattern.is_alive_at(other, now)
            )

        return DiamondPView(read_suspected)


class DiamondPOracle(_UniqueIdOracle):
    """◇P̄ (the complement of ◇P): ``trusted`` eventually equals the correct ids.

    Before stabilization it trusts every process that is still alive, which is
    a superset of the correct processes — the typical transient behaviour of a
    real eventually perfect detector.
    """

    def view_for(self, process: ProcessId) -> DiamondPView:
        def read_trusted() -> frozenset:
            if self.stabilized:
                members = self.pattern.correct
            else:
                members = self.pattern.alive_at(self.clock.now)
            return frozenset(self.membership.identity_of(other) for other in members)

        return DiamondPView(read_trusted)


class OmegaOracle(_UniqueIdOracle):
    """Ω: eventually the same correct identifier at every process.

    Before stabilization, each process sees a leader picked pseudo-randomly
    from the whole membership, re-drawn every noise window, so algorithms are
    exercised against disagreeing and changing leaders.
    """

    def __init__(self, services: DetectorServices, **kwargs) -> None:
        kwargs.setdefault("noise_period", None)
        super().__init__(services, **kwargs)

    def _eventual_leader(self):
        correct_ids = sorted(
            (self.membership.identity_of(process) for process in self.pattern.correct),
            key=repr,
        )
        return correct_ids[0]

    def view_for(self, process: ProcessId) -> OmegaView:
        all_ids = sorted(
            (self.membership.identity_of(other) for other in self.membership.processes),
            key=repr,
        )

        def read_leader():
            if self.stabilized:
                return self._eventual_leader()
            draw = stable_draw(process.index, self.noise_window(), "Ω") % len(all_ids)
            return all_ids[draw]

        return OmegaView(read_leader)


class SigmaOracle(_UniqueIdOracle):
    """Σ: quorums that always intersect and eventually contain only correct ids.

    Before stabilization every process's quorum is the full membership (which
    trivially intersects everything); afterwards it is exactly the correct
    set.  Both phases therefore intersect pairwise at all times, as the class
    requires, because the correct set is non-empty and included in the
    membership.
    """

    def view_for(self, process: ProcessId) -> SigmaView:
        def read_trusted() -> frozenset:
            if self.stabilized:
                members = self.pattern.correct
            else:
                members = self.membership.processes
            return frozenset(self.membership.identity_of(other) for other in members)

        return SigmaView(read_trusted)
