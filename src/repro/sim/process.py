"""Process programs and their runtime.

Algorithms are written as :class:`ProcessProgram` subclasses.  A program sees
the world only through its :class:`ProcessContext`:

* ``ctx.identity`` — the process's own identifier ``id(p)`` (possibly shared
  with other processes);
* ``ctx.broadcast(kind, **fields)`` — the paper's ``broadcast(m)`` primitive;
* ``ctx.on(kind, handler)`` — "upon reception of ⟨kind, ...⟩ do" handlers;
* ``ctx.spawn(task)`` — start a task (the paper's "Task T1 / Task T2");
* ``yield ctx.sleep(d)`` / ``yield ctx.wait_until(pred)`` /
  ``yield ctx.next_synchronous_step()`` — the blocking constructs used by the
  paper's pseudo-code (``wait timeout``, ``wait until …``, synchronous steps);
* ``ctx.detector(name)`` — the query interface of an attached failure
  detector;
* ``ctx.record(key, value)`` / ``ctx.decide(value)`` — trace output.

A program never sees the membership, the failure pattern, other processes'
internal ids, or the global clock — matching the paper's adversaries
(homonymy, unknown membership, asynchrony).

Tasks are ordinary Python generator functions.  The runtime acts as a
trampoline: it resumes a task, receives the next blocking request it yields,
and schedules the continuation accordingly.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator, Iterable

from ..context import (
    AbstractProcessContext,
    BlockingRequest,
    NextSyncStep,
    ProcessProgram,
    Sleep,
    WaitUntil,
)
from ..errors import ProcessCrashedError, SimulationError
from ..identity import Identity, ProcessId
from .clock import Clock, Time
from .events import KIND_RESUME, Event, EventQueue
from .message import Message
from .timing import SynchronousTiming, TimingModel
from .trace import RunTrace

__all__ = [
    "Sleep",
    "WaitUntil",
    "NextSyncStep",
    "BlockingRequest",
    "ProcessProgram",
    "ProcessContext",
    "ProcessRuntime",
]


class ProcessContext(AbstractProcessContext):
    """The simulator's program-facing API of one process."""

    def __init__(self, runtime: "ProcessRuntime") -> None:
        self._runtime = runtime

    # -- static facts ---------------------------------------------------
    @property
    def identity(self) -> Identity:
        """The process's own identifier ``id(p)``."""
        return self._runtime.identity

    @property
    def now(self) -> Time:
        """The current simulated time.

        Exposed for local timing and trace annotations only; algorithm logic
        must not branch on absolute time (the paper's processes cannot read
        the global clock).
        """
        return self._runtime.clock.now

    @property
    def random(self) -> random.Random:
        """A per-process deterministic random stream."""
        return self._runtime.rng

    # -- communication ---------------------------------------------------
    def broadcast(self, kind: str, **fields: Any) -> None:
        """Broadcast ``⟨kind, fields…⟩`` to every process, including the sender."""
        self._runtime.broadcast(Message(kind, fields))

    def multicast(self, kind: str, targets: Any, **fields: Any) -> None:
        """Send ``⟨kind, fields…⟩`` to the processes at the given indices only."""
        self._runtime.multicast(Message(kind, fields), targets)

    def on(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Register an "upon reception of ⟨kind, …⟩" handler."""
        self._runtime.register_handler(kind, handler)

    # -- tasks -------------------------------------------------------------
    def spawn(self, task: Callable[[], Generator], *, name: str = "") -> None:
        """Start a task (a generator function yielding blocking requests)."""
        self._runtime.spawn_task(task, name=name or getattr(task, "__name__", "task"))

    # -- failure detectors -------------------------------------------------
    def detector(self, name: str) -> Any:
        """Return the query view of the attached detector registered as ``name``."""
        return self._runtime.detector_view(name)

    def has_detector(self, name: str) -> bool:
        """Return ``True`` when a detector named ``name`` is attached."""
        return self._runtime.has_detector(name)

    def attach_detector(self, name: str, view: Any) -> None:
        """Attach a detector view from within a program.

        This is how a *stacked* configuration works: a composite program runs a
        detector implementation (e.g. the Figure 6 polling algorithm) next to a
        consensus algorithm on the same process and exposes the implementation's
        output as the detector the consensus algorithm queries.
        """
        self._runtime.attach_detector_view(name, view)

    # -- trace output ------------------------------------------------------
    def record(self, key: str, value: Any) -> None:
        """Record a time-stamped variable snapshot into the run trace."""
        self._runtime.record(key, value)

    def decide(self, value: Any) -> None:
        """Record a consensus decision (first decision wins)."""
        self._runtime.record_decision(value)


# ----------------------------------------------------------------------
# Runtime
# ----------------------------------------------------------------------
class _Task:
    """Book-keeping for one running task of a process."""

    __slots__ = ("name", "generator", "waiting_on", "pending_event", "finished")

    def __init__(self, name: str, generator: Generator) -> None:
        self.name = name
        self.generator = generator
        self.waiting_on: WaitUntil | None = None
        self.pending_event: Event | None = None
        self.finished = False


class ProcessRuntime:
    """Executes one process's program: trampoline, handlers, crash handling."""

    def __init__(
        self,
        process_id: ProcessId,
        identity: Identity,
        program: ProcessProgram,
        *,
        clock: Clock,
        queue: EventQueue,
        timing: TimingModel,
        trace: RunTrace,
        rng: random.Random,
        broadcast_fn: Callable[[ProcessId, Message], None],
        multicast_fn: Callable[[ProcessId, Message, Any], None] | None = None,
    ) -> None:
        self.process_id = process_id
        self.identity = identity
        self.program = program
        self.clock = clock
        self.rng = rng
        self._queue = queue
        self._timing = timing
        self._trace = trace
        self._broadcast_fn = broadcast_fn
        self._multicast_fn = multicast_fn
        self._handlers: dict[str, list[Callable[[Message], None]]] = {}
        self._tasks: list[_Task] = []
        self._detector_views: dict[str, Any] = {}
        self._crashed = False
        self._started = False
        self.context = ProcessContext(self)

    # ------------------------------------------------------------------
    # Wiring (done by the simulation before the run starts)
    # ------------------------------------------------------------------
    def attach_detector_view(self, name: str, view: Any) -> None:
        """Attach the per-process query view of a failure detector."""
        self._detector_views[name] = view

    def detector_view(self, name: str) -> Any:
        """Return a previously attached detector view."""
        try:
            return self._detector_views[name]
        except KeyError:
            raise SimulationError(
                f"process {self.process_id!r} has no detector named {name!r}"
            ) from None

    def has_detector(self, name: str) -> bool:
        """Return ``True`` when a detector named ``name`` is attached."""
        return name in self._detector_views

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """Whether the process has crashed."""
        return self._crashed

    def start(self) -> None:
        """Run the program's ``setup`` and begin executing its tasks."""
        if self._started:
            raise SimulationError(f"process {self.process_id!r} started twice")
        self._started = True
        self.program.setup(self.context)

    def crash(self) -> None:
        """Crash the process: stop all tasks and ignore future deliveries."""
        if self._crashed:
            return
        self._crashed = True
        self._trace.record_crash(self.process_id, self.clock.now)
        for task in self._tasks:
            task.finished = True
            task.waiting_on = None
            if task.pending_event is not None:
                self._queue.cancel(task.pending_event)
                task.pending_event = None

    # ------------------------------------------------------------------
    # Communication plumbing
    # ------------------------------------------------------------------
    def broadcast(self, message: Message) -> None:
        """Forward a broadcast to the network (no-op after a crash)."""
        if self._crashed:
            raise ProcessCrashedError(
                f"crashed process {self.process_id!r} attempted to broadcast {message!r}"
            )
        self._broadcast_fn(self.process_id, message)

    def multicast(self, message: Message, targets: Any) -> None:
        """Forward a multicast to the network (errors after a crash)."""
        if self._crashed:
            raise ProcessCrashedError(
                f"crashed process {self.process_id!r} attempted to multicast {message!r}"
            )
        if self._multicast_fn is None:
            raise SimulationError(
                "this runtime was built without multicast support; "
                "use broadcast or wire a multicast_fn"
            )
        self._multicast_fn(self.process_id, message, targets)

    def register_handler(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Register an "upon reception of" handler for a message kind."""
        self._handlers.setdefault(kind, []).append(handler)

    def deliver(self, message: Message) -> None:
        """Deliver one message copy: run handlers, then re-check waiting tasks."""
        if self._crashed:
            return
        self._trace.record_delivery(message.kind)
        for handler in self._handlers.get(message.kind, ()):  # registration order
            handler(message)
        self.poke()

    # ------------------------------------------------------------------
    # Trace output
    # ------------------------------------------------------------------
    def record(self, key: str, value: Any) -> None:
        """Record a variable snapshot (ignored after a crash)."""
        if not self._crashed:
            self._trace.record(self.process_id, key, value, self.clock.now)

    def record_decision(self, value: Any) -> None:
        """Record a consensus decision (ignored after a crash)."""
        if not self._crashed:
            self._trace.record_decision(self.process_id, value, self.clock.now)

    # ------------------------------------------------------------------
    # Task trampoline
    # ------------------------------------------------------------------
    def spawn_task(self, task_fn: Callable[[], Generator], *, name: str) -> None:
        """Create a task from a generator function and schedule its first step."""
        if self._crashed:
            return
        generator = task_fn()
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"task {name!r} of process {self.process_id!r} is not a generator; "
                "tasks must be generator functions that yield blocking requests"
            )
        task = _Task(name=name, generator=generator)
        self._tasks.append(task)
        self._schedule_resumption(task, at=self.clock.now)

    def poke(self) -> None:
        """Re-evaluate the wait conditions of all blocked tasks."""
        if self._crashed:
            return
        for task in self._tasks:
            if task.finished or task.waiting_on is None or task.pending_event is not None:
                continue
            if task.waiting_on.predicate():
                task.waiting_on = None
                self._schedule_resumption(task, at=self.clock.now)

    def tasks_pending(self) -> bool:
        """Return ``True`` when at least one task has not finished."""
        return any(not task.finished for task in self._tasks)

    def task_names(self) -> Iterable[str]:
        """Names of all tasks ever spawned (finished or not)."""
        return tuple(task.name for task in self._tasks)

    # -- internals --------------------------------------------------------
    def _schedule_resumption(self, task: _Task, *, at: Time) -> None:
        resume_at = at + self._timing.step_delay(self.process_id, at, self.rng)
        task.pending_event = self._queue.schedule(
            resume_at,
            self._resume,
            args=(task,),
            priority=2,
            label=f"resume {self.process_id!r}.{task.name}"
            if self._queue.debug_labels
            else "",
            kind=KIND_RESUME,
            not_before=self.clock.now,
        )

    def _resume(self, task: _Task) -> None:
        task.pending_event = None
        if self._crashed or task.finished:
            return
        while True:
            try:
                request = task.generator.send(None)
            except StopIteration:
                task.finished = True
                return
            if isinstance(request, Sleep):
                self._schedule_resumption_after(task, delay=request.duration)
                return
            if isinstance(request, WaitUntil):
                if request.predicate():
                    continue
                task.waiting_on = request
                return
            if isinstance(request, NextSyncStep):
                self._schedule_sync_step_resumption(task)
                return
            raise SimulationError(
                f"task {task.name!r} of {self.process_id!r} yielded an unsupported "
                f"request: {request!r}"
            )

    def _schedule_resumption_after(self, task: _Task, *, delay: Time) -> None:
        self._schedule_resumption(task, at=self.clock.now + delay)

    def _schedule_sync_step_resumption(self, task: _Task) -> None:
        if not isinstance(self._timing, SynchronousTiming):
            raise SimulationError(
                "next_synchronous_step() requires a synchronous timing model (HSS)"
            )
        boundary = self._timing.next_step_start(self.clock.now)
        task.pending_event = self._queue.schedule(
            boundary,
            self._resume,
            args=(task,),
            priority=2,
            label=f"sync-step {self.process_id!r}.{task.name}"
            if self._queue.debug_labels
            else "",
            kind=KIND_RESUME,
            not_before=self.clock.now,
        )
