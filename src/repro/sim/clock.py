"""Simulated time.

Time is a non-negative float.  The paper assumes a discrete global clock that
processes cannot read; here the clock is owned by the simulation engine and is
exposed read-only to components that legitimately need it (the network, the
trace, and detector oracles).  Algorithm code reads time only through the
durations it explicitly waits (``sleep``), never the absolute clock value,
which preserves the paper's "processes cannot access the global clock" rule
for everything except local timers.
"""

from __future__ import annotations

__all__ = ["Time", "Clock"]

#: Simulated time values.
Time = float


class Clock:
    """Monotonically advancing simulated clock.

    Only the simulation engine may advance it; every other component receives
    a reference and reads :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: Time = 0.0) -> None:
        if start < 0:
            raise ValueError("the clock cannot start before time 0")
        self._now: Time = float(start)

    @property
    def now(self) -> Time:
        """The current simulated time."""
        return self._now

    def advance_to(self, when: Time) -> None:
        """Move the clock forward to ``when`` (the engine's prerogative)."""
        if when < self._now:
            raise ValueError(
                f"clock cannot move backwards (now={self._now}, requested={when})"
            )
        self._now = float(when)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Clock(now={self._now})"
