"""Seeded random-number streams.

Every source of nondeterminism in a run (link latencies, per-process choices,
crash subsets, workload generation) draws from its own named stream derived
from a single master seed.  This keeps runs reproducible and keeps unrelated
components from perturbing each other's draws when the code evolves.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngStreams"]


class RngStreams:
    """A factory of independent, deterministically seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this factory was created with."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream seed is derived by hashing the master seed together with
        the name, so adding a new stream never shifts the draws of existing
        ones.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._master_seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory (used to give sub-experiments their own space)."""
        digest = hashlib.sha256(f"{self._master_seed}/{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
