"""The simulation engine.

:class:`Simulation` turns a declarative :class:`~repro.sim.system.System` into
an executable run: it creates the clock, event queue, network, one
:class:`~repro.sim.process.ProcessRuntime` per process, and one instance per
attached failure detector; schedules the crash events; and then processes
events in deterministic order until a stop condition, the time horizon, or
quiescence is reached.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SimulationError
from ..identity import ProcessId
from .clock import Clock, Time
from .events import KIND_CRASH, KIND_DELIVERY, KIND_DETECTOR, EventQueue
from .failures import FailurePattern
from .network import Network
from .process import ProcessRuntime
from .rng import RngStreams
from .system import DetectorServices, System
from .trace import RunTrace

__all__ = ["Simulation"]

#: Crash events run after all other activity at the same instant, so a process
#: that broadcasts "at the moment of its crash" still issues the (possibly
#: partially delivered) broadcast — matching the paper's crash-while-
#: broadcasting allowance.
_CRASH_PRIORITY = 5

_DEFAULT_MAX_EVENTS = 5_000_000

#: When set to a list, every completed :meth:`Simulation.run` appends the
#: queue's integer digest to it.  This is the capture point digest manifests
#: use to harvest per-run digests *inside worker processes* (where a parent
#: monkeypatch never arrives under the ``spawn`` start method); see
#: ``repro.runtime.engine.run_with_digest_capture``.  ``None`` (the default)
#: keeps the hot path free of any bookkeeping beyond one global read per run.
DIGEST_SINK: list[int] | None = None


class Simulation:
    """One executable run of a :class:`~repro.sim.system.System`."""

    def __init__(self, system: System) -> None:
        self.system = system
        self.clock = Clock()
        self.queue = EventQueue(debug_labels=system.debug)
        self.trace = RunTrace()
        self.rng_streams = RngStreams(system.seed)
        self.failure_pattern: FailurePattern = system.failure_pattern()
        self.network = Network(
            system.membership,
            system.timing,
            self.failure_pattern,
            clock=self.clock,
            queue=self.queue,
            trace=self.trace,
            rng=self.rng_streams.stream("network"),
            links=system.links,
        )
        self.runtimes: dict[ProcessId, ProcessRuntime] = {}
        self.detectors: dict[str, object] = {}
        self._started = False
        self._events_processed = 0
        self._build_runtimes()
        self._instantiate_detectors()
        self._schedule_crashes()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_runtimes(self) -> None:
        for process in self.system.membership.processes:
            identity = self.system.membership.identity_of(process)
            program = self.system.program_factory(process, identity)
            runtime = ProcessRuntime(
                process,
                identity,
                program,
                clock=self.clock,
                queue=self.queue,
                timing=self.system.timing,
                trace=self.trace,
                rng=self.rng_streams.stream(f"process:{process.index}"),
                broadcast_fn=self.network.broadcast,
                multicast_fn=self.network.multicast,
            )
            self.runtimes[process] = runtime
        self.network.connect(
            {process: runtime.deliver for process, runtime in self.runtimes.items()}
        )

    def _instantiate_detectors(self) -> None:
        services = DetectorServices(
            membership=self.system.membership,
            failure_pattern=self.failure_pattern,
            clock=self.clock,
            rng_streams=self.rng_streams.spawn("detectors"),
            schedule=self._schedule_callback,
            poke_all=self.poke_all,
        )
        for name, factory in self.system.detectors.items():
            detector = factory(services)
            self.detectors[name] = detector
            for process, runtime in self.runtimes.items():
                runtime.attach_detector_view(name, detector.view_for(process))

    def _schedule_crashes(self) -> None:
        for event in self.system.crash_schedule.events:
            runtime = self.runtimes[event.process]
            self.queue.schedule(
                event.time,
                runtime.crash,
                priority=_CRASH_PRIORITY,
                label=f"crash {event.process!r}",
                kind=KIND_CRASH,
            )

    def _schedule_callback(self, when: Time, action: Callable[[], None]):
        return self.queue.schedule(
            when,
            action,
            priority=3,
            label="detector-wakeup",
            kind=KIND_DETECTOR,
            not_before=None,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def poke_all(self) -> None:
        """Re-evaluate the wait conditions of every live process."""
        for runtime in self.runtimes.values():
            runtime.poke()

    def start(self) -> None:
        """Run every process's ``setup`` (idempotent)."""
        if self._started:
            return
        self._started = True
        for runtime in self.runtimes.values():
            runtime.start()

    def run(
        self,
        *,
        until: Time,
        stop_when: Callable[["Simulation"], bool] | None = None,
        max_events: int = _DEFAULT_MAX_EVENTS,
    ) -> RunTrace:
        """Execute events until ``until``, a stop condition, or quiescence.

        ``stop_when`` is evaluated after each processed event; returning
        ``True`` ends the run early (the usual condition is "every correct
        process has decided").  ``max_events`` is a safety valve against
        accidentally unbounded algorithms.
        """
        if until < self.clock.now:
            raise SimulationError(
                f"cannot run until {until}: the clock is already at {self.clock.now}"
            )
        self.start()
        if stop_when is not None and stop_when(self):
            self.trace.mark_end(self.clock.now)
            if DIGEST_SINK is not None:
                DIGEST_SINK.append(self.queue.digest)
            return self.trace
        stopped_early = False
        queue = self.queue
        clock = self.clock
        while True:
            # One fused call: returns None both when the queue is empty and
            # when the next event lies beyond the horizon.
            event = queue.pop_next(until)
            if event is None:
                break
            clock.advance_to(event.time)
            event.action(*event.args)
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationError(
                    f"the run exceeded {max_events} events; "
                    "the algorithm is probably not quiescing"
                )
            # Delivery events are never cancelled and their handles are never
            # retained, so the dispatched object can be reused by the next
            # schedule() instead of allocating a fresh one.
            if event.kind == KIND_DELIVERY and event.batch is None:
                queue.recycle(event)
            if stop_when is not None and stop_when(self):
                stopped_early = True
                break
        if not stopped_early:
            # The horizon was reached (or the system quiesced before it); the
            # run formally covers the whole interval up to ``until``.
            self.clock.advance_to(until)
        self.trace.mark_end(self.clock.now)
        if DIGEST_SINK is not None:
            DIGEST_SINK.append(self.queue.digest)
        return self.trace

    # ------------------------------------------------------------------
    # Convenience queries (used by stop conditions and tests)
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """How many events have been executed so far."""
        return self._events_processed

    @property
    def digest(self) -> str:
        """The run's determinism digest as a fixed-width hex string.

        Equal digests mean the run dispatched exactly the same events (same
        times, priorities, sequence numbers, and kinds) in the same order —
        see :attr:`repro.sim.events.EventQueue.digest`.
        """
        return f"{self.queue.digest:016x}"

    def correct_processes(self) -> frozenset[ProcessId]:
        """The correct processes of this run's failure pattern."""
        return self.failure_pattern.correct

    def all_correct_decided(self) -> bool:
        """Return ``True`` when every correct process has decided."""
        return self.trace.all_decided(self.correct_processes())

    def detector(self, name: str) -> object:
        """Return an attached detector instance by name."""
        try:
            return self.detectors[name]
        except KeyError:
            raise SimulationError(f"no detector named {name!r} is attached") from None
