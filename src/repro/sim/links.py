"""Pluggable link models: per-link delivery behaviour as a first-class layer.

The network layer splits the fate of a message copy between two collaborators:

* the :class:`~repro.sim.timing.TimingModel` answers *how long* — it draws the
  base delivery time of a copy over a link (and may declare paper-sanctioned
  pre-GST loss in the partially synchronous model);
* a :class:`LinkModel` answers *whether* and *how many* — it can drop the
  copy, duplicate it, add jitter or a per-direction latency penalty, or sever
  it entirely during a timed partition.

Link models are pure transformations over the tuple of candidate delivery
times of one copy, so they compose: :class:`ComposedLinks` chains stages in
order, each seeing the output of the previous one.  The default
:class:`ReliableLinks` is the identity, which preserves the seed-for-seed
behaviour of runs that predate this layer.

Every model exposes two envelope facts the scenario builder checks against the
paper's assumption table:

* :meth:`LinkModel.unreliable_until` — the latest time at which the model may
  still lose or duplicate copies (``0.0`` = never, ``inf`` = forever);
* :meth:`LinkModel.extra_delay_bound` — the largest latency the model can add
  on top of the timing model's draw (``0.0`` for none).

``HSS`` tolerates neither; ``HPS`` tolerates loss only before GST (and any
finite extra delay, since its bound δ is unknown to the algorithms anyway);
``HAS`` tolerates any adversity that eventually heals.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..errors import ConfigurationError
from ..identity import ProcessId
from .clock import Time

__all__ = [
    "LinkModel",
    "ReliableLinks",
    "LossyLinks",
    "DuplicatingLinks",
    "JitterLinks",
    "AsymmetricLinks",
    "Partition",
    "PartitionedLinks",
    "ComposedLinks",
]


class LinkModel:
    """Interface of one stage of per-link delivery behaviour.

    :meth:`deliveries` receives the candidate delivery times of one message
    copy over the ``sender → receiver`` link (the timing model's draw, or the
    output of the previous stage) and returns the possibly filtered,
    duplicated, or re-timed tuple.  Returning ``()`` drops the copy.
    """

    def deliveries(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        sent_at: Time,
        times: tuple[Time, ...],
        rng: random.Random,
    ) -> tuple[Time, ...]:
        """Transform the candidate delivery times of one copy (default: identity)."""
        return times

    def unreliable_until(self) -> Time:
        """Latest time the model may lose/duplicate copies (0.0 = never, inf = forever)."""
        return 0.0

    def extra_delay_bound(self) -> Time:
        """The largest latency this model adds beyond the timing model's draw."""
        return 0.0

    def describe(self) -> str:
        """Short human-readable description for logs and experiment tables."""
        raise NotImplementedError


def _window_end(end: Time | None) -> Time:
    return math.inf if end is None else end


def _validate_window(start: Time, end: Time | None) -> None:
    if start < 0:
        raise ConfigurationError("a fault window cannot start before time 0")
    if end is not None and end <= start:
        raise ConfigurationError("a fault window must end strictly after it starts")


@dataclass(frozen=True)
class ReliableLinks(LinkModel):
    """The default: every copy is delivered exactly once, exactly when drawn."""

    def deliveries(self, sender, receiver, sent_at, times, rng):
        return times

    def describe(self) -> str:
        return "reliable"


@dataclass(frozen=True)
class LossyLinks(LinkModel):
    """Drop each copy independently with probability ``loss`` inside a window.

    ``end=None`` means the loss never stops — adversarial for every system
    family's termination guarantees, which the builder flags accordingly.
    """

    loss: float = 0.1
    start: Time = 0.0
    end: Time | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ConfigurationError("loss must be a probability")
        _validate_window(self.start, self.end)
        # Cached window end: ``deliveries`` runs once per message copy, so it
        # must not re-derive ``inf`` from ``None`` on every call.
        object.__setattr__(self, "_end_time", _window_end(self.end))

    def deliveries(self, sender, receiver, sent_at, times, rng):
        if not times or self.loss <= 0.0:
            return times
        if not (self.start <= sent_at < self._end_time):
            return times
        return tuple(when for when in times if rng.random() >= self.loss)

    def unreliable_until(self) -> Time:
        return 0.0 if self.loss <= 0.0 else _window_end(self.end)

    def describe(self) -> str:
        until = "∞" if self.end is None else f"{self.end}"
        return f"lossy p={self.loss} over [{self.start},{until})"


@dataclass(frozen=True)
class DuplicatingLinks(LinkModel):
    """Duplicate each copy with probability ``probability`` inside a window.

    A duplicated copy arrives ``copies`` times in total; each extra copy is
    delayed by a fresh ``uniform(0, spread)`` draw on top of the original
    delivery time.  Duplication is adversarial for counting algorithms in
    homonymous systems (two copies from one sender are indistinguishable from
    two homonymous senders), so it counts toward :meth:`unreliable_until`.
    """

    probability: float = 0.1
    copies: int = 2
    spread: Time = 0.0
    start: Time = 0.0
    end: Time | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("probability must lie in [0, 1]")
        if self.copies < 2:
            raise ConfigurationError("duplication needs at least 2 copies")
        if self.spread < 0:
            raise ConfigurationError("spread cannot be negative")
        _validate_window(self.start, self.end)
        object.__setattr__(self, "_end_time", _window_end(self.end))

    def deliveries(self, sender, receiver, sent_at, times, rng):
        if not times or self.probability <= 0.0:
            return times
        if not (self.start <= sent_at < self._end_time):
            return times
        expanded: list[Time] = []
        for when in times:
            expanded.append(when)
            if rng.random() < self.probability:
                for _ in range(self.copies - 1):
                    extra = rng.uniform(0.0, self.spread) if self.spread > 0 else 0.0
                    expanded.append(when + extra)
        return tuple(expanded)

    def unreliable_until(self) -> Time:
        return 0.0 if self.probability <= 0.0 else _window_end(self.end)

    def extra_delay_bound(self) -> Time:
        return self.spread if self.probability > 0.0 else 0.0

    def describe(self) -> str:
        return f"duplicating p={self.probability}×{self.copies}"


@dataclass(frozen=True)
class JitterLinks(LinkModel):
    """Add ``uniform(0, max_jitter)`` to every copy inside a window.

    Jitter reorders messages relative to the timing model's draws but never
    loses or duplicates them, so only :meth:`extra_delay_bound` is non-zero.
    """

    max_jitter: Time = 1.0
    start: Time = 0.0
    end: Time | None = None

    def __post_init__(self) -> None:
        if self.max_jitter < 0:
            raise ConfigurationError("max_jitter cannot be negative")
        _validate_window(self.start, self.end)
        object.__setattr__(self, "_end_time", _window_end(self.end))

    def deliveries(self, sender, receiver, sent_at, times, rng):
        if not times or self.max_jitter <= 0.0:
            return times
        if not (self.start <= sent_at < self._end_time):
            return times
        # uniform(0, b) is 0.0 + (b - 0.0) * random(); identical draw, no call.
        max_jitter = self.max_jitter
        return tuple(when + max_jitter * rng.random() for when in times)

    def extra_delay_bound(self) -> Time:
        return self.max_jitter

    def describe(self) -> str:
        return f"jitter ≤{self.max_jitter}"


@dataclass(frozen=True)
class AsymmetricLinks(LinkModel):
    """Deterministic per-direction latency penalties.

    ``extra`` maps ``"i->j"`` link keys (process indices) to an additional
    delay applied on top of the timing model's draw for that direction;
    ``default`` applies to every link not named.  The string keys keep the
    mapping JSON-serializable in a :class:`~repro.runtime.spec.NetworkSpec`.

    A constant penalty keeps links eventually timely (the paper's δ is an
    unknown bound, so δ + extra is just as valid), hence
    :meth:`unreliable_until` stays 0.
    """

    extra: Mapping[str, Time] = field(default_factory=dict)
    default: Time = 0.0

    def __post_init__(self) -> None:
        if self.default < 0:
            raise ConfigurationError("the default extra delay cannot be negative")
        normalized: dict[str, Time] = {}
        for key, value in dict(self.extra).items():
            if value < 0:
                raise ConfigurationError(f"extra delay for link {key!r} cannot be negative")
            try:
                left, right = (int(part) for part in str(key).split("->"))
            except ValueError:
                raise ConfigurationError(
                    f"asymmetric link keys look like 'i->j' (process indices); got {key!r}"
                ) from None
            if left < 0 or right < 0:
                raise ConfigurationError(
                    f"asymmetric link keys use non-negative process indices; got {key!r}"
                )
            normalized[f"{left}->{right}"] = float(value)
        object.__setattr__(self, "extra", normalized)

    def deliveries(self, sender, receiver, sent_at, times, rng):
        if not times:
            return times
        penalty = self.extra.get(f"{sender.index}->{receiver.index}", self.default)
        if penalty <= 0.0:
            return times
        return tuple(when + penalty for when in times)

    def extra_delay_bound(self) -> Time:
        return max([self.default, *self.extra.values()], default=self.default)

    def describe(self) -> str:
        return f"asymmetric ({len(self.extra)} link(s), default +{self.default})"


@dataclass(frozen=True)
class Partition(LinkModel):
    """One timed partition: disjoint blocks that cannot reach each other.

    A copy is dropped iff it is *sent* between ``start`` and ``end`` (the
    heal event; ``None`` = never heals) while sender and receiver sit in
    *different* blocks of ``groups`` (tuples of process indices).  A process
    not named in any block is unaffected — it keeps both directions of all
    its links.  The gate is the send time: a copy sent just before the cut
    may still arrive mid-window (it was already "on the wire"), and copies
    sent across the cut during the window are lost, not delayed — healing
    restores the link, not the traffic.
    """

    start: Time
    end: Time | None
    groups: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        _validate_window(self.start, self.end)
        blocks = tuple(tuple(int(index) for index in group) for group in self.groups)
        seen: set[int] = set()
        for block in blocks:
            for index in block:
                if index < 0:
                    raise ConfigurationError("process indices cannot be negative")
                if index in seen:
                    raise ConfigurationError(
                        f"process {index} appears in more than one partition block"
                    )
                seen.add(index)
        if len(blocks) < 2:
            raise ConfigurationError("a partition needs at least two blocks")
        object.__setattr__(self, "groups", blocks)
        object.__setattr__(
            self, "_block_of", {index: i for i, block in enumerate(blocks) for index in block}
        )
        object.__setattr__(self, "_end_time", _window_end(self.end))

    def severs(self, sender: ProcessId, receiver: ProcessId, at: Time) -> bool:
        """Whether the ``sender → receiver`` link is cut at time ``at``."""
        if not (self.start <= at < self._end_time):
            return False
        block_of: dict[int, int] = getattr(self, "_block_of")
        sender_block = block_of.get(sender.index)
        receiver_block = block_of.get(receiver.index)
        if sender_block is None or receiver_block is None:
            return False
        return sender_block != receiver_block

    def deliveries(self, sender, receiver, sent_at, times, rng):
        if times and self.severs(sender, receiver, sent_at):
            return ()
        return times

    def unreliable_until(self) -> Time:
        return _window_end(self.end)

    def describe(self) -> str:
        until = "∞" if self.end is None else f"{self.end}"
        blocks = "|".join(",".join(map(str, block)) for block in self.groups)
        return f"partition {{{blocks}}} over [{self.start},{until})"

    @classmethod
    def from_window(cls, window: Mapping[str, Any]) -> "Partition":
        """Build from the JSON shape ``{"start":, "end":, "groups": [[...]]}``."""
        return cls(
            start=float(window.get("start", 0.0)),
            end=None if window.get("end") is None else float(window["end"]),
            groups=tuple(tuple(group) for group in window.get("groups", ())),
        )


@dataclass(frozen=True)
class PartitionedLinks(LinkModel):
    """A sequence of timed partitions, each with its own heal event."""

    partitions: tuple[Partition, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "partitions", tuple(self.partitions))

    def deliveries(self, sender, receiver, sent_at, times, rng):
        for partition in self.partitions:
            if times and partition.severs(sender, receiver, sent_at):
                return ()
        return times

    def unreliable_until(self) -> Time:
        return max(
            (partition.unreliable_until() for partition in self.partitions), default=0.0
        )

    def describe(self) -> str:
        if not self.partitions:
            return "no partitions"
        return "; ".join(partition.describe() for partition in self.partitions)

    @classmethod
    def from_windows(cls, windows: Sequence[Mapping[str, Any]]) -> "PartitionedLinks":
        return cls(tuple(Partition.from_window(window) for window in windows))


@dataclass(frozen=True)
class ComposedLinks(LinkModel):
    """Apply several link models in order; each stage sees the previous output."""

    stages: tuple[LinkModel, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))

    def deliveries(self, sender, receiver, sent_at, times, rng):
        for stage in self.stages:
            if not times:
                return times
            times = stage.deliveries(sender, receiver, sent_at, times, rng)
        return times

    def unreliable_until(self) -> Time:
        return max((stage.unreliable_until() for stage in self.stages), default=0.0)

    def extra_delay_bound(self) -> Time:
        return sum(stage.extra_delay_bound() for stage in self.stages)

    def describe(self) -> str:
        if not self.stages:
            return "reliable"
        return " ∘ ".join(stage.describe() for stage in self.stages)
