"""The broadcast network.

The network owns the directed links between every ordered pair of processes
and turns one ``broadcast(m)`` invocation into ``n`` link messages.  Two
collaborators decide the fate of each copy:

* the :class:`~repro.sim.timing.TimingModel` draws *when* the copy would
  arrive (and may declare paper-sanctioned pre-GST loss in the partially
  synchronous model);
* the :class:`~repro.sim.links.LinkModel` decides *whether* and *how many*
  copies actually arrive — loss, duplication, jitter, per-direction latency
  penalties, and timed partitions all live there.

The default :class:`~repro.sim.links.ReliableLinks` model is the identity:
no duplication, no corruption, no spurious messages, which reproduces the
behaviour of the pre-link-model network seed for seed.  Loss is then only
possible before GST under the partially synchronous model, and for the final
broadcast of a process that crashes mid-broadcast (both allowed by the paper).
"""

from __future__ import annotations

import random
from typing import Callable, Mapping

from ..errors import SimulationError
from ..identity import ProcessId
from ..membership import Membership
from .clock import Clock
from .events import KIND_DELIVERY, EventQueue
from .failures import CrashEvent, FailurePattern
from .links import LinkModel, ReliableLinks
from .message import Message
from .timing import TimingModel
from .trace import RunTrace

__all__ = ["Network"]

#: Delivery events run before process wake-ups scheduled at the same instant,
#: so a process resumed at time T has already received everything due at T.
_DELIVERY_PRIORITY = 1

#: Tolerance when matching "the broadcast issued at the instant of the crash".
_CRASH_BROADCAST_TOLERANCE = 1e-9


class Network:
    """Schedules message deliveries for broadcasts."""

    def __init__(
        self,
        membership: Membership,
        timing: TimingModel,
        failure_pattern: FailurePattern,
        *,
        clock: Clock,
        queue: EventQueue,
        trace: RunTrace,
        rng: random.Random,
        links: LinkModel | None = None,
    ) -> None:
        self._membership = membership
        self._timing = timing
        self._pattern = failure_pattern
        self._clock = clock
        self._queue = queue
        self._trace = trace
        self._rng = rng
        self._links = links if links is not None else ReliableLinks()
        # The identity model needs no per-copy transformation; skipping the
        # call keeps the default broadcast path as lean as before the layer
        # existed (and RNG-draw-identical, since ReliableLinks never draws).
        self._links_are_reliable = type(self._links) is ReliableLinks
        # The full recipient tuple never changes; resolve it once instead of
        # re-deriving it from the membership on every broadcast.
        self._everyone: tuple[ProcessId, ...] = membership.processes
        index_bound = max(process.index for process in self._everyone) + 1
        # Only crashes that may truncate a same-instant broadcast matter to
        # the hot path; resolving them once here (into an index-addressed
        # list, so the per-broadcast probe is one list access instead of a
        # dict hash) replaces a linear scan of the schedule per broadcast.
        self._partial_crash_by_index: list[CrashEvent | None] = [None] * index_bound
        for event in failure_pattern.schedule.events:
            if event.partial_broadcast_fraction is not None:
                self._partial_crash_by_index[event.process.index] = event
        self._deliver_to: Mapping[ProcessId, Callable[[Message], None]] = {}
        # Delivery callbacks addressed by process index: list indexing beats
        # dict hashing for the one lookup every message copy must make.
        self._deliver_by_index: list[Callable[[Message], None] | None] = []
        # Index → ProcessId, for resolving multicast target sets.
        self._process_by_index: list[ProcessId | None] = [None] * index_bound
        for process in self._everyone:
            self._process_by_index[process.index] = process

    @property
    def links(self) -> LinkModel:
        """The link model shaping per-link delivery behaviour."""
        return self._links

    def connect(self, deliver_to: Mapping[ProcessId, Callable[[Message], None]]) -> None:
        """Wire the per-process delivery callbacks (done once by the simulation)."""
        missing = set(self._membership.processes) - set(deliver_to)
        if missing:
            raise SimulationError(f"no delivery callback for processes {sorted(missing)}")
        self._deliver_to = dict(deliver_to)
        index_bound = max(process.index for process in deliver_to) + 1
        by_index: list[Callable[[Message], None] | None] = [None] * index_bound
        for process, callback in deliver_to.items():
            by_index[process.index] = callback
        self._deliver_by_index = by_index

    # ------------------------------------------------------------------
    # The broadcast primitive
    # ------------------------------------------------------------------
    def broadcast(self, sender: ProcessId, message: Message) -> None:
        """Send one copy of ``message`` along the link to every process.

        Three paths, fastest first, all draw-for-draw and dispatch-order
        identical (checked by the determinism digest):

        * reliable links + uniform delivery (HSS): every copy arrives at the
          same deterministic instant, so the whole broadcast becomes one
          batched heap entry — ``n`` recipients cost one heap operation;
        * reliable links, per-receiver draws (HAS/HPS): one amortised
          :meth:`~repro.sim.timing.TimingModel.delivery_times` call, one
          (possibly recycled) event per surviving copy;
        * adversarial links: the full per-copy pipeline through
          :meth:`~repro.sim.links.LinkModel.deliveries`, preserving the
          per-receiver RNG draw interleaving.
        """
        deliver = self._deliver_by_index
        if not deliver:
            raise SimulationError("the network has not been connected to any processes")
        sent_at = self._clock.now
        recipients = self._recipients_for(sender, sent_at)
        self._trace.record_broadcast(message.kind, copies=len(recipients))
        timing = self._timing
        rng = self._rng
        queue = self._queue
        debug = queue.debug_labels
        if self._links_are_reliable:
            if timing.uniform_delivery and len(recipients) > 1 and not debug:
                drawn = timing.delivery_time(sender, recipients[0], sent_at, rng)
                if drawn is None:
                    return
                if drawn < sent_at:
                    raise SimulationError(
                        f"timing model produced a delivery before the send time "
                        f"({drawn} < {sent_at})"
                    )
                queue.schedule_batch(
                    drawn,
                    [deliver[receiver.index] for receiver in recipients],
                    args=(message,),
                    priority=_DELIVERY_PRIORITY,
                    kind=KIND_DELIVERY,
                )
                return
            schedule = queue.schedule
            times = timing.delivery_times(sender, recipients, sent_at, rng)
            for receiver, when in zip(recipients, times):
                if when is None:
                    continue  # lost before GST (partially synchronous model only)
                if when < sent_at:
                    raise SimulationError(
                        f"timing model produced a delivery before the send time "
                        f"({when} < {sent_at})"
                    )
                schedule(
                    when,
                    deliver[receiver.index],
                    args=(message,),
                    priority=_DELIVERY_PRIORITY,
                    label=f"deliver {message.kind} to {receiver!r}" if debug else "",
                    kind=KIND_DELIVERY,
                )
            return
        links = self._links
        for receiver in recipients:
            drawn = timing.delivery_time(sender, receiver, sent_at, rng)
            if drawn is None:
                continue  # lost before GST (partially synchronous model only)
            if drawn < sent_at:
                raise SimulationError(
                    f"timing model produced a delivery before the send time "
                    f"({drawn} < {sent_at})"
                )
            for when in links.deliveries(sender, receiver, sent_at, (drawn,), rng):
                if when < sent_at:
                    raise SimulationError(
                        f"link model produced a delivery before the send time "
                        f"({when} < {sent_at})"
                    )
                queue.schedule(
                    when,
                    deliver[receiver.index],
                    args=(message,),
                    priority=_DELIVERY_PRIORITY,
                    label=f"deliver {message.kind} to {receiver!r}" if debug else "",
                    kind=KIND_DELIVERY,
                )

    # ------------------------------------------------------------------
    # The multicast primitive (sparse monitoring topologies)
    # ------------------------------------------------------------------
    def multicast(self, sender: ProcessId, message: Message, targets) -> None:
        """Send one copy of ``message`` to the processes at ``targets`` only.

        ``targets`` is an iterable of process *indices* (a monitoring
        topology's target set).  The copy fate pipeline — timing draw, link
        model, crash-instant truncation — is the same as :meth:`broadcast`,
        applied to the target subset; the sender only hears its own message
        when its own index is targeted.
        """
        deliver = self._deliver_by_index
        if not deliver:
            raise SimulationError("the network has not been connected to any processes")
        sent_at = self._clock.now
        recipients = self._multicast_recipients(sender, sent_at, targets)
        self._trace.record_broadcast(message.kind, copies=len(recipients))
        if not recipients:
            return
        timing = self._timing
        rng = self._rng
        queue = self._queue
        debug = queue.debug_labels
        if self._links_are_reliable:
            if timing.uniform_delivery and len(recipients) > 1 and not debug:
                drawn = timing.delivery_time(sender, recipients[0], sent_at, rng)
                if drawn is None:
                    return
                if drawn < sent_at:
                    raise SimulationError(
                        f"timing model produced a delivery before the send time "
                        f"({drawn} < {sent_at})"
                    )
                queue.schedule_batch(
                    drawn,
                    [deliver[receiver.index] for receiver in recipients],
                    args=(message,),
                    priority=_DELIVERY_PRIORITY,
                    kind=KIND_DELIVERY,
                )
                return
            schedule = queue.schedule
            times = timing.delivery_times(sender, recipients, sent_at, rng)
            for receiver, when in zip(recipients, times):
                if when is None:
                    continue  # lost before GST (partially synchronous model only)
                if when < sent_at:
                    raise SimulationError(
                        f"timing model produced a delivery before the send time "
                        f"({when} < {sent_at})"
                    )
                schedule(
                    when,
                    deliver[receiver.index],
                    args=(message,),
                    priority=_DELIVERY_PRIORITY,
                    label=f"deliver {message.kind} to {receiver!r}" if debug else "",
                    kind=KIND_DELIVERY,
                )
            return
        links = self._links
        for receiver in recipients:
            drawn = timing.delivery_time(sender, receiver, sent_at, rng)
            if drawn is None:
                continue  # lost before GST (partially synchronous model only)
            if drawn < sent_at:
                raise SimulationError(
                    f"timing model produced a delivery before the send time "
                    f"({drawn} < {sent_at})"
                )
            for when in links.deliveries(sender, receiver, sent_at, (drawn,), rng):
                if when < sent_at:
                    raise SimulationError(
                        f"link model produced a delivery before the send time "
                        f"({when} < {sent_at})"
                    )
                queue.schedule(
                    when,
                    deliver[receiver.index],
                    args=(message,),
                    priority=_DELIVERY_PRIORITY,
                    label=f"deliver {message.kind} to {receiver!r}" if debug else "",
                    kind=KIND_DELIVERY,
                )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _multicast_recipients(
        self, sender: ProcessId, sent_at: float, targets
    ) -> tuple[ProcessId, ...]:
        """Resolve target indices to processes, honouring crash truncation."""
        by_index = self._process_by_index
        bound = len(by_index)
        recipients: list[ProcessId] = []
        for index in targets:
            process = by_index[index] if 0 <= index < bound else None
            if process is None:
                raise SimulationError(
                    f"multicast target index {index} names no process "
                    f"(membership has indices 0..{bound - 1})"
                )
            recipients.append(process)
        recipients.sort()
        crash_event = self._partial_crash_by_index[sender.index]
        if (
            crash_event is not None
            and abs(crash_event.time - sent_at) <= _CRASH_BROADCAST_TOLERANCE
        ):
            subset_size = int(
                crash_event.partial_broadcast_fraction * len(recipients)
            )
            chosen = self._rng.sample(recipients, k=subset_size) if subset_size else []
            return tuple(sorted(chosen))
        return tuple(recipients)

    def _recipients_for(self, sender: ProcessId, sent_at: float) -> tuple[ProcessId, ...]:
        """All processes, unless the sender crashes during this very broadcast.

        The paper allows the message of a process that crashes while
        broadcasting to reach an arbitrary subset of processes.  We model this
        for broadcasts issued at the instant of the sender's crash (the crash
        event is applied after same-time process activity): a random subset of
        the configured size receives the copy.
        """
        everyone = self._everyone
        crash_event = self._partial_crash_by_index[sender.index]
        if (
            crash_event is not None
            and abs(crash_event.time - sent_at) <= _CRASH_BROADCAST_TOLERANCE
        ):
            subset_size = int(crash_event.partial_broadcast_fraction * len(everyone))
            chosen = self._rng.sample(list(everyone), k=subset_size) if subset_size else []
            return tuple(sorted(chosen))
        return everyone
