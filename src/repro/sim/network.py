"""The broadcast network.

The network owns the directed links between every ordered pair of processes
and turns one ``broadcast(m)`` invocation into ``n`` link messages whose
delivery times are drawn from the timing model.  Links are reliable: no
duplication, no corruption, no spurious messages; loss is only possible before
GST under the partially synchronous model, and for the final broadcast of a
process that crashes mid-broadcast (both allowed by the paper).
"""

from __future__ import annotations

import random
from typing import Callable, Mapping

from ..errors import SimulationError
from ..identity import ProcessId
from ..membership import Membership
from .clock import Clock
from .events import EventQueue
from .failures import FailurePattern
from .message import Broadcast, Message
from .timing import TimingModel
from .trace import RunTrace

__all__ = ["Network"]

#: Delivery events run before process wake-ups scheduled at the same instant,
#: so a process resumed at time T has already received everything due at T.
_DELIVERY_PRIORITY = 1

#: Tolerance when matching "the broadcast issued at the instant of the crash".
_CRASH_BROADCAST_TOLERANCE = 1e-9


class Network:
    """Schedules message deliveries for broadcasts."""

    def __init__(
        self,
        membership: Membership,
        timing: TimingModel,
        failure_pattern: FailurePattern,
        *,
        clock: Clock,
        queue: EventQueue,
        trace: RunTrace,
        rng: random.Random,
    ) -> None:
        self._membership = membership
        self._timing = timing
        self._pattern = failure_pattern
        self._clock = clock
        self._queue = queue
        self._trace = trace
        self._rng = rng
        self._deliver_to: Mapping[ProcessId, Callable[[Message], None]] = {}

    def connect(self, deliver_to: Mapping[ProcessId, Callable[[Message], None]]) -> None:
        """Wire the per-process delivery callbacks (done once by the simulation)."""
        missing = set(self._membership.processes) - set(deliver_to)
        if missing:
            raise SimulationError(f"no delivery callback for processes {sorted(missing)}")
        self._deliver_to = dict(deliver_to)

    # ------------------------------------------------------------------
    # The broadcast primitive
    # ------------------------------------------------------------------
    def broadcast(self, sender: ProcessId, message: Message) -> None:
        """Send one copy of ``message`` along the link to every process."""
        if not self._deliver_to:
            raise SimulationError("the network has not been connected to any processes")
        sent_at = self._clock.now
        record = Broadcast.create(sender, message, sent_at)
        recipients = self._recipients_for(sender, sent_at)
        self._trace.record_broadcast(message.kind, copies=len(recipients))
        for receiver in recipients:
            delivery_time = self._timing.delivery_time(sender, receiver, sent_at, self._rng)
            if delivery_time is None:
                continue  # lost before GST (partially synchronous model only)
            if delivery_time < sent_at:
                raise SimulationError(
                    f"timing model produced a delivery before the send time "
                    f"({delivery_time} < {sent_at})"
                )
            self._schedule_delivery(receiver, record, delivery_time)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _recipients_for(self, sender: ProcessId, sent_at: float) -> tuple[ProcessId, ...]:
        """All processes, unless the sender crashes during this very broadcast.

        The paper allows the message of a process that crashes while
        broadcasting to reach an arbitrary subset of processes.  We model this
        for broadcasts issued at the instant of the sender's crash (the crash
        event is applied after same-time process activity): a random subset of
        the configured size receives the copy.
        """
        everyone = self._membership.processes
        crash_event = self._pattern.schedule.event_for(sender)
        if (
            crash_event is not None
            and crash_event.partial_broadcast_fraction is not None
            and abs(crash_event.time - sent_at) <= _CRASH_BROADCAST_TOLERANCE
        ):
            subset_size = int(crash_event.partial_broadcast_fraction * len(everyone))
            chosen = self._rng.sample(list(everyone), k=subset_size) if subset_size else []
            return tuple(sorted(chosen))
        return everyone

    def _schedule_delivery(self, receiver: ProcessId, record: Broadcast, when: float) -> None:
        deliver = self._deliver_to[receiver]
        self._queue.schedule(
            when,
            lambda: deliver(record.message),
            priority=_DELIVERY_PRIORITY,
            label=f"deliver {record.message.kind} to {receiver!r}",
            not_before=self._clock.now,
        )
