"""System configurations: which model, which processes, which detectors.

A :class:`System` is a declarative description of a run: the membership (and
therefore the homonymy pattern), the timing model, the crash schedule, the
program each process executes, and the failure detectors the system is
"enriched" with.  The :class:`~repro.sim.scheduler.Simulation` engine turns a
system into an executable run.

The paper's model names map onto :class:`SystemModel` values:

=============  =====================================================
``HAS``        homonymous asynchronous system (``HAS[∅]``)
``HPS``        homonymous, partially synchronous processes, eventually
               timely links (``HPS[∅]``)
``HSS``        homonymous synchronous system (``HSS[∅]``)
``AS``         classical asynchronous system with unique identifiers
``AAS``        anonymous asynchronous system
=============  =====================================================

``AS`` and ``AAS`` are the two homonymy extremes of ``HAS``; the builder
checks the membership actually matches the declared extreme.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol

from ..errors import ConfigurationError
from ..identity import Identity, ProcessId
from ..membership import Membership
from .clock import Clock, Time
from .failures import CrashSchedule, FailurePattern
from .links import LinkModel, ReliableLinks
from .process import ProcessProgram
from .rng import RngStreams
from .timing import (
    AsynchronousTiming,
    PartiallySynchronousTiming,
    SynchronousTiming,
    TimingModel,
)

__all__ = [
    "SystemModel",
    "DetectorServices",
    "DetectorInstance",
    "DetectorFactory",
    "ProgramFactory",
    "CompositeProgram",
    "System",
    "build_system",
]


class SystemModel(enum.Enum):
    """The paper's system families."""

    HAS = "HAS"
    HPS = "HPS"
    HSS = "HSS"
    AS = "AS"
    AAS = "AAS"

    @property
    def is_homonymous_general(self) -> bool:
        """True for the general homonymous families (no constraint on ids)."""
        return self in (SystemModel.HAS, SystemModel.HPS, SystemModel.HSS)


@dataclass
class DetectorServices:
    """What a failure-detector attachment may use while a run executes.

    Oracles use the failure pattern and clock to compute ground-truth outputs;
    every attachment may schedule wake-ups (``schedule``) and ask the engine to
    re-evaluate blocked processes (``poke_all``) when its output changes.
    """

    membership: Membership
    failure_pattern: FailurePattern
    clock: Clock
    rng_streams: RngStreams
    schedule: Callable[[Time, Callable[[], None]], Any]
    poke_all: Callable[[], None]


class DetectorInstance(Protocol):
    """The minimal interface a detector attachment must expose to the engine."""

    def view_for(self, process: ProcessId) -> Any:
        """Return the query view handed to the given process."""
        ...


#: A detector attachment: builds a detector instance when the run starts.
DetectorFactory = Callable[[DetectorServices], DetectorInstance]

#: Builds the program of one process.  Receives the internal process id (so a
#: scenario can hand different proposal values to different processes) and the
#: identifier; the program itself must only rely on the identifier.
ProgramFactory = Callable[[ProcessId, Identity], ProcessProgram]


class CompositeProgram(ProcessProgram):
    """Run several programs on the same process (e.g. consensus + a detector
    implementation stacked underneath it)."""

    def __init__(self, *programs: ProcessProgram) -> None:
        if not programs:
            raise ConfigurationError("a composite program needs at least one component")
        self._programs = programs

    def setup(self, ctx) -> None:
        for program in self._programs:
            program.setup(ctx)

    def describe(self) -> str:
        return " + ".join(program.describe() for program in self._programs)


@dataclass
class System:
    """A complete, declarative run configuration.

    ``debug`` opts one run into diagnostic mode: the simulation's event queue
    builds human-readable event labels (skipped on the hot path otherwise).
    """

    membership: Membership
    timing: TimingModel
    program_factory: ProgramFactory
    crash_schedule: CrashSchedule = field(default_factory=CrashSchedule.none)
    detectors: Mapping[str, DetectorFactory] = field(default_factory=dict)
    links: LinkModel = field(default_factory=ReliableLinks)
    model: SystemModel = SystemModel.HAS
    seed: int = 0
    name: str = ""
    debug: bool = False

    def __post_init__(self) -> None:
        self.crash_schedule.validate_against(self.membership)
        _validate_model(self.model, self.membership, self.timing)

    @property
    def n(self) -> int:
        """The number of processes."""
        return self.membership.size

    def failure_pattern(self) -> FailurePattern:
        """The failure pattern induced by the crash schedule."""
        return FailurePattern(self.membership, self.crash_schedule)

    def describe(self) -> str:
        """One-line description used in logs and experiment tables."""
        label = self.name or "system"
        links = ""
        if not isinstance(self.links, ReliableLinks):
            links = f" links={self.links.describe()}"
        return (
            f"{label}: {self.model.value}[{self.timing.describe()}] "
            f"{self.membership.describe()} crashes={len(self.crash_schedule.faulty)}"
            f"{links}"
        )


def build_system(
    *,
    membership: Membership,
    timing: TimingModel,
    program_factory: ProgramFactory,
    crash_schedule: CrashSchedule | None = None,
    detectors: Mapping[str, DetectorFactory] | None = None,
    links: LinkModel | None = None,
    model: SystemModel | None = None,
    seed: int = 0,
    name: str = "",
    debug: bool = False,
) -> System:
    """Build a :class:`System`, inferring the model from the timing when omitted."""
    if model is None:
        model = _infer_model(timing)
    return System(
        membership=membership,
        timing=timing,
        program_factory=program_factory,
        crash_schedule=crash_schedule or CrashSchedule.none(),
        detectors=dict(detectors or {}),
        links=links if links is not None else ReliableLinks(),
        model=model,
        seed=seed,
        name=name,
        debug=debug,
    )


def _infer_model(timing: TimingModel) -> SystemModel:
    if isinstance(timing, SynchronousTiming):
        return SystemModel.HSS
    if isinstance(timing, PartiallySynchronousTiming):
        return SystemModel.HPS
    return SystemModel.HAS


def _validate_model(model: SystemModel, membership: Membership, timing: TimingModel) -> None:
    if model is SystemModel.AS and not membership.is_uniquely_identified:
        raise ConfigurationError(
            "an AS system requires unique identifiers; the membership has homonyms"
        )
    if model is SystemModel.AAS and not membership.is_anonymous:
        raise ConfigurationError(
            "an AAS system requires all processes to share one identifier"
        )
    if model is SystemModel.HSS and not isinstance(timing, SynchronousTiming):
        raise ConfigurationError("an HSS system requires a synchronous timing model")
    if model is SystemModel.HPS and not isinstance(timing, PartiallySynchronousTiming):
        raise ConfigurationError(
            "an HPS system requires a partially synchronous timing model"
        )
    if model in (SystemModel.HAS, SystemModel.AS, SystemModel.AAS) and isinstance(
        timing, SynchronousTiming
    ):
        raise ConfigurationError(
            "asynchronous system families cannot use a synchronous timing model; "
            "declare the system as HSS instead"
        )
