"""Crash failures: schedules and failure patterns.

A *crash schedule* says when (if ever) each process crashes and whether its
final broadcast is only partially delivered (the paper allows a crashing
broadcaster's message to reach "an arbitrary subset of processes").  A
*failure pattern* is the read-only view of the schedule used by oracles and
property checkers: ``Correct``, ``Faulty``, and ``alive_at(T)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import ConfigurationError
from ..identity import ProcessId
from ..membership import Membership
from .clock import Time

__all__ = [
    "CrashEvent",
    "CrashSchedule",
    "ChurnEvent",
    "ChurnSchedule",
    "FailurePattern",
    "crash_free",
]


@dataclass(frozen=True)
class CrashEvent:
    """The crash of one process.

    ``partial_broadcast_fraction`` only matters when the process crashes at
    the exact moment it is broadcasting: the fraction (rounded down) of the
    ``n`` copies that are still sent.  ``None`` means the crash is clean —
    either the whole broadcast went out or the process was between broadcasts.
    """

    process: ProcessId
    time: Time
    partial_broadcast_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("a crash cannot happen before time 0")
        if self.partial_broadcast_fraction is not None and not (
            0.0 <= self.partial_broadcast_fraction <= 1.0
        ):
            raise ConfigurationError("partial_broadcast_fraction must lie in [0, 1]")


@dataclass(frozen=True)
class CrashSchedule:
    """A set of crash events, at most one per process."""

    events: tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        seen: set[ProcessId] = set()
        for event in self.events:
            if event.process in seen:
                raise ConfigurationError(f"{event.process!r} crashes more than once")
            seen.add(event.process)
        object.__setattr__(self, "events", tuple(sorted(self.events, key=lambda e: (e.time, e.process))))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "CrashSchedule":
        """A schedule with no crashes."""
        return cls(())

    @classmethod
    def at_times(cls, crashes: Mapping[ProcessId, Time]) -> "CrashSchedule":
        """Build a schedule from a ``{process: crash_time}`` mapping."""
        return cls(tuple(CrashEvent(process, time) for process, time in crashes.items()))

    @classmethod
    def crash_processes(
        cls,
        processes: Iterable[ProcessId],
        *,
        time: Time,
        stagger: Time = 0.0,
        partial_broadcast_fraction: float | None = None,
    ) -> "CrashSchedule":
        """Crash the given processes starting at ``time``, ``stagger`` apart."""
        events = []
        for offset, process in enumerate(sorted(processes)):
            events.append(
                CrashEvent(
                    process=process,
                    time=time + offset * stagger,
                    partial_broadcast_fraction=partial_broadcast_fraction,
                )
            )
        return cls(tuple(events))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def faulty(self) -> frozenset[ProcessId]:
        """Processes that crash at some point in the run."""
        return frozenset(event.process for event in self.events)

    def crash_time(self, process: ProcessId) -> Time | None:
        """Return the crash time of ``process`` or ``None`` when it is correct."""
        for event in self.events:
            if event.process == process:
                return event.time
        return None

    def event_for(self, process: ProcessId) -> CrashEvent | None:
        """Return the crash event of ``process`` or ``None``."""
        for event in self.events:
            if event.process == process:
                return event
        return None

    def validate_against(self, membership: Membership) -> None:
        """Check that the schedule only names processes of ``membership``."""
        known = set(membership.processes)
        for event in self.events:
            if event.process not in known:
                raise ConfigurationError(
                    f"crash schedule names {event.process!r}, which is not in the membership"
                )
        if len(self.faulty) >= membership.size:
            raise ConfigurationError(
                "the crash schedule kills every process; at least one must stay correct"
            )


def crash_free() -> CrashSchedule:
    """Convenience alias for :meth:`CrashSchedule.none`."""
    return CrashSchedule.none()


# ----------------------------------------------------------------------
# Membership churn
# ----------------------------------------------------------------------
#: The churn event vocabulary: a late *join* (via an introducer), a
#: voluntary announced *leave*, a silent *down* (process stops responding,
#: like a crash), and an *up* recovery (the process rejoins with a higher
#: incarnation number).
CHURN_KINDS = ("join", "leave", "down", "up")


@dataclass(frozen=True)
class ChurnEvent:
    """One membership transition of one process, by index.

    Unlike crashes — which are simulator-enforced (the runtime stops
    delivering) — churn events are *program-level*: the cluster-membership
    program reads its own schedule slice and acts it out (a joiner sleeps
    until ``join``; a leaver announces and goes quiet; a down process drops
    traffic until its ``up``).  That keeps churn entirely inside the
    backend-portable program layer.
    """

    index: int
    kind: str
    time: Time

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ConfigurationError(
                f"unknown churn event kind {self.kind!r}; expected one of {CHURN_KINDS}"
            )
        if self.time < 0:
            raise ConfigurationError("a churn event cannot happen before time 0")
        if self.index < 0:
            raise ConfigurationError("churn events name non-negative process indices")

    def to_dict(self) -> dict:
        return {"index": self.index, "kind": self.kind, "time": self.time}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ChurnEvent":
        return cls(
            index=int(payload["index"]), kind=payload["kind"], time=payload["time"]
        )


@dataclass(frozen=True)
class ChurnSchedule:
    """A time-ordered set of churn events, validated per process.

    Per-process rules: at most one ``join`` (and it must be the first event);
    a ``leave`` is final; ``down``/``up`` must alternate (down first).  The
    whole schedule is JSON-round-trippable so it travels inside
    ``program_params`` to worker processes.
    """

    events: tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.time, e.index, e.kind)))
        object.__setattr__(self, "events", ordered)
        by_index: dict[int, list[ChurnEvent]] = {}
        for event in ordered:
            by_index.setdefault(event.index, []).append(event)
        for index, history in by_index.items():
            down = False
            seen_join = False
            left = False
            for position, event in enumerate(history):
                if left:
                    raise ConfigurationError(
                        f"index {index} has churn events after its leave"
                    )
                if event.kind == "join":
                    if seen_join or position != 0:
                        raise ConfigurationError(
                            f"index {index} can only join once, as its first event"
                        )
                    seen_join = True
                elif event.kind == "leave":
                    left = True
                elif event.kind == "down":
                    if down:
                        raise ConfigurationError(
                            f"index {index} goes down twice without recovering"
                        )
                    down = True
                elif event.kind == "up":
                    if not down:
                        raise ConfigurationError(
                            f"index {index} recovers without being down"
                        )
                    down = False

    @classmethod
    def none(cls) -> "ChurnSchedule":
        """A schedule with no churn."""
        return cls(())

    @property
    def is_empty(self) -> bool:
        return not self.events

    def events_for(self, index: int) -> tuple[ChurnEvent, ...]:
        """The (time-ordered) churn history of one process index."""
        return tuple(event for event in self.events if event.index == index)

    def joiners(self) -> frozenset[int]:
        """Indices that join after t=0 (not founding members)."""
        return frozenset(event.index for event in self.events if event.kind == "join")

    def to_dict(self) -> dict:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ChurnSchedule":
        return cls(
            tuple(ChurnEvent.from_dict(entry) for entry in payload.get("events", ()))
        )


@dataclass(frozen=True)
class FailurePattern:
    """Read-only failure information for a specific run.

    This is the ``F`` of the failure-detector literature: which processes are
    faulty, when they crash, and who is alive at any time.  Only the simulator,
    the oracles, and the property checkers may hold one — never algorithm code.
    """

    membership: Membership
    schedule: CrashSchedule
    _crash_times: Mapping[ProcessId, Time] = field(init=False, repr=False, compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.schedule.validate_against(self.membership)
        object.__setattr__(
            self,
            "_crash_times",
            {event.process: event.time for event in self.schedule.events},
        )

    @property
    def correct(self) -> frozenset[ProcessId]:
        """``Correct`` — processes that never crash in this run."""
        return frozenset(self.membership.processes) - self.schedule.faulty

    @property
    def faulty(self) -> frozenset[ProcessId]:
        """Processes that crash at some point in this run."""
        return self.schedule.faulty

    @property
    def max_faulty(self) -> int:
        """The number of processes that crash (the run's effective ``t``)."""
        return len(self.schedule.faulty)

    def is_correct(self, process: ProcessId) -> bool:
        """Return ``True`` when ``process`` never crashes."""
        return process not in self._crash_times

    def crash_time(self, process: ProcessId) -> Time | None:
        """Return when ``process`` crashes, or ``None`` for correct processes."""
        return self._crash_times.get(process)

    def is_alive_at(self, process: ProcessId, at: Time) -> bool:
        """Return ``True`` when ``process`` has not crashed (yet) at time ``at``."""
        crash = self._crash_times.get(process)
        return crash is None or at < crash

    def alive_at(self, at: Time) -> frozenset[ProcessId]:
        """The set of processes alive at time ``at``."""
        return frozenset(
            process
            for process in self.membership.processes
            if self.is_alive_at(process, at)
        )

    def last_crash_time(self) -> Time:
        """The time of the last crash (0 when there are none)."""
        if not self._crash_times:
            return 0.0
        return max(self._crash_times.values())

    def correct_identity_multiset(self):
        """``I(Correct)`` as an :class:`~repro.identity.IdentityMultiset`."""
        return self.membership.identity_multiset(sorted(self.correct))
