"""Event queue for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events scheduled for the same time
run in the order they were scheduled, which keeps runs reproducible for a
fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SchedulingError
from .clock import Time

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    ``priority`` breaks ties at equal times: lower runs first.  Message
    deliveries use priority 0 and internal wake-ups priority 1 so that a
    process woken at time T sees every message delivered at T.

    ``args`` are passed to ``action`` when the event fires, so hot paths can
    schedule a bound method plus its argument instead of allocating a closure
    per event.  ``run()`` is the one way to fire an event.
    """

    time: Time
    priority: int
    sequence: int
    action: Callable[..., None] = field(compare=False)
    args: tuple = field(default=(), compare=False)
    cancelled: bool = field(default=False, compare=False)
    popped: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def run(self) -> None:
        """Execute the event's action with its arguments."""
        self.action(*self.args)

    def cancel(self) -> None:
        """Mark the event as cancelled; the queue will skip it.

        .. deprecated::
            Calling this directly leaves the queue's live-event count stale
            unless paired with :meth:`EventQueue.note_cancellation`.  Use
            :meth:`EventQueue.cancel`, which does both in one call.
        """
        warnings.warn(
            "Event.cancel() (paired with EventQueue.note_cancellation()) is "
            "deprecated; use EventQueue.cancel(event) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    ``debug_labels`` gates the construction of diagnostic event labels: when
    it is ``False`` (the default) callers skip building their label strings,
    which keeps the broadcast hot path free of f-string formatting.  Flip it
    to ``True`` before a run to get labelled events for debugging.
    """

    def __init__(self, *, debug_labels: bool = False) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self.debug_labels = debug_labels

    def __len__(self) -> int:
        return self._live

    def is_empty(self) -> bool:
        """Return ``True`` when no live (non-cancelled) events remain."""
        return self._live == 0

    def schedule(
        self,
        time: Time,
        action: Callable[..., None],
        *,
        args: tuple = (),
        priority: int = 0,
        label: str = "",
        not_before: Time | None = None,
    ) -> Event:
        """Schedule ``action(*args)`` to run at ``time`` and return the event handle.

        ``not_before`` lets the caller assert that the event is not being
        scheduled in its own past (the engine passes the current clock value).
        """
        if time < 0:
            raise SchedulingError(f"cannot schedule an event at negative time {time}")
        if not_before is not None and time < not_before:
            raise SchedulingError(
                f"cannot schedule an event at {time}, which is before the current time {not_before}"
            )
        event = Event(
            time=float(time),
            priority=priority,
            sequence=next(self._counter),
            action=action,
            args=args,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` and keep the live-event count accurate.

        This is the single safe cancellation entry point: it flips the
        event's flag and adjusts the queue's accounting in one call, and is
        idempotent (cancelling twice, or cancelling an already popped event's
        stale handle, does not corrupt the count).
        """
        if event.cancelled or event.popped:
            return
        event.cancelled = True
        if self._live > 0:
            self._live -= 1

    def pop_next(self) -> Event | None:
        """Remove and return the next live event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.popped = True
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Time | None:
        """Return the time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancellation(self) -> None:
        """Inform the queue that one previously scheduled event was cancelled.

        .. deprecated::
            The split ``Event.cancel()`` + ``note_cancellation()`` protocol is
            error-prone (forgetting either half corrupts ``len(queue)``).  Use
            :meth:`cancel`, which does both atomically.
        """
        warnings.warn(
            "EventQueue.note_cancellation() (paired with Event.cancel()) is "
            "deprecated; use EventQueue.cancel(event) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._live > 0:
            self._live -= 1
