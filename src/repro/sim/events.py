"""Event queue for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events scheduled for the same time
run in the order they were scheduled, which keeps runs reproducible for a
fixed seed.

This module is the simulator's hot path: every broadcast copy, task
resumption, and detector wake-up passes through :meth:`EventQueue.schedule`
and :meth:`EventQueue.pop_next`.  Three design choices keep it lean:

* :class:`Event` is a plain ``__slots__`` class with a hand-written
  :meth:`Event.__lt__` over ``(time, priority, sequence)``, so every heap
  comparison is three attribute loads instead of dataclass tuple machinery;
* popped delivery events can be recycled through an internal free list
  (:meth:`EventQueue.recycle`), so steady-state dispatch allocates no new
  event objects;
* same-tick broadcasts go through :meth:`EventQueue.schedule_batch`, which
  stores one heap entry for ``n`` logical deliveries (one ``heappush`` and one
  ``heappop`` instead of ``n`` of each) while preserving per-delivery sequence
  numbers, dispatch order, and the determinism digest exactly.

The queue also maintains an always-on **determinism digest**: a 64-bit
running hash folded over ``(time, priority, sequence, kind)`` of every event
it dispatches.  Two runs with equal digests dispatched exactly the same
events in exactly the same order, which turns "the refactor did not change
behaviour" from an assertion into a checkable equality.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from typing import Callable, Sequence

from ..errors import SchedulingError
from .clock import Time

__all__ = [
    "Event",
    "EventQueue",
    "KIND_INTERNAL",
    "KIND_DELIVERY",
    "KIND_RESUME",
    "KIND_DETECTOR",
    "KIND_CRASH",
]

#: Event kind codes, hashed into the determinism digest at dispatch.  They are
#: small ints (not strings) so digest updates stay allocation-free and
#: deterministic across processes (``hash(int)`` is never randomized).
KIND_INTERNAL = 0
KIND_DELIVERY = 1
KIND_RESUME = 2
KIND_DETECTOR = 3
KIND_CRASH = 4

_DIGEST_MASK = 0xFFFFFFFFFFFFFFFF
_FNV_PRIME = 1099511628211

#: Upper bound on the recycled-event free list; beyond this, popped events are
#: simply left to the garbage collector.
_POOL_LIMIT = 1024


class Event:
    """A scheduled callback.

    ``priority`` breaks ties at equal times: lower runs first.  Message
    deliveries use priority 1 and internal wake-ups priority 2 so that a
    process woken at time T sees every message delivered at T.

    ``args`` are passed to ``action`` when the event fires, so hot paths can
    schedule a bound method plus its argument instead of allocating a closure
    per event.  ``run()`` is the one way to fire an event.

    ``batch`` is ``None`` for ordinary events.  For a batched event (see
    :meth:`EventQueue.schedule_batch`) it holds ``(sequences, actions)`` —
    the queue serves the entries one ``pop_next()`` at a time by rebinding
    ``sequence``/``action`` on this single object, so batch handles must not
    be retained or cancelled by callers.
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "action",
        "args",
        "cancelled",
        "popped",
        "label",
        "kind",
        "batch",
    )

    def __init__(
        self,
        time: Time,
        priority: int,
        sequence: int,
        action: Callable[..., None],
        args: tuple = (),
        label: str = "",
        kind: int = KIND_INTERNAL,
        batch: tuple[tuple[int, ...], tuple[Callable[..., None], ...]] | None = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.action = action
        self.args = args
        self.cancelled = False
        self.popped = False
        self.label = label
        self.kind = kind
        self.batch = batch

    def __lt__(self, other: "Event") -> bool:
        # Hand-rolled (time, priority, sequence) comparison: heapq calls this
        # O(log n) times per push/pop, so it must not build tuples.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" {self.label!r}" if self.label else ""
        return (
            f"Event(t={self.time}, prio={self.priority}, seq={self.sequence},"
            f" kind={self.kind}{tag})"
        )

    def run(self) -> None:
        """Execute the event's action with its arguments."""
        self.action(*self.args)

    def cancel(self) -> None:
        """Mark the event as cancelled; the queue will skip it.

        .. deprecated::
            Calling this directly leaves the queue's live-event count stale
            unless paired with :meth:`EventQueue.note_cancellation`.  Use
            :meth:`EventQueue.cancel`, which does both in one call.
        """
        warnings.warn(
            "Event.cancel() (paired with EventQueue.note_cancellation()) is "
            "deprecated; use EventQueue.cancel(event) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    ``debug_labels`` gates the construction of diagnostic event labels: when
    it is ``False`` (the default) callers skip building their label strings,
    which keeps the broadcast hot path free of f-string formatting.  Flip it
    to ``True`` before a run to get labelled events for debugging.
    """

    def __init__(self, *, debug_labels: bool = False) -> None:
        # Heap entries are ``(time, priority, sequence, event)`` tuples:
        # heapq then compares at C speed without ever calling a Python-level
        # ``__lt__`` (the sequence is unique, so ties never reach the event).
        self._heap: list[tuple[Time, int, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0
        self._digest = 0
        self._free: list[Event] = []
        # Stack of ``[event, next_entry_index]`` pairs for batches being
        # served.  A batch higher on the stack always precedes the remaining
        # entries of every batch below it (it reached the heap head while the
        # one below was draining), so only the top needs consulting.
        self._draining: list[list] = []
        self.debug_labels = debug_labels

    def __len__(self) -> int:
        return self._live

    def is_empty(self) -> bool:
        """Return ``True`` when no live (non-cancelled) events remain."""
        return self._live == 0

    @property
    def digest(self) -> int:
        """The running determinism digest over every dispatched event.

        Every event popped for execution folds ``(time, priority, sequence,
        kind)`` into a 64-bit running hash.  Two runs with the same digest
        dispatched exactly the same events in exactly the same order, so the
        digest is a cheap, always-on witness that a refactor (or a parallel
        executor) left behaviour unchanged.  Labels are deliberately excluded:
        they are debug-only and may be absent.
        """
        return self._digest

    def schedule(
        self,
        time: Time,
        action: Callable[..., None],
        *,
        args: tuple = (),
        priority: int = 0,
        label: str = "",
        kind: int = KIND_INTERNAL,
        not_before: Time | None = None,
    ) -> Event:
        """Schedule ``action(*args)`` to run at ``time`` and return the event handle.

        ``not_before`` lets the caller assert that the event is not being
        scheduled in its own past (the engine passes the current clock value).
        """
        if time < 0:
            raise SchedulingError(f"cannot schedule an event at negative time {time}")
        if not_before is not None and time < not_before:
            raise SchedulingError(
                f"cannot schedule an event at {time}, which is before the current time {not_before}"
            )
        time = float(time)
        sequence = next(self._counter)
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.sequence = sequence
            event.action = action
            event.args = args
            event.cancelled = False
            event.popped = False
            event.label = label
            event.kind = kind
        else:
            event = Event(time, priority, sequence, action, args, label, kind)
        heapq.heappush(self._heap, (time, priority, sequence, event))
        self._live += 1
        return event

    def schedule_batch(
        self,
        time: Time,
        actions: Sequence[Callable[..., None]],
        *,
        args: tuple = (),
        priority: int = 0,
        label: str = "",
        kind: int = KIND_INTERNAL,
        not_before: Time | None = None,
    ) -> Event:
        """Schedule ``n`` same-time, same-priority logical events as one heap entry.

        Each action still receives its own sequence number (assigned here, in
        order), counts separately toward ``len(queue)``, is dispatched by its
        own ``pop_next()`` call, and is hashed individually into the digest —
        so a batched broadcast is indistinguishable from ``n`` separate
        ``schedule`` calls, at the cost of a single heap operation.  All
        actions share ``args``.  The returned handle is internal bookkeeping:
        it must not be cancelled or retained (the queue rebinds it per entry).
        """
        if not actions:
            raise SchedulingError("cannot schedule an empty batch")
        if time < 0:
            raise SchedulingError(f"cannot schedule an event at negative time {time}")
        if not_before is not None and time < not_before:
            raise SchedulingError(
                f"cannot schedule an event at {time}, which is before the current time {not_before}"
            )
        if len(actions) == 1:
            return self.schedule(
                time, actions[0], args=args, priority=priority, label=label, kind=kind
            )
        time = float(time)
        counter = self._counter
        sequences = tuple([next(counter) for _ in actions])
        event = Event(
            time,
            priority,
            sequences[0],
            actions[0],
            args,
            label,
            kind,
            (sequences, tuple(actions)),
        )
        heapq.heappush(self._heap, (time, priority, sequences[0], event))
        self._live += len(sequences)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` and keep the live-event count accurate.

        This is the single safe cancellation entry point: it flips the
        event's flag and adjusts the queue's accounting in one call, and is
        idempotent (cancelling twice, or cancelling an already popped event's
        stale handle, does not corrupt the count).
        """
        if event.batch is not None:
            raise SchedulingError("batch events are internal and cannot be cancelled")
        if event.cancelled or event.popped:
            return
        event.cancelled = True
        self._live -= 1
        if self._live < 0:
            self._live = 0
            raise SchedulingError(
                "the queue's live-event count went negative on cancel(); "
                "an event's cancelled/popped flags were corrupted externally"
            )

    def recycle(self, event: Event) -> None:
        """Return a dispatched event to the free list for reuse by ``schedule``.

        Only safe when the caller guarantees no other reference to the handle
        survives — a recycled object is rebound to a future, unrelated event,
        so a retained handle would cancel or inspect the wrong one.  The
        engine recycles delivery events only (their handles are never kept);
        anything still live, cancelled mid-flight, or part of a batch is
        silently left for the garbage collector.
        """
        if event.batch is not None or not event.popped or event.cancelled:
            return
        free = self._free
        if len(free) < _POOL_LIMIT:
            event.action = _discarded
            event.args = ()
            free.append(event)

    def pop_next(self, until: Time | None = None) -> Event | None:
        """Remove and return the next live event, or ``None`` when empty.

        With ``until`` set, an event later than ``until`` is left in place and
        ``None`` is returned — the engine's horizon check without a separate
        ``peek_time`` round-trip per event.

        A draining batch (see :meth:`schedule_batch`) is served one logical
        entry per call, interleaved in correct ``(time, priority, sequence)``
        order with whatever else reaches the head of the heap.
        """
        heap = self._heap
        stack = self._draining
        if stack:
            entry = stack[-1]
            draining: Event | None = entry[0]
            sequences, actions = draining.batch
            index = entry[1]
            sequence = sequences[index]
            time = draining.time
            priority = draining.priority
            while heap:
                head = heap[0]
                if head[3].cancelled:
                    heapq.heappop(heap)
                    continue
                if head[0] < time or (
                    head[0] == time
                    and (head[1] < priority or (head[1] == priority and head[2] < sequence))
                ):
                    draining = None  # a heap event precedes the next entry
                break
            if draining is not None:
                if until is not None and time > until:
                    return None
                draining.sequence = sequence
                draining.action = actions[index]
                if index + 1 == len(sequences):
                    stack.pop()
                    draining.popped = True
                else:
                    entry[1] = index + 1
                self._live -= 1
                self._digest = (
                    (self._digest * _FNV_PRIME)
                    ^ hash(time)
                    ^ (priority * 0x9E3779B1)
                    ^ (sequence * 0x85EBCA6B)
                    ^ (draining.kind * 0xC2B2AE35)
                ) & _DIGEST_MASK
                return draining
        while heap:
            event = heap[0][3]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and event.time > until:
                return None
            heapq.heappop(heap)
            batch = event.batch
            if batch is not None:
                # Serve the first entry now; the rest drain on later calls.
                stack.append([event, 1])
                event.action = batch[1][0]
            else:
                event.popped = True
            self._live -= 1
            self._digest = (
                (self._digest * _FNV_PRIME)
                ^ hash(event.time)
                ^ (event.priority * 0x9E3779B1)
                ^ (event.sequence * 0x85EBCA6B)
                ^ (event.kind * 0xC2B2AE35)
            ) & _DIGEST_MASK
            return event
        return None

    def peek_time(self) -> Time | None:
        """Return the time of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        stack = self._draining
        if stack:
            draining = stack[-1][0]
            if not heap or draining.time <= heap[0][0]:
                return draining.time
            return heap[0][0]
        if not heap:
            return None
        return heap[0][0]

    def note_cancellation(self) -> None:
        """Inform the queue that one previously scheduled event was cancelled.

        .. deprecated::
            The split ``Event.cancel()`` + ``note_cancellation()`` protocol is
            error-prone (forgetting either half corrupts ``len(queue)``).  Use
            :meth:`cancel`, which does both atomically.
        """
        warnings.warn(
            "EventQueue.note_cancellation() (paired with Event.cancel()) is "
            "deprecated; use EventQueue.cancel(event) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._live == 0:
            raise SchedulingError(
                "note_cancellation() without a matching live event would drive "
                "the queue's live-event count negative; was Event.cancel() "
                "called for an event this queue never scheduled?"
            )
        self._live -= 1


def _discarded(*args: object) -> None:  # pragma: no cover - never dispatched
    raise SchedulingError("a recycled event was executed; this is a queue bug")
