"""Event queue for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events scheduled for the same time
run in the order they were scheduled, which keeps runs reproducible for a
fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SchedulingError
from .clock import Time

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    ``priority`` breaks ties at equal times: lower runs first.  Message
    deliveries use priority 0 and internal wake-ups priority 1 so that a
    process woken at time T sees every message delivered at T.
    """

    time: Time
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; the queue will skip it."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def is_empty(self) -> bool:
        """Return ``True`` when no live (non-cancelled) events remain."""
        return self._live == 0

    def schedule(
        self,
        time: Time,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
        not_before: Time | None = None,
    ) -> Event:
        """Schedule ``action`` to run at ``time`` and return the event handle.

        ``not_before`` lets the caller assert that the event is not being
        scheduled in its own past (the engine passes the current clock value).
        """
        if time < 0:
            raise SchedulingError(f"cannot schedule an event at negative time {time}")
        if not_before is not None and time < not_before:
            raise SchedulingError(
                f"cannot schedule an event at {time}, which is before the current time {not_before}"
            )
        event = Event(
            time=float(time),
            priority=priority,
            sequence=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop_next(self) -> Event | None:
        """Remove and return the next live event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Time | None:
        """Return the time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancellation(self) -> None:
        """Inform the queue that one previously scheduled event was cancelled."""
        if self._live > 0:
            self._live -= 1
