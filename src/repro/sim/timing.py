"""Timing models: asynchronous, partially synchronous, synchronous.

A timing model answers one question for the network — *how long does a copy
of a broadcast take over a given link?* — and one for the runtime — *how long
does a local step take?*  The three concrete models correspond to the paper's
``HAS`` (asynchronous), ``HPS`` (partially synchronous processes and
eventually timely links, with an unknown global stabilization time ``GST`` and
latency bound ``δ``), and ``HSS`` (synchronous) system families.

Whether a copy is delivered at all, and how many times, is the
:class:`~repro.sim.links.LinkModel`'s question, not the timing model's: loss,
duplication, jitter, and partitions are layered on top of the timing draw by
the network.  The single exception is the paper-sanctioned pre-GST loss of
the partially synchronous model, which stays here because the paper defines
it as part of the ``HPS`` timing discipline itself (``delivery_time`` returns
``None`` for such a loss, keeping existing seeds reproducible).  Beyond that,
timing models never lose, duplicate, or corrupt messages.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from ..identity import ProcessId
from .clock import Time

__all__ = [
    "TimingModel",
    "AsynchronousTiming",
    "PartiallySynchronousTiming",
    "SynchronousTiming",
]


class TimingModel:
    """Interface implemented by the three timing disciplines."""

    #: Whether the model drives processes in lock-step rounds (HSS only).
    synchronous_steps: bool = False

    #: Whether one broadcast's copies all arrive at the same drawn time for
    #: every receiver, with no per-receiver randomness (HSS only).  The
    #: network uses this to collapse a reliable broadcast's ``n`` deliveries
    #: into one batched heap entry.
    uniform_delivery: bool = False

    def delivery_time(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        sent_at: Time,
        rng: random.Random,
    ) -> Time | None:
        """Return the delivery time of a message, or ``None`` if it is lost.

        Losing messages is only permitted before GST in the partially
        synchronous model; the other models always return a time.
        """
        raise NotImplementedError

    def delivery_times(
        self,
        sender: ProcessId,
        receivers: Sequence[ProcessId],
        sent_at: Time,
        rng: random.Random,
    ) -> list[Time | None]:
        """Draw per-receiver delivery times, in receiver order.

        Semantically identical to calling :meth:`delivery_time` once per
        receiver (same draws, same order); concrete models may override it to
        amortise per-call overhead across a whole broadcast.
        """
        delivery_time = self.delivery_time
        return [delivery_time(sender, receiver, sent_at, rng) for receiver in receivers]

    def step_delay(self, process: ProcessId, at: Time, rng: random.Random) -> Time:
        """Return the local-step duration charged when a task resumes."""
        return 0.0

    def describe(self) -> str:
        """Short human-readable description for experiment tables."""
        raise NotImplementedError


@dataclass
class AsynchronousTiming(TimingModel):
    """Reliable asynchronous links: arbitrary but finite delivery delays.

    Delays are drawn uniformly from ``[min_latency, max_latency]``.  The bound
    exists only inside the simulator (delays must be finite for the run to
    progress); algorithm code never learns it, which is what "asynchronous"
    means operationally.
    """

    min_latency: Time = 0.1
    max_latency: Time = 10.0
    min_step: Time = 0.0
    max_step: Time = 0.0

    def __post_init__(self) -> None:
        if self.min_latency < 0 or self.max_latency < self.min_latency:
            raise ConfigurationError(
                "latencies must satisfy 0 <= min_latency <= max_latency"
            )
        if self.min_step < 0 or self.max_step < self.min_step:
            raise ConfigurationError("steps must satisfy 0 <= min_step <= max_step")
        # Per-draw spans, precomputed once.  ``a + span * random()`` performs
        # the exact floating-point operations of ``rng.uniform(a, b)``, so the
        # cached fast path is draw-for-draw and bit-for-bit identical.
        self._latency_span = self.max_latency - self.min_latency
        self._step_span = self.max_step - self.min_step

    def delivery_time(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        sent_at: Time,
        rng: random.Random,
    ) -> Time | None:
        return sent_at + (self.min_latency + self._latency_span * rng.random())

    def delivery_times(
        self,
        sender: ProcessId,
        receivers: Sequence[ProcessId],
        sent_at: Time,
        rng: random.Random,
    ) -> list[Time | None]:
        base = self.min_latency
        span = self._latency_span
        rand = rng.random
        return [sent_at + (base + span * rand()) for _ in receivers]

    def step_delay(self, process: ProcessId, at: Time, rng: random.Random) -> Time:
        if self.max_step <= 0:
            return 0.0
        return self.min_step + self._step_span * rng.random()

    def describe(self) -> str:
        return f"async latency∈[{self.min_latency},{self.max_latency}]"


@dataclass
class PartiallySynchronousTiming(TimingModel):
    """Eventually timely links and partially synchronous processes.

    * Messages sent at or after ``gst`` are delivered within ``delta``.
    * Messages sent before ``gst`` may be lost (probability ``pre_gst_loss``)
      or delayed by up to ``pre_gst_max_latency`` (finite, but possibly far
      larger than ``delta``); they are never delivered before ``gst`` earlier
      than their draw allows, matching "lost or delivered after an arbitrary
      (but finite) time".
    * Local steps take at most ``max_step`` (unknown to the algorithms).

    Algorithms must not read ``gst`` or ``delta``; they are simulator
    parameters standing in for the unknown bounds of the paper's model.
    """

    gst: Time = 50.0
    delta: Time = 1.0
    min_latency: Time = 0.1
    pre_gst_max_latency: Time = 200.0
    pre_gst_loss: float = 0.3
    max_step: Time = 0.0

    def __post_init__(self) -> None:
        if self.gst < 0:
            raise ConfigurationError("GST cannot be negative")
        if self.delta <= 0:
            raise ConfigurationError("delta must be positive")
        if not 0 <= self.pre_gst_loss <= 1:
            raise ConfigurationError("pre_gst_loss must be a probability")
        if self.min_latency < 0 or self.min_latency > self.delta:
            raise ConfigurationError("min_latency must lie in [0, delta]")
        if self.pre_gst_max_latency < self.delta:
            raise ConfigurationError("pre_gst_max_latency must be at least delta")
        if self.max_step < 0:
            raise ConfigurationError("max_step cannot be negative")
        # Precomputed uniform-draw spans; see AsynchronousTiming.__post_init__.
        self._timely_span = self.delta - self.min_latency
        self._pre_gst_span = self.pre_gst_max_latency - self.min_latency

    def delivery_time(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        sent_at: Time,
        rng: random.Random,
    ) -> Time | None:
        if sent_at >= self.gst:
            return sent_at + (self.min_latency + self._timely_span * rng.random())
        if rng.random() < self.pre_gst_loss:
            return None
        return sent_at + (self.min_latency + self._pre_gst_span * rng.random())

    def step_delay(self, process: ProcessId, at: Time, rng: random.Random) -> Time:
        if self.max_step <= 0:
            return 0.0
        # uniform(0, b) is 0.0 + (b - 0.0) * random(); identical draw, no call.
        return self.max_step * rng.random()

    def describe(self) -> str:
        return f"partially-synchronous GST={self.gst} δ={self.delta}"


@dataclass
class SynchronousTiming(TimingModel):
    """Lock-step synchronous rounds with known bounds.

    A synchronous step ``s`` spans the interval ``[s·step, (s+1)·step)``.
    Every message broadcast during step ``s`` by a process that does not crash
    mid-broadcast is delivered strictly inside step ``s`` (at a fixed fraction
    of the step), so a process that waits for "the messages sent in this
    synchronous step" (Figure 7) sees all of them before the step boundary.
    """

    step: Time = 1.0
    delivery_fraction: float = 0.5

    synchronous_steps = True
    # Every receiver of one broadcast gets the same deterministic delivery
    # time, so the network can schedule the whole broadcast as one batch.
    uniform_delivery = True

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ConfigurationError("step duration must be positive")
        if not 0 < self.delivery_fraction < 1:
            raise ConfigurationError("delivery_fraction must lie strictly in (0, 1)")

    def step_index(self, at: Time) -> int:
        """Return the index of the synchronous step containing time ``at``."""
        return int(math.floor(at / self.step + 1e-9))

    def step_start(self, index: int) -> Time:
        """Return the start time of synchronous step ``index``."""
        return index * self.step

    def next_step_start(self, at: Time) -> Time:
        """Return the start time of the step following the one containing ``at``."""
        return self.step_start(self.step_index(at) + 1)

    def delivery_time(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        sent_at: Time,
        rng: random.Random,
    ) -> Time | None:
        step_index = self.step_index(sent_at)
        in_step_delivery = self.step_start(step_index) + self.delivery_fraction * self.step
        # A message sent late within the step is still delivered before the
        # boundary, but never before it was sent.
        return max(sent_at, in_step_delivery)

    def describe(self) -> str:
        return f"synchronous step={self.step}"
