"""Structured run traces.

Everything the property checkers, validators, and metrics need to judge a run
is recorded here: time-stamped per-process variable snapshots (detector
outputs, estimates), decisions, message counts, and crash times.  Algorithm
code writes to the trace only through ``ctx.record`` / ``ctx.decide``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from ..errors import TraceError
from ..identity import ProcessId
from .clock import Time

__all__ = ["TraceRecord", "Decision", "RunTrace"]


@dataclass(frozen=True)
class TraceRecord:
    """One time-stamped variable snapshot of one process."""

    time: Time
    process: ProcessId
    key: str
    value: Any


@dataclass(frozen=True)
class Decision:
    """A consensus decision taken by one process."""

    time: Time
    process: ProcessId
    value: Any


class RunTrace:
    """Accumulates the observable history of a single simulation run."""

    def __init__(self) -> None:
        self._records: dict[ProcessId, list[TraceRecord]] = defaultdict(list)
        self._records_by_key: dict[tuple[ProcessId, str], list[TraceRecord]] = defaultdict(list)
        self._decisions: dict[ProcessId, Decision] = {}
        self._crashes: dict[ProcessId, Time] = {}
        # Plain dicts with ``.get`` defaults: these counters tick once per
        # broadcast and once per delivered copy, where Counter's Python-level
        # ``__missing__`` shows up in profiles.
        self._sends_by_kind: dict[str, int] = {}
        self._deliveries_by_kind: dict[str, int] = {}
        self._send_copies = 0
        self._broadcast_invocations = 0
        self._end_time: Time = 0.0

    # ------------------------------------------------------------------
    # Writing (used by the runtime and the network)
    # ------------------------------------------------------------------
    def record(self, process: ProcessId, key: str, value: Any, time: Time) -> None:
        """Append a variable snapshot for ``process``."""
        entry = TraceRecord(time=time, process=process, key=key, value=value)
        self._records[process].append(entry)
        self._records_by_key[(process, key)].append(entry)

    def record_decision(self, process: ProcessId, value: Any, time: Time) -> None:
        """Record the (first) decision of ``process``; later calls are ignored.

        Consensus algorithms may broadcast/relay a decision several times; the
        decision that counts for the validator is the first one.
        """
        if process not in self._decisions:
            self._decisions[process] = Decision(time=time, process=process, value=value)

    def record_crash(self, process: ProcessId, time: Time) -> None:
        """Record that ``process`` crashed at ``time``."""
        self._crashes.setdefault(process, time)

    def record_broadcast(self, kind: str, copies: int) -> None:
        """Record one broadcast invocation producing ``copies`` link messages."""
        self._broadcast_invocations += 1
        sends = self._sends_by_kind
        sends[kind] = sends.get(kind, 0) + 1
        self._send_copies += copies

    def record_delivery(self, kind: str) -> None:
        """Record one message copy delivered to a process."""
        deliveries = self._deliveries_by_kind
        deliveries[kind] = deliveries.get(kind, 0) + 1

    def mark_end(self, time: Time) -> None:
        """Record the time at which the simulation stopped."""
        self._end_time = max(self._end_time, time)

    # ------------------------------------------------------------------
    # Reading — variable snapshots
    # ------------------------------------------------------------------
    def records_of(self, process: ProcessId, key: str | None = None) -> tuple[TraceRecord, ...]:
        """All snapshots of ``process`` (optionally restricted to one key)."""
        if key is None:
            return tuple(self._records.get(process, ()))
        return tuple(self._records_by_key.get((process, key), ()))

    def values_of(self, process: ProcessId, key: str) -> tuple[tuple[Time, Any], ...]:
        """The ``(time, value)`` series of one variable of one process."""
        return tuple((entry.time, entry.value) for entry in self.records_of(process, key))

    def final_value(self, process: ProcessId, key: str, default: Any = None) -> Any:
        """The last recorded value of a variable, or ``default`` when never set."""
        entries = self._records_by_key.get((process, key))
        if not entries:
            return default
        return entries[-1].value

    def value_at(self, process: ProcessId, key: str, at: Time, default: Any = None) -> Any:
        """The value a variable held at time ``at`` (last record with time <= at)."""
        entries = self._records_by_key.get((process, key), [])
        chosen = default
        for entry in entries:
            if entry.time <= at:
                chosen = entry.value
            else:
                break
        return chosen

    def first_time_value_holds(
        self, process: ProcessId, key: str, predicate
    ) -> Time | None:
        """The earliest time after which the variable satisfies ``predicate`` forever.

        Returns ``None`` when the variable never stabilises into the predicate
        (i.e. the last recorded value does not satisfy it, or the key was never
        recorded).
        """
        entries = self._records_by_key.get((process, key), [])
        if not entries or not predicate(entries[-1].value):
            return None
        stable_since: Time | None = None
        for entry in entries:
            if predicate(entry.value):
                if stable_since is None:
                    stable_since = entry.time
            else:
                stable_since = None
        return stable_since

    def keys_recorded(self, process: ProcessId) -> frozenset[str]:
        """The variable names ever recorded by ``process``."""
        return frozenset(entry.key for entry in self._records.get(process, ()))

    def processes_with_records(self) -> frozenset[ProcessId]:
        """Processes that recorded at least one snapshot."""
        return frozenset(self._records)

    def all_records(self) -> Iterator[TraceRecord]:
        """Iterate over every snapshot in the trace (unspecified order across processes)."""
        for entries in self._records.values():
            yield from entries

    # ------------------------------------------------------------------
    # Reading — decisions, crashes, messages
    # ------------------------------------------------------------------
    @property
    def decisions(self) -> dict[ProcessId, Decision]:
        """The first decision of every process that decided."""
        return dict(self._decisions)

    def decision_of(self, process: ProcessId) -> Decision:
        """The decision of ``process``; raises :class:`TraceError` if it never decided."""
        try:
            return self._decisions[process]
        except KeyError:
            raise TraceError(f"{process!r} never decided in this run") from None

    def decided(self, process: ProcessId) -> bool:
        """Return ``True`` when ``process`` decided."""
        return process in self._decisions

    def all_decided(self, processes: Iterable[ProcessId]) -> bool:
        """Return ``True`` when every given process decided."""
        return all(process in self._decisions for process in processes)

    def last_decision_time(self) -> Time | None:
        """The time of the latest decision, or ``None`` when nobody decided."""
        if not self._decisions:
            return None
        return max(decision.time for decision in self._decisions.values())

    @property
    def crashes(self) -> dict[ProcessId, Time]:
        """Crash times observed during the run."""
        return dict(self._crashes)

    @property
    def end_time(self) -> Time:
        """The simulated time at which the run stopped."""
        return self._end_time

    # Message accounting -------------------------------------------------
    @property
    def broadcast_invocations(self) -> int:
        """How many times ``broadcast(m)`` was invoked."""
        return self._broadcast_invocations

    @property
    def message_copies_sent(self) -> int:
        """Total link-level message copies produced by all broadcasts."""
        return self._send_copies

    @property
    def message_copies_delivered(self) -> int:
        """Total link-level message copies delivered to (possibly crashed) processes."""
        return sum(self._deliveries_by_kind.values())

    def broadcasts_by_kind(self) -> dict[str, int]:
        """Broadcast invocations grouped by message kind."""
        return dict(self._sends_by_kind)

    def deliveries_by_kind(self) -> dict[str, int]:
        """Delivered message copies grouped by message kind."""
        return dict(self._deliveries_by_kind)
