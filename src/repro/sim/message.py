"""Message envelopes.

The paper's communication primitive is ``broadcast(m)``: one copy of ``m`` is
sent along the directed link from the sender to every process (including the
sender).  The receiving process cannot identify the link a message arrived on,
so the envelope exposes only the message *content* to algorithm code — the
sender is deliberately not reachable from
:class:`~repro.sim.process.ProcessContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Message"]


@dataclass(frozen=True, slots=True)
class Message:
    """An immutable message as seen by the receiving algorithm.

    ``kind`` is the message type tag (``"POLLING"``, ``"PH1"``, ...) and
    ``payload`` an immutable mapping of named fields.  Field access is provided
    through :meth:`__getitem__` and :meth:`get` for readability in algorithm
    code: ``msg["round"]``.

    ``slots=True`` keeps the envelope small and its field access cheap: one
    message object is allocated per ``broadcast(m)`` and then shared by every
    scheduled delivery, so the envelope sits on the simulator's hot path.
    """

    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Defensive copy: the envelope is shared by every scheduled delivery,
        # so a caller-retained payload mapping must not alias into it.
        object.__setattr__(self, "payload", dict(self.payload))

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Return a payload field, or ``default`` when absent."""
        return self.payload.get(key, default)

    def matches(self, **fields: Any) -> bool:
        """Return ``True`` when every named field equals the given value."""
        return all(self.payload.get(key) == value for key, value in fields.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{key}={value!r}" for key, value in self.payload.items())
        return f"{self.kind}({inner})"

