"""Deterministic discrete-event simulation substrate.

This subpackage provides the message-passing environment the paper assumes:
crash-prone processes, broadcast links, and three timing disciplines
(asynchronous, partially synchronous with an unknown GST/δ, and synchronous).
Links are reliable by default but pluggable: a
:class:`~repro.sim.links.LinkModel` can inject loss, duplication, jitter,
per-direction latency penalties, and timed partitions per link.  Algorithms
are written as :class:`~repro.sim.process.ProcessProgram` subclasses and
executed by the :class:`~repro.sim.scheduler.Simulation` engine over a
:class:`~repro.sim.system.System` configuration.
"""

from .clock import Clock, Time
from .events import (
    KIND_CRASH,
    KIND_DELIVERY,
    KIND_DETECTOR,
    KIND_INTERNAL,
    KIND_RESUME,
    Event,
    EventQueue,
)
from .failures import CrashEvent, CrashSchedule, FailurePattern, crash_free
from .links import (
    AsymmetricLinks,
    ComposedLinks,
    DuplicatingLinks,
    JitterLinks,
    LinkModel,
    LossyLinks,
    Partition,
    PartitionedLinks,
    ReliableLinks,
)
from .message import Message
from .network import Network
from .process import (
    NextSyncStep,
    ProcessContext,
    ProcessProgram,
    ProcessRuntime,
    Sleep,
    WaitUntil,
)
from .rng import RngStreams
from .scheduler import Simulation
from .system import (
    CompositeProgram,
    DetectorServices,
    System,
    SystemModel,
    build_system,
)
from .timing import (
    AsynchronousTiming,
    PartiallySynchronousTiming,
    SynchronousTiming,
    TimingModel,
)
from .trace import Decision, RunTrace, TraceRecord

__all__ = [
    "AsymmetricLinks",
    "AsynchronousTiming",
    "Clock",
    "ComposedLinks",
    "CompositeProgram",
    "CrashEvent",
    "CrashSchedule",
    "Decision",
    "DetectorServices",
    "DuplicatingLinks",
    "Event",
    "EventQueue",
    "FailurePattern",
    "JitterLinks",
    "KIND_CRASH",
    "KIND_DELIVERY",
    "KIND_DETECTOR",
    "KIND_INTERNAL",
    "KIND_RESUME",
    "LinkModel",
    "LossyLinks",
    "Message",
    "Network",
    "NextSyncStep",
    "Partition",
    "PartitionedLinks",
    "ReliableLinks",
    "PartiallySynchronousTiming",
    "ProcessContext",
    "ProcessProgram",
    "ProcessRuntime",
    "RngStreams",
    "RunTrace",
    "Simulation",
    "Sleep",
    "SynchronousTiming",
    "System",
    "SystemModel",
    "Time",
    "TimingModel",
    "TraceRecord",
    "WaitUntil",
    "build_system",
    "crash_free",
]
