"""Deterministic discrete-event simulation substrate.

This subpackage provides the message-passing environment the paper assumes:
crash-prone processes, reliable broadcast links, and three timing disciplines
(asynchronous, partially synchronous with an unknown GST/δ, and synchronous).
Algorithms are written as :class:`~repro.sim.process.ProcessProgram` subclasses
and executed by the :class:`~repro.sim.scheduler.Simulation` engine over a
:class:`~repro.sim.system.System` configuration.
"""

from .clock import Clock, Time
from .events import Event, EventQueue
from .failures import CrashEvent, CrashSchedule, FailurePattern, crash_free
from .message import Broadcast, Message
from .network import Network
from .process import (
    NextSyncStep,
    ProcessContext,
    ProcessProgram,
    ProcessRuntime,
    Sleep,
    WaitUntil,
)
from .rng import RngStreams
from .scheduler import Simulation
from .system import (
    CompositeProgram,
    DetectorServices,
    System,
    SystemModel,
    build_system,
)
from .timing import (
    AsynchronousTiming,
    PartiallySynchronousTiming,
    SynchronousTiming,
    TimingModel,
)
from .trace import Decision, RunTrace, TraceRecord

__all__ = [
    "AsynchronousTiming",
    "Broadcast",
    "Clock",
    "CompositeProgram",
    "CrashEvent",
    "CrashSchedule",
    "Decision",
    "DetectorServices",
    "Event",
    "EventQueue",
    "FailurePattern",
    "Message",
    "Network",
    "NextSyncStep",
    "PartiallySynchronousTiming",
    "ProcessContext",
    "ProcessProgram",
    "ProcessRuntime",
    "RngStreams",
    "RunTrace",
    "Simulation",
    "Sleep",
    "SynchronousTiming",
    "System",
    "SystemModel",
    "Time",
    "TimingModel",
    "TraceRecord",
    "WaitUntil",
    "build_system",
    "crash_free",
]
