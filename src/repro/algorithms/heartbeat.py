"""A backend-portable heartbeat failure monitor (HB_PING / HB_ACK).

This is the detection workload of the sim-vs-real validation harness
(ROADMAP item 3; the protocol follows the kv-2node-fd-spec recipe quoted in
SNIPPETS.md Snippet 1):

* every ``hb_interval`` time units the process broadcasts
  ``HB_PING(identity)`` and then re-evaluates its suspicions;
* on receiving a ``HB_PING`` it answers with ``HB_ACK`` addressed to the
  pinger's identifier (broadcast; non-targets ignore it);
* ``last_ack[q]`` is updated **only** when an ``HB_ACK`` addressed to us
  arrives from ``q`` — a late ACK simply rescues ``q`` before the next check;
* once ``now − last_ack[q] ≥ hb_timeout`` the process declares ``q`` dead
  exactly once (a single ``dead_declared`` flag per peer, so duplicate
  declarations cannot happen at the source).

Membership is unknown (the paper's setting): peers are discovered from the
``HB_PING`` traffic itself, and a peer's liveness clock starts at discovery.

The program speaks only the :class:`~repro.context.AbstractProcessContext`
protocol, so the *same object* runs on the discrete-event simulator and on
the asyncio/TCP transport backend.  Detection events are emitted through
``ctx.record`` under the same names the real backend logs to JSONL
(``declared_dead``), which is what lets one aggregator consume both.
"""

from __future__ import annotations

from typing import Any

from ..context import AbstractProcessContext, ProcessProgram
from ..identity import Identity

__all__ = ["HeartbeatMonitorProgram"]

#: Trace-record / JSONL-event name for a (single) dead declaration.
DECLARED_DEAD = "declared_dead"


class HeartbeatMonitorProgram(ProcessProgram):
    """Full-mesh heartbeat monitoring: every process pings and watches everyone."""

    def __init__(
        self,
        *,
        hb_interval: float = 1.0,
        hb_timeout: float = 3.0,
        record_pings: bool = False,
    ) -> None:
        if hb_interval <= 0:
            raise ValueError("hb_interval must be positive")
        if hb_timeout <= 0:
            raise ValueError("hb_timeout must be positive")
        self._hb_interval = hb_interval
        self._hb_timeout = hb_timeout
        self._record_pings = record_pings

        #: identity -> time of the last HB_ACK addressed to us from it
        #: (initialised to the discovery time, the grace period of §4).
        self.last_ack: dict[Identity, float] = {}
        #: identities already declared dead (the single-declare flags).
        self.dead: set[Identity] = set()

    # ------------------------------------------------------------------
    def setup(self, ctx: AbstractProcessContext) -> None:
        ctx.on("HB_PING", lambda msg: self._on_ping(ctx, msg))
        ctx.on("HB_ACK", lambda msg: self._on_ack(ctx, msg))
        ctx.spawn(lambda: self._monitor_task(ctx), name="hb-monitor")

    # ------------------------------------------------------------------
    def _monitor_task(self, ctx: AbstractProcessContext):
        while True:
            ctx.broadcast("HB_PING", identity=ctx.identity)
            if self._record_pings:
                ctx.record("hb_ping_sent", ctx.identity)
            yield ctx.sleep(self._hb_interval)
            self._check_timeouts(ctx)

    def _check_timeouts(self, ctx: AbstractProcessContext) -> None:
        now = ctx.now
        for identity, seen in self.last_ack.items():
            if identity in self.dead or identity == ctx.identity:
                continue
            if now - seen >= self._hb_timeout:
                self.dead.add(identity)
                ctx.record(DECLARED_DEAD, identity)

    # ------------------------------------------------------------------
    def _on_ping(self, ctx: AbstractProcessContext, message: Any) -> None:
        pinger = message["identity"]
        self._discover(ctx, pinger)
        ctx.broadcast("HB_ACK", target=pinger, identity=ctx.identity)

    def _on_ack(self, ctx: AbstractProcessContext, message: Any) -> None:
        if message["target"] != ctx.identity:
            return
        responder = message["identity"]
        self._discover(ctx, responder)
        self.last_ack[responder] = ctx.now
        if self._record_pings:
            ctx.record("hb_ack_recv", responder)
        # A late ACK rescues an undeclared peer, but declarations are final
        # (the single dead_declared flag) — matching Snippet 1 §10.

    def _discover(self, ctx: AbstractProcessContext, identity: Identity) -> None:
        if identity != ctx.identity and identity not in self.last_ack:
            self.last_ack[identity] = ctx.now

    def describe(self) -> str:
        return (
            f"heartbeat monitor (interval={self._hb_interval}, "
            f"timeout={self._hb_timeout})"
        )
