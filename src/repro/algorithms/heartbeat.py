"""A backend-portable heartbeat failure monitor (HB_PING / HB_ACK).

This is the detection workload of the sim-vs-real validation harness
(ROADMAP item 3; the protocol follows the kv-2node-fd-spec recipe quoted in
SNIPPETS.md Snippet 1):

* every ``hb_interval`` time units the process broadcasts
  ``HB_PING(identity)`` and then re-evaluates its suspicions;
* on receiving a ``HB_PING`` it answers with ``HB_ACK`` addressed to the
  pinger's identifier (broadcast; non-targets ignore it);
* ``last_ack[q]`` is updated **only** when an ``HB_ACK`` addressed to us
  arrives from ``q`` — a late ACK simply rescues ``q`` before the next check;
* once ``now − last_ack[q] ≥ hb_timeout`` the process declares ``q`` dead
  exactly once (a single ``dead_declared`` flag per peer, so duplicate
  declarations cannot happen at the source).

Membership is unknown (the paper's setting): peers are discovered from the
``HB_PING`` traffic itself, and a peer's liveness clock starts at discovery.

Since the monitoring-topology layer (:mod:`repro.topology`), the same program
also runs in two sparse modes, selected by passing a topology to the
constructor (the engine injects it for non-full-mesh scenarios):

* **ring** — each process pings only its ``k`` ring successors over its local
  alive view and ACKs go back *unicast*; a declaration shrinks the view, so
  survivors adopt new successors (*ring repair*) with a fresh timeout window.
  Per-round load drops from n² pings + n³ ACK copies to ≈ 2·n·k copies.
* **gossip** — no pings at all: each period the process bumps its own
  heartbeat counter and diffuses its whole counter table to ``fanout``
  seeded-random peers; counters that stop rising for ``hb_timeout`` are
  declared dead.  Load is ≈ n·fanout table messages per period.

The sparse modes address peers by *index* (the transport-level address a
topology computes over) rather than by identity, so declarations are recorded
as indices; the ``topo_detection`` check consumes those.  The historical
full-mesh path is untouched — byte-identical broadcasts, records, and RNG
usage — which is what keeps every pre-topology digest stable.

The program speaks only the :class:`~repro.context.AbstractProcessContext`
protocol, so the *same object* runs on the discrete-event simulator and on
the asyncio/TCP transport backend.  Detection events are emitted through
``ctx.record`` under the same names the real backend logs to JSONL
(``declared_dead``), which is what lets one aggregator consume both.
"""

from __future__ import annotations

from typing import Any

from ..context import AbstractProcessContext, ProcessProgram
from ..identity import Identity

__all__ = ["HeartbeatMonitorProgram"]

#: Trace-record / JSONL-event name for a (single) dead declaration.
DECLARED_DEAD = "declared_dead"


class HeartbeatMonitorProgram(ProcessProgram):
    """Heartbeat monitoring: full mesh by default, ring/gossip via a topology."""

    def __init__(
        self,
        *,
        hb_interval: float = 1.0,
        hb_timeout: float = 3.0,
        record_pings: bool = False,
        topology: Any = None,
        index: int | None = None,
        peers: tuple[int, ...] = (),
    ) -> None:
        if hb_interval <= 0:
            raise ValueError("hb_interval must be positive")
        if hb_timeout <= 0:
            raise ValueError("hb_timeout must be positive")
        self._hb_interval = hb_interval
        self._hb_timeout = hb_timeout
        self._record_pings = record_pings
        if topology is not None and topology.is_full_mesh:
            topology = None  # explicit full mesh == the historical default
        self._topology = topology
        self._index = index
        self._peers = tuple(peers)
        if topology is not None:
            if index is None or not self._peers:
                raise ValueError(
                    "a sparse topology needs the process index and the peer "
                    "index list (the engine injects both)"
                )
            self._mode = topology.kind
        else:
            self._mode = "full_mesh"

        #: identity -> time of the last HB_ACK addressed to us from it
        #: (initialised to the discovery time, the grace period of §4).
        self.last_ack: dict[Identity, float] = {}
        #: identities already declared dead (the single-declare flags).
        self.dead: set[Identity] = set()

        # -- sparse-mode state (indices, not identities) -------------------
        #: indices this process still believes alive (including itself).
        self.alive: list[int] = sorted(self._peers)
        #: indices already declared dead.
        self.dead_indices: set[int] = set()
        #: index -> time of the last unicast HB_ACK from it (ring mode).
        self.last_ack_at: dict[int, float] = {}
        #: index -> time we started (re)watching it; a freshly adopted
        #: successor gets a full timeout window before it can be declared.
        self.watch_since: dict[int, float] = {}
        #: index -> highest heartbeat counter seen (gossip mode).
        self.counters: dict[int, int] = {}
        #: index -> time its counter last rose (gossip mode).
        self.last_bump: dict[int, float] = {}

    # ------------------------------------------------------------------
    def setup(self, ctx: AbstractProcessContext) -> None:
        if self._mode == "ring":
            ctx.on("HB_PING", lambda msg: self._on_ring_ping(ctx, msg))
            ctx.on("HB_ACK", lambda msg: self._on_ring_ack(ctx, msg))
            ctx.spawn(lambda: self._ring_monitor_task(ctx), name="hb-ring-monitor")
            return
        if self._mode == "gossip":
            ctx.on("GOSSIP", lambda msg: self._on_gossip(ctx, msg))
            ctx.spawn(lambda: self._gossip_task(ctx), name="hb-gossip")
            return
        ctx.on("HB_PING", lambda msg: self._on_ping(ctx, msg))
        ctx.on("HB_ACK", lambda msg: self._on_ack(ctx, msg))
        ctx.spawn(lambda: self._monitor_task(ctx), name="hb-monitor")

    # ------------------------------------------------------------------
    # Full mesh (the historical, digest-frozen path)
    # ------------------------------------------------------------------
    def _monitor_task(self, ctx: AbstractProcessContext):
        while True:
            ctx.broadcast("HB_PING", identity=ctx.identity)
            if self._record_pings:
                ctx.record("hb_ping_sent", ctx.identity)
            yield ctx.sleep(self._hb_interval)
            self._check_timeouts(ctx)

    def _check_timeouts(self, ctx: AbstractProcessContext) -> None:
        now = ctx.now
        for identity, seen in self.last_ack.items():
            if identity in self.dead or identity == ctx.identity:
                continue
            if now - seen >= self._hb_timeout:
                self.dead.add(identity)
                ctx.record(DECLARED_DEAD, identity)

    def _on_ping(self, ctx: AbstractProcessContext, message: Any) -> None:
        pinger = message["identity"]
        self._discover(ctx, pinger)
        ctx.broadcast("HB_ACK", target=pinger, identity=ctx.identity)

    def _on_ack(self, ctx: AbstractProcessContext, message: Any) -> None:
        if message["target"] != ctx.identity:
            return
        responder = message["identity"]
        self._discover(ctx, responder)
        self.last_ack[responder] = ctx.now
        if self._record_pings:
            ctx.record("hb_ack_recv", responder)
        # A late ACK rescues an undeclared peer, but declarations are final
        # (the single dead_declared flag) — matching Snippet 1 §10.

    def _discover(self, ctx: AbstractProcessContext, identity: Identity) -> None:
        if identity != ctx.identity and identity not in self.last_ack:
            self.last_ack[identity] = ctx.now

    # ------------------------------------------------------------------
    # Ring mode: ping the k successors, ACK unicast, repair on declare
    # ------------------------------------------------------------------
    def monitor_targets(self) -> tuple[int, ...]:
        """The successors this process currently watches (its alive view)."""
        return self._topology.monitor_targets(self._index, self.alive)

    def _ring_monitor_task(self, ctx: AbstractProcessContext):
        while True:
            targets = self.monitor_targets()
            now = ctx.now
            for target in targets:
                if target not in self.watch_since:
                    self.watch_since[target] = now
            if targets:
                ctx.multicast("HB_PING", targets, frm=self._index)
                if self._record_pings:
                    ctx.record("hb_ping_sent", list(targets))
            yield ctx.sleep(self._hb_interval)
            self._check_ring_timeouts(ctx, targets)

    def _check_ring_timeouts(self, ctx: AbstractProcessContext, targets) -> None:
        now = ctx.now
        for target in targets:
            if target in self.dead_indices:
                continue
            seen = self.last_ack_at.get(target, self.watch_since.get(target, now))
            if now - seen >= self._hb_timeout:
                self._declare_index_dead(ctx, target)

    def _declare_index_dead(self, ctx: AbstractProcessContext, target: int) -> None:
        self.dead_indices.add(target)
        ctx.record(DECLARED_DEAD, target)
        if target in self.alive:
            self.alive.remove(target)
        # The next monitor round recomputes successors over the shrunken
        # view (ring repair); newly adopted targets start a fresh window
        # through watch_since (set at adoption, not here).
        self.watch_since.pop(target, None)

    def _on_ring_ping(self, ctx: AbstractProcessContext, message: Any) -> None:
        pinger = message["frm"]
        ctx.multicast("HB_ACK", (pinger,), frm=self._index)

    def _on_ring_ack(self, ctx: AbstractProcessContext, message: Any) -> None:
        responder = message["frm"]
        self.last_ack_at[responder] = ctx.now
        if self._record_pings:
            ctx.record("hb_ack_recv", responder)

    # ------------------------------------------------------------------
    # Gossip mode: diffuse the counter table, declare on staleness
    # ------------------------------------------------------------------
    def _gossip_task(self, ctx: AbstractProcessContext):
        now = ctx.now
        for peer in self.alive:
            self.counters.setdefault(peer, 0)
            self.last_bump.setdefault(peer, now)
        while True:
            self.counters[self._index] += 1
            self.last_bump[self._index] = ctx.now
            targets = self._topology.gossip_targets(self._index, self.alive, ctx.random)
            if targets:
                ctx.multicast(
                    "GOSSIP", targets, frm=self._index, counters=dict(self.counters)
                )
            yield ctx.sleep(self._hb_interval)
            self._check_gossip_staleness(ctx)

    def _check_gossip_staleness(self, ctx: AbstractProcessContext) -> None:
        now = ctx.now
        for peer in tuple(self.alive):
            if peer == self._index or peer in self.dead_indices:
                continue
            if now - self.last_bump[peer] >= self._hb_timeout:
                self._declare_index_dead(ctx, peer)

    def _on_gossip(self, ctx: AbstractProcessContext, message: Any) -> None:
        now = ctx.now
        for peer, counter in message["counters"].items():
            if peer in self.dead_indices:
                continue  # declarations are final; stale rumours cannot revive
            if counter > self.counters.get(peer, -1):
                self.counters[peer] = counter
                self.last_bump[peer] = now

    # ------------------------------------------------------------------
    def describe(self) -> str:
        mode = "" if self._mode == "full_mesh" else f", {self._mode}"
        return (
            f"heartbeat monitor (interval={self._hb_interval}, "
            f"timeout={self._hb_timeout}{mode})"
        )
