"""Figure 6: implementation of ◇HP (and HΩ) in ``HPS[∅]``.

The algorithm is a polling protocol that runs in locally paced rounds:

* **Task T1** — at round ``r`` the process broadcasts ``POLLING(r, id(p))``,
  waits ``timeout`` time units, and then rebuilds ``h_trusted`` as the
  multiset of sender identifiers of the ``P_REPLY`` messages whose round
  interval covers ``r``.
* **Task T2** — on receiving ``POLLING(r_q, id(q))`` the process answers with
  a single ``P_REPLY`` covering every round of identifier ``id(q)`` it has not
  yet answered (one reply per *identifier*, not per process — homonyms share
  answers, which is exactly why the output is a multiset of identifiers).
  On receiving a ``P_REPLY`` addressed to its own identifier for an already
  finished round, the process increases ``timeout`` — the adaptive mechanism
  that eventually outlasts the unknown ``2δ`` bound (Lemma 5).

Corollary 2: setting ``h_leader`` to the smallest identifier of ``h_trusted``
and ``h_multiplicity`` to its multiplicity turns the same algorithm into an
HΩ implementation with no extra communication.  Both outputs are maintained
and recorded; :meth:`OhpPollingProgram.homega_view` and
:meth:`OhpPollingProgram.diamond_hp_view` expose them to co-located programs
(the "stacked" consensus configuration of experiment E8).
"""

from __future__ import annotations

from ..detectors.base import OutputKeys
from ..detectors.views import DiamondHPView, HOmegaView
from ..identity import Identity, IdentityMultiset
from ..sim.message import Message
from ..sim.process import ProcessContext, ProcessProgram

__all__ = ["OhpPollingProgram"]

KEYS = OutputKeys()


class OhpPollingProgram(ProcessProgram):
    """The Figure 6 polling algorithm (code for one process)."""

    def __init__(
        self,
        *,
        initial_timeout: float = 1.0,
        timeout_increment: float = 1.0,
        record_outputs: bool = True,
        detector_name: str | None = None,
        fixed_timeout: bool = False,
    ) -> None:
        """Configure the polling algorithm.

        ``fixed_timeout`` disables the adaptive timeout of Lines 33–34; it
        exists only for the E1 ablation that shows why adaptation is needed
        when δ is unknown.  ``detector_name``, when given, makes the program
        attach its HΩ view under that name at setup time, so a consensus
        program running on the same process can query it as a detector.
        """
        if initial_timeout <= 0:
            raise ValueError("the initial timeout must be positive")
        if timeout_increment < 0:
            raise ValueError("the timeout increment cannot be negative")
        self._initial_timeout = initial_timeout
        self._timeout_increment = timeout_increment
        self._record_outputs = record_outputs
        self._detector_name = detector_name
        self._fixed_timeout = fixed_timeout

        # Algorithm state (named after the paper's variables).
        self.h_trusted = IdentityMultiset()
        self.h_leader: Identity | None = None
        self.h_multiplicity: int = 0
        self.round: int = 1
        self.timeout: float = initial_timeout
        self._mship: set = set()
        self._latest_round_answered: dict = {}
        self._replies: list[tuple[int, int, Identity, Identity]] = []

    # ------------------------------------------------------------------
    # Views (for stacked configurations)
    # ------------------------------------------------------------------
    def homega_view(self) -> HOmegaView:
        """An HΩ view reading this program's current ``(h_leader, h_multiplicity)``."""
        return HOmegaView(lambda: (self.h_leader, self.h_multiplicity))

    def diamond_hp_view(self) -> DiamondHPView:
        """A ◇HP view reading this program's current ``h_trusted``."""
        return DiamondHPView(lambda: self.h_trusted)

    # ------------------------------------------------------------------
    # Program wiring
    # ------------------------------------------------------------------
    def setup(self, ctx: ProcessContext) -> None:
        self.h_leader = ctx.identity  # sensible value until the first round completes
        self.h_multiplicity = 1
        if self._detector_name is not None:
            ctx.attach_detector(self._detector_name, self.homega_view())
        ctx.on("POLLING", lambda msg: self._on_polling(ctx, msg))
        ctx.on("P_REPLY", lambda msg: self._on_reply(ctx, msg))
        ctx.spawn(lambda: self._polling_task(ctx), name="ohp-polling")

    # ------------------------------------------------------------------
    # Task T1 — the polling rounds
    # ------------------------------------------------------------------
    def _polling_task(self, ctx: ProcessContext):
        while True:
            ctx.broadcast("POLLING", round=self.round, identity=ctx.identity)
            yield ctx.sleep(self.timeout)
            collected = IdentityMultiset(
                sender
                for low, high, target, sender in self._replies
                if target == ctx.identity and low <= self.round <= high
            )
            self.h_trusted = collected
            self._refresh_homega(ctx)
            if self._record_outputs:
                ctx.record(KEYS.H_TRUSTED, self.h_trusted)
                ctx.record(KEYS.H_LEADER, self.h_leader)
                ctx.record(KEYS.H_MULTIPLICITY, self.h_multiplicity)
                ctx.record("ohp.timeout", self.timeout)
                ctx.record("ohp.round", self.round)
            self.round += 1

    def _refresh_homega(self, ctx: ProcessContext) -> None:
        """Corollary 2: derive (h_leader, h_multiplicity) from h_trusted."""
        if self.h_trusted.is_empty():
            # No reply covered this round yet (possible before GST); fall back
            # to trusting at least oneself, as a real deployment would.
            self.h_leader = ctx.identity
            self.h_multiplicity = 1
            return
        self.h_leader = self.h_trusted.min_identity()
        self.h_multiplicity = self.h_trusted.multiplicity(self.h_leader)

    # ------------------------------------------------------------------
    # Task T2 — answering polls and adapting the timeout
    # ------------------------------------------------------------------
    def _on_polling(self, ctx: ProcessContext, message: Message) -> None:
        poll_round = message["round"]
        poller_identity = message["identity"]
        if poller_identity not in self._mship:
            self._mship.add(poller_identity)
            self._latest_round_answered[poller_identity] = 0
        if self._latest_round_answered[poller_identity] < poll_round:
            ctx.broadcast(
                "P_REPLY",
                round_low=self._latest_round_answered[poller_identity] + 1,
                round_high=poll_round,
                target_identity=poller_identity,
                sender_identity=ctx.identity,
            )
        self._latest_round_answered[poller_identity] = max(
            self._latest_round_answered[poller_identity], poll_round
        )

    def _on_reply(self, ctx: ProcessContext, message: Message) -> None:
        target = message["target_identity"]
        if target != ctx.identity:
            # Replies addressed to other identifiers are irrelevant here (the
            # broadcast reaches everyone; only the named identifier uses it).
            return
        entry = (
            message["round_low"],
            message["round_high"],
            target,
            message["sender_identity"],
        )
        self._replies.append(entry)
        if message["round_low"] < self.round and not self._fixed_timeout:
            # Lines 33-34: an outdated reply (one whose interval starts before
            # the current round) means the timeout was too short.
            self.timeout += self._timeout_increment

    def describe(self) -> str:
        return "Figure-6 ◇HP/HΩ polling"
