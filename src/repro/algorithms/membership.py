"""A dynamic cluster-membership program (join / leave / crash-recover).

This is the churn workload of the monitoring-topology layer (ROADMAP item 1):
a SWIM-flavoured membership service built from the same primitives as the
sparse heartbeat monitor, following the introducer-based join of SNIPPETS.md
Snippet 2:

* every member keeps a *view*: ``index → (incarnation, status, counter)``
  with status ``alive``/``left``/``dead``.  Views merge with the usual
  precedence — a higher incarnation wins outright; at equal incarnation
  ``dead`` > ``left`` > ``alive`` and heartbeat counters take the max;
* each period an active member bumps its own counter and sends
  ``M_PING(view)`` to the peers its topology selects (ring successors, or a
  seeded-random gossip fanout); receivers merge and answer ``M_ACK(view)``
  unicast, so state diffuses both ways;
* a *watched* peer (``topology.monitor_targets``) whose counter stops rising
  for ``hb_timeout`` is declared dead — recorded as ``declared_dead`` and
  marked in the view, which the merges then spread; non-watched peers adopt
  deaths by rumour only, never by their own timer (a ring only times out its
  successors, so propagation lag cannot cause false suspicions);
* a process that hears itself called dead or left at its own incarnation
  refutes by bumping its incarnation (the SWIM refutation rule);
* **join**: a late joiner sleeps until its scheduled join time, then asks an
  *introducer* for the current view (``M_JOIN`` → ``M_WELCOME``); if the
  introducer does not answer within ``join_timeout`` (it may have crashed),
  the joiner rotates deterministically through the founding members until one
  welcomes it;
* **leave**: a leaver announces ``M_LEAVE`` to its targets and goes quiet —
  views record it as ``left``, not suspected;
* **down/up**: a down window silences the process (handlers drop, the period
  task idles); recovery bumps the incarnation, which overrides the (correct)
  death rumour and re-admits the member everywhere.

The own churn slice is read from a plain schedule dict
(:meth:`repro.sim.failures.ChurnSchedule.to_dict` — passed through
``program_params``, keeping this module free of simulator imports per the
backend-portability lint).  Everything observable is emitted through
``ctx.record`` (``join_requested``, ``churn_join``, ``churn_leave``,
``churn_down``, ``churn_up``, ``declared_dead``), which is what the
``membership_churn`` check reconstructs its ground truth from.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..context import AbstractProcessContext, ProcessProgram

__all__ = ["ClusterMembershipProgram"]

DECLARED_DEAD = "declared_dead"

ALIVE = "alive"
LEFT = "left"
DEAD = "dead"

#: Merge precedence at equal incarnation (higher wins).
_STATUS_RANK = {ALIVE: 0, LEFT: 1, DEAD: 2}


class ClusterMembershipProgram(ProcessProgram):
    """Topology-driven dynamic membership with introducer-based join."""

    def __init__(
        self,
        *,
        hb_interval: float = 1.0,
        hb_timeout: float = 6.0,
        topology: Any = None,
        index: int | None = None,
        peers: tuple[int, ...] = (),
        churn: Mapping[str, Any] | None = None,
        introducer: int = 0,
        join_timeout: float | None = None,
    ) -> None:
        if hb_interval <= 0:
            raise ValueError("hb_interval must be positive")
        if hb_timeout <= 0:
            raise ValueError("hb_timeout must be positive")
        if topology is None or index is None or not peers:
            raise ValueError(
                "the membership program needs a sparse monitoring topology; "
                "run it with .topology(ring(...)) or .topology(gossip(...)) "
                "(the engine injects topology/index/peers)"
            )
        self._hb_interval = hb_interval
        self._hb_timeout = hb_timeout
        self._topology = topology
        self._index = index
        self._peers = tuple(sorted(peers))
        self._introducer = introducer
        self._join_timeout = join_timeout if join_timeout is not None else 2 * hb_interval

        churn_events = list((churn or {}).get("events", ()))
        self._my_events = sorted(
            (dict(event) for event in churn_events if int(event["index"]) == index),
            key=lambda event: event["time"],
        )
        joiners = {
            int(event["index"]) for event in churn_events if event["kind"] == "join"
        }
        self._founders = tuple(peer for peer in self._peers if peer not in joiners)
        self._join_at = next(
            (event["time"] for event in self._my_events if event["kind"] == "join"), None
        )
        self._leave_at = next(
            (event["time"] for event in self._my_events if event["kind"] == "leave"), None
        )
        #: (start, end) down windows; end is None for a down that never recovers.
        self._down_windows: list[tuple[float, float | None]] = []
        for event in self._my_events:
            if event["kind"] == "down":
                self._down_windows.append((event["time"], None))
            elif event["kind"] == "up":
                start, _ = self._down_windows[-1]
                self._down_windows[-1] = (start, event["time"])

        self.incarnation = 0
        self.active = self._join_at is None
        self._down = False
        #: index → [incarnation, status, counter]
        self.view: dict[int, list] = {}
        #: index → time its counter last rose (only watched entries matter).
        self.last_bump: dict[int, float] = {}
        #: index → time we started watching it (fresh-window grace).
        self.watch_since: dict[int, float] = {}

    # ------------------------------------------------------------------
    def setup(self, ctx: AbstractProcessContext) -> None:
        ctx.record(
            "churn_config",
            {"hb_interval": self._hb_interval, "hb_timeout": self._hb_timeout},
        )
        ctx.on("M_PING", lambda msg: self._on_ping(ctx, msg))
        ctx.on("M_ACK", lambda msg: self._on_ack(ctx, msg))
        ctx.on("M_JOIN", lambda msg: self._on_join(ctx, msg))
        ctx.on("M_WELCOME", lambda msg: self._on_welcome(ctx, msg))
        ctx.on("M_LEAVE", lambda msg: self._on_leave(ctx, msg))
        if self.active:
            now = ctx.now
            for founder in self._founders:
                self.view[founder] = [0, ALIVE, 0]
                self.last_bump[founder] = now
        ctx.spawn(lambda: self._life_task(ctx), name="membership-life")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def alive_members(self) -> list[int]:
        """The indices this process currently believes are members."""
        members = [
            peer for peer, (_, status, _c) in self.view.items() if status == ALIVE
        ]
        if self._index not in members and self.active:
            members.append(self._index)
        return sorted(members)

    def _wire_view(self) -> dict[int, list]:
        view = {peer: list(entry) for peer, entry in self.view.items()}
        view[self._index] = [self.incarnation, ALIVE, view.get(self._index, [0, ALIVE, 0])[2]]
        return view

    def _merge_view(self, ctx: AbstractProcessContext, incoming: Mapping[int, Any]) -> None:
        now = ctx.now
        for peer, entry in incoming.items():
            incarnation, status, counter = entry[0], entry[1], entry[2]
            if peer == self._index:
                # SWIM refutation: a rumour of our death (or departure) at our
                # current incarnation is overridden by incrementing it.
                if status != ALIVE and incarnation >= self.incarnation and self.active:
                    self.incarnation = incarnation + 1
                continue
            local = self.view.get(peer)
            if local is None:
                self.view[peer] = [incarnation, status, counter]
                self.last_bump[peer] = now
                continue
            if incarnation > local[0]:
                self.view[peer] = [incarnation, status, counter]
                self.last_bump[peer] = now
            elif incarnation == local[0]:
                if _STATUS_RANK[status] > _STATUS_RANK[local[1]]:
                    local[1] = status
                if counter > local[2]:
                    local[2] = counter
                    self.last_bump[peer] = now

    # ------------------------------------------------------------------
    # The lifecycle task
    # ------------------------------------------------------------------
    def _life_task(self, ctx: AbstractProcessContext):
        if self._join_at is not None:
            yield ctx.sleep(self._join_at)
            ctx.record("join_requested", self._index)
            yield from self._join_loop(ctx)
            if not self.active:
                return  # ran out the horizon without a welcome
        while True:
            now = ctx.now
            if self._leave_at is not None and now >= self._leave_at:
                self._announce_leave(ctx)
                return
            window = self._current_down_window(now)
            if window is not None:
                yield from self._serve_down_window(ctx, window)
                continue
            self._period(ctx)
            yield ctx.sleep(self._hb_interval)
            self._check_staleness(ctx)

    def _join_loop(self, ctx: AbstractProcessContext):
        candidates = [self._introducer] + [
            founder for founder in self._founders if founder != self._introducer
        ]
        attempt = 0
        while not self.active:
            candidate = candidates[attempt % len(candidates)]
            ctx.multicast(
                "M_JOIN", (candidate,), frm=self._index, inc=self.incarnation
            )
            yield ctx.sleep(self._join_timeout)
            attempt += 1

    def _announce_leave(self, ctx: AbstractProcessContext) -> None:
        targets = self._topology.gossip_targets(
            self._index, self.alive_members(), ctx.random
        )
        if targets:
            ctx.multicast("M_LEAVE", targets, frm=self._index, inc=self.incarnation)
        ctx.record("churn_leave", self._index)
        self.active = False

    def _current_down_window(self, now: float) -> tuple[float, float | None] | None:
        for start, end in self._down_windows:
            if start <= now and (end is None or now < end):
                return (start, end)
        return None

    def _serve_down_window(self, ctx: AbstractProcessContext, window):
        start, end = window
        ctx.record("churn_down", self._index)
        self._down = True
        if end is None:
            # Never recovers: idle out the run without touching the network.
            while True:
                yield ctx.sleep(self._hb_timeout)
        yield ctx.sleep(end - ctx.now)
        self._down = False
        self.incarnation += 1
        ctx.record("churn_up", self._index)
        # Peers rightly declared us dead during the window; the bumped
        # incarnation refutes that on the next merges.

    def _period(self, ctx: AbstractProcessContext) -> None:
        now = ctx.now
        own = self.view.setdefault(self._index, [self.incarnation, ALIVE, 0])
        own[0] = self.incarnation
        own[1] = ALIVE
        own[2] += 1
        members = self.alive_members()
        for watched in self._topology.monitor_targets(self._index, members):
            if watched not in self.watch_since:
                self.watch_since[watched] = now
        targets = self._topology.gossip_targets(self._index, members, ctx.random)
        if targets:
            ctx.multicast("M_PING", targets, frm=self._index, view=self._wire_view())

    def _check_staleness(self, ctx: AbstractProcessContext) -> None:
        now = ctx.now
        for watched in self._topology.monitor_targets(self._index, self.alive_members()):
            entry = self.view.get(watched)
            if entry is None or entry[1] != ALIVE:
                continue
            seen = self.last_bump.get(watched, self.watch_since.get(watched, now))
            grace = self.watch_since.get(watched, seen)
            if now - max(seen, grace) >= self._hb_timeout:
                entry[1] = DEAD
                ctx.record(DECLARED_DEAD, watched)
                self.watch_since.pop(watched, None)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _receiving(self) -> bool:
        return self.active and not self._down

    def _on_ping(self, ctx: AbstractProcessContext, message: Any) -> None:
        if not self._receiving():
            return
        self._merge_view(ctx, message["view"])
        ctx.multicast(
            "M_ACK", (message["frm"],), frm=self._index, view=self._wire_view()
        )

    def _on_ack(self, ctx: AbstractProcessContext, message: Any) -> None:
        if not self._receiving():
            return
        self._merge_view(ctx, message["view"])

    def _on_join(self, ctx: AbstractProcessContext, message: Any) -> None:
        if not self._receiving():
            return
        joiner = message["frm"]
        incarnation = message["inc"]
        local = self.view.get(joiner)
        if local is None or incarnation >= local[0]:
            self.view[joiner] = [incarnation, ALIVE, 0]
            self.last_bump[joiner] = ctx.now
        ctx.multicast("M_WELCOME", (joiner,), frm=self._index, view=self._wire_view())

    def _on_welcome(self, ctx: AbstractProcessContext, message: Any) -> None:
        if self._down or self.active:
            return
        self._merge_view(ctx, message["view"])
        self.active = True
        ctx.record("churn_join", self._index)

    def _on_leave(self, ctx: AbstractProcessContext, message: Any) -> None:
        if not self._receiving():
            return
        leaver = message["frm"]
        incarnation = message["inc"]
        local = self.view.get(leaver)
        if local is None or incarnation > local[0] or (
            incarnation == local[0] and _STATUS_RANK[LEFT] > _STATUS_RANK[local[1]]
        ):
            self.view[leaver] = [incarnation, LEFT, local[2] if local else 0]

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"cluster membership (interval={self._hb_interval}, "
            f"timeout={self._hb_timeout}, {self._topology.kind})"
        )
