"""Figure 7: implementation of HΣ in ``HSS[∅]`` (synchronous homonymous system).

The algorithm runs in lock-step synchronous steps.  In each step every alive
process broadcasts ``IDENT(id(p))``, waits for the messages of that step, and
gathers the received identifiers into a multiset ``mset``.  The multiset is
then used both as a quorum *label* and as the quorum's identifier multiset:
``h_quora ← h_quora ∪ {(mset, mset)}`` and ``h_labels ← h_labels ∪ {mset}``.

Because links are timely and every alive process broadcasts in every step,
``mset`` always contains the identifiers of all processes alive throughout the
step; once the last faulty process has crashed, every correct process keeps
adding the pair ``(I(Correct), I(Correct))``, which provides liveness, while
safety follows from every realising quorum of a label being exactly the set of
processes the labelling process heard from in that step (Theorem 6).
"""

from __future__ import annotations

from ..detectors.base import OutputKeys
from ..detectors.views import HSigmaView
from ..identity import IdentityMultiset
from ..sim.message import Message
from ..sim.process import ProcessContext, ProcessProgram

__all__ = ["HSigmaSynchronousProgram"]

KEYS = OutputKeys()


class HSigmaSynchronousProgram(ProcessProgram):
    """The Figure 7 synchronous algorithm (code for one process)."""

    def __init__(
        self,
        *,
        steps: int | None = None,
        record_outputs: bool = True,
        detector_name: str | None = None,
    ) -> None:
        """``steps`` bounds how many synchronous steps to run (``None`` = forever)."""
        self._steps = steps
        self._record_outputs = record_outputs
        self._detector_name = detector_name

        # Algorithm state (paper variable names).
        self.h_labels: frozenset = frozenset()
        self.h_quora: frozenset = frozenset()
        self._current_step_identities: list = []

    def hsigma_view(self) -> HSigmaView:
        """An HΣ view reading this program's current ``h_quora`` and ``h_labels``."""
        return HSigmaView(lambda: self.h_quora, lambda: self.h_labels)

    def setup(self, ctx: ProcessContext) -> None:
        if self._detector_name is not None:
            ctx.attach_detector(self._detector_name, self.hsigma_view())
        ctx.on("IDENT", self._on_ident)
        ctx.spawn(lambda: self._step_loop(ctx), name="hsigma-steps")

    def _on_ident(self, message: Message) -> None:
        self._current_step_identities.append(message["identity"])

    def _step_loop(self, ctx: ProcessContext):
        executed = 0
        while self._steps is None or executed < self._steps:
            self._current_step_identities = []
            ctx.broadcast("IDENT", identity=ctx.identity)
            yield ctx.next_synchronous_step()
            mset = IdentityMultiset(self._current_step_identities)
            if not mset.is_empty():
                self.h_quora = self.h_quora | {(mset, mset)}
                self.h_labels = self.h_labels | {mset}
            if self._record_outputs:
                ctx.record(KEYS.H_QUORA, self.h_quora)
                ctx.record(KEYS.H_LABELS, self.h_labels)
            executed += 1

    def describe(self) -> str:
        return "Figure-7 HΣ synchronous"
