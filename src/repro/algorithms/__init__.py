"""Message-passing implementations of failure detectors.

Unlike the oracles of :mod:`repro.detectors`, the programs here build their
outputs purely from messages — they are the paper's implementability results:

* :class:`~repro.algorithms.ohp_polling.OhpPollingProgram` — Figure 6,
  implements ◇HP (and, per Corollary 2, HΩ) in ``HPS[∅]``: partially
  synchronous processes, eventually timely links, unknown membership.
* :class:`~repro.algorithms.hsigma_synchronous.HSigmaSynchronousProgram` —
  Figure 7, implements HΣ in ``HSS[∅]``.
* :class:`~repro.algorithms.script_alive.ScriptAliveProgram` — Figure 3,
  implements the auxiliary class ℰ in ``AS[∅]``.
* :class:`~repro.algorithms.heartbeat.HeartbeatMonitorProgram` — the
  HB_PING/HB_ACK monitor of the sim-vs-real validation harness (ROADMAP
  item 3); runs unchanged on the simulator and the TCP backend.
"""

from .heartbeat import HeartbeatMonitorProgram
from .hsigma_synchronous import HSigmaSynchronousProgram
from .ohp_polling import OhpPollingProgram
from .script_alive import ScriptAliveProgram

__all__ = [
    "HeartbeatMonitorProgram",
    "HSigmaSynchronousProgram",
    "OhpPollingProgram",
    "ScriptAliveProgram",
]
