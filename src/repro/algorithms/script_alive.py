"""Figure 3: implementation of the class ℰ in ``AS[∅]``.

Every process repeatedly broadcasts ``ALIVE(id(p))``; on receiving
``ALIVE(i)`` it moves ``i`` to (or inserts it at) the first position of its
``alive`` sequence.  Identifiers of faulty processes eventually stop being
refreshed and sink below the identifiers of the correct processes, which keep
being moved to the front — so eventually every correct identifier stays within
the first ``|Correct|`` ranks (Lemma 1).

The paper's ``repeat forever`` loop is paced here by a ``resend_period``: a
partially synchronous (or asynchronous-but-live) process takes a bounded
number of time units per loop iteration, and the period is that bound made
explicit.  The class is only meaningful with unique identifiers, but the
program itself runs anywhere; the Figure 4 reduction that consumes it checks
the uniqueness assumption.
"""

from __future__ import annotations

from ..detectors.base import OutputKeys
from ..detectors.views import ScriptEView
from ..sim.message import Message
from ..sim.process import ProcessContext, ProcessProgram

__all__ = ["ScriptAliveProgram"]

KEYS = OutputKeys()


class ScriptAliveProgram(ProcessProgram):
    """The Figure 3 algorithm (code for one process)."""

    def __init__(
        self,
        *,
        resend_period: float = 1.0,
        record_outputs: bool = True,
        detector_name: str | None = None,
    ) -> None:
        if resend_period <= 0:
            raise ValueError("the resend period must be positive")
        self._resend_period = resend_period
        self._record_outputs = record_outputs
        self._detector_name = detector_name
        self.alive: list = []

    def script_e_view(self) -> ScriptEView:
        """An ℰ view reading this program's current ``alive`` sequence."""
        return ScriptEView(lambda: tuple(self.alive))

    def setup(self, ctx: ProcessContext) -> None:
        if self._detector_name is not None:
            ctx.attach_detector(self._detector_name, self.script_e_view())
        ctx.on("ALIVE", lambda msg: self._on_alive(ctx, msg))
        ctx.spawn(lambda: self._heartbeat_task(ctx), name="script-e-heartbeat")

    def _heartbeat_task(self, ctx: ProcessContext):
        while True:
            ctx.broadcast("ALIVE", identity=ctx.identity)
            yield ctx.sleep(self._resend_period)

    def _on_alive(self, ctx: ProcessContext, message: Message) -> None:
        identity = message["identity"]
        if identity in self.alive:
            self.alive.remove(identity)
        self.alive.insert(0, identity)
        if self._record_outputs:
            ctx.record(KEYS.SCRIPT_E_ALIVE, tuple(self.alive))

    def describe(self) -> str:
        return "Figure-3 ℰ heartbeat"
