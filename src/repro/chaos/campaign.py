"""Fault plans for chaos campaigns: every injection from one seed.

:meth:`FaultPlan.from_seed` is the single source of randomness for a
campaign.  Each injection category draws from the campaign RNG
*unconditionally and in a fixed order* — even categories that end up disabled
consume their draws — so the plan for seed *s* never depends on which
categories a caller toggles elsewhere, and a bug report that says "seed 41"
fully determines what was injected where.

The plan deliberately reuses the repo's existing deterministic fault hooks
instead of inventing parallel ones:

* worker kill/stall → the coordinator's ``chaos_kill_worker_after`` /
  ``chaos_stall_worker_after`` (SIGKILL / SIGSTOP after N results);
* coordinator death → ``crash_after_chunks`` (:class:`SimulatedCrash`);
* torn/foreign journal lines → direct mutilation of the shard files between
  crash and resume (:func:`mutilate_journal`);
* cache corruption → direct mutilation of ``RunCache`` entries
  (:func:`corrupt_cache_entries`);
* lossy links → ``backend_params["link"]`` on a real-backend run
  (:class:`~repro.transport.node.ShapedLink`), with the campaign seed folded
  into each link's RNG stream.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Injection",
    "FaultPlan",
    "mutilate_journal",
    "corrupt_cache_entries",
]


@dataclass(frozen=True)
class Injection:
    """One planned injection: what, and the parameters that aim it."""

    kind: str
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, **self.params}


@dataclass(frozen=True)
class FaultPlan:
    """Every injection of one campaign, fully determined by ``seed``."""

    seed: int
    kill_worker_after: int | None
    stall_worker_after: int | None
    crash_after_chunks: int | None
    torn_journal: bool
    foreign_line: bool
    corrupt_cache_entries: int
    link: dict
    transport_fault: str  # "kill" or "suspend"

    @classmethod
    def from_seed(cls, seed: int) -> "FaultPlan":
        """Derive the campaign's full injection set from one seed.

        Every category draws exactly once, in this order, whether or not the
        draw enables it — replay identity must not depend on toggles.
        """
        rng = random.Random(f"chaos:{seed}")
        kill_after = rng.randint(1, 4)
        stall_after = rng.randint(2, 6)
        crash_after = rng.randint(1, 3)
        torn = rng.random() < 0.75
        foreign = rng.random() < 0.75
        corrupt = rng.randint(1, 3)
        loss = rng.choice([0.05, 0.1, 0.15])
        delay = rng.choice([0.0, 0.1])
        transport_fault = rng.choice(["kill", "suspend"])
        return cls(
            seed=seed,
            kill_worker_after=kill_after,
            stall_worker_after=stall_after,
            crash_after_chunks=crash_after,
            torn_journal=torn,
            foreign_line=foreign,
            corrupt_cache_entries=corrupt,
            link={"loss": loss, "delay": delay, "seed": seed},
            transport_fault=transport_fault,
        )

    def injections(self) -> list[Injection]:
        """The plan as a flat, printable injection list."""
        out = [
            Injection("kill_worker", {"after_results": self.kill_worker_after}),
            Injection("stall_worker", {"after_results": self.stall_worker_after}),
            Injection("coordinator_crash", {"after_chunks": self.crash_after_chunks}),
            Injection(
                "corrupt_cache", {"entries": self.corrupt_cache_entries}
            ),
            Injection("shaped_link", dict(self.link)),
            Injection("transport_fault", {"action": self.transport_fault}),
        ]
        if self.torn_journal:
            out.append(Injection("torn_journal", {}))
        if self.foreign_line:
            out.append(Injection("foreign_journal_line", {}))
        return out

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "injections": [injection.to_dict() for injection in self.injections()],
        }


def mutilate_journal(
    shards_dir: Path, *, torn: bool, foreign: bool, rng: random.Random
) -> list[str]:
    """Damage shard journals the way a real crash (or a stray writer) would.

    ``torn``: truncate the largest shard mid-line *and* append an unfinished
    line — both shapes of a write cut short by SIGKILL.  ``foreign``:
    interleave complete-but-alien lines (not JSON / JSON of the wrong shape /
    a result whose key matches no plan item) into the same file.  Returns a
    description of what was done, for the campaign report.

    The fabric's journal loader must shrug all of this off: a journal line is
    either a complete, verifiable result or it does not exist.
    """
    applied: list[str] = []
    shards = sorted(shards_dir.glob("*.jsonl"), key=lambda p: p.stat().st_size)
    if not shards:
        return applied
    victim = shards[-1]  # the largest journal has the most to lose
    if torn:
        raw = victim.read_bytes()
        lines = raw.splitlines(keepends=True)
        if lines:
            last = lines[-1]
            cut = rng.randint(1, max(1, len(last) - 1))
            victim.write_bytes(b"".join(lines[:-1]) + last[:cut])
            applied.append(f"tore the last line of {victim.name} at byte {cut}")
    if foreign:
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write("this is not even JSON\n")
            handle.write(json.dumps({"index": 0, "unrelated": True}) + "\n")
            handle.write(
                json.dumps(
                    {
                        "index": 0,
                        "key": "row-0000000000000000",  # matches no plan item
                        "row": {},
                        "digests": [],
                        "source": "fresh",
                        "digests_complete": True,
                    }
                )
                + "\n"
            )
        applied.append(f"interleaved 3 foreign lines into {victim.name}")
    if torn:
        # A torn *trailing* write can also land after valid lines written by
        # the resumed run — leave an unterminated fragment at the very end.
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write('{"index": 1, "key": "row-')  # no newline, cut short
        applied.append(f"appended an unterminated fragment to {victim.name}")
    return applied


def corrupt_cache_entries(
    cache_root: Path, count: int, rng: random.Random
) -> list[str]:
    """Overwrite ``count`` cache entries with garbage; return their names.

    The cache contract is corrupt-entry == miss: the run recomputes the item
    and rewrites the entry, with byte-identical final output.
    """
    entries = sorted(cache_root.glob("*.json"))
    if not entries:
        return []
    victims = rng.sample(entries, min(count, len(entries)))
    for victim in victims:
        victim.write_bytes(b'{"schema": "run-cache/1", "payload": garbage')
    return [victim.name for victim in victims]
