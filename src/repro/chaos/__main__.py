"""Command-line entry point for seeded chaos campaigns.

Examples::

    python -m repro.chaos soak                       # one campaign, seed 0
    python -m repro.chaos soak --campaigns 3 --seed 7
    python -m repro.chaos soak --transport           # add the real-TCP leg
    python -m repro.chaos plan --seed 41             # print what 41 injects

``soak`` exits non-zero if any campaign invariant fails, which is what the
CI ``chaos-smoke`` job gates on.  Each campaign's scratch directory is
created outside the fenced ``TMPDIR`` and removed afterwards unless
``--keep`` names a directory to preserve the evidence in.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path

from .campaign import FaultPlan
from .soak import run_campaign

__all__ = ["main"]


def _cmd_plan(args: argparse.Namespace) -> int:
    json.dump(FaultPlan.from_seed(args.seed).to_dict(), sys.stdout, indent=2)
    print()
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    failures = 0
    for offset in range(args.campaigns):
        seed = args.seed + offset
        if args.keep:
            scratch = Path(args.keep) / f"campaign-{seed}"
            scratch.mkdir(parents=True, exist_ok=True)
        else:
            scratch = Path(tempfile.mkdtemp(prefix=f"repro-chaos-{seed}-"))
        try:
            report = run_campaign(
                seed,
                scratch=scratch,
                workers=args.workers,
                progress_timeout=args.progress_timeout,
                kv=not args.no_kv,
                transport=args.transport,
            )
        finally:
            if not args.keep:
                shutil.rmtree(scratch, ignore_errors=True)
        print(json.dumps(report.to_dict(), sort_keys=True))
        status = "ok" if report.ok else "FAILED"
        print(
            f"chaos: campaign seed={seed} {status} "
            f"({sum(i.ok for i in report.invariants)}/{len(report.invariants)} "
            "invariants)",
            file=sys.stderr,
        )
        for invariant in report.invariants:
            marker = "✓" if invariant.ok else "✗"
            print(f"  {marker} {invariant.name}: {invariant.detail}", file=sys.stderr)
        if not report.ok:
            failures += 1
    if failures:
        print(f"chaos: {failures}/{args.campaigns} campaign(s) FAILED", file=sys.stderr)
        return 1
    print(f"chaos: all {args.campaigns} campaign(s) passed", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded, replayable chaos campaigns (see repro/chaos/__init__.py).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan_parser = commands.add_parser(
        "plan", help="print the injection plan a seed derives to"
    )
    plan_parser.add_argument("--seed", type=int, default=0)
    plan_parser.set_defaults(handler=_cmd_plan)

    soak_parser = commands.add_parser(
        "soak", help="run seeded campaigns and assert every invariant"
    )
    soak_parser.add_argument(
        "--campaigns", type=int, default=1, metavar="N", help="how many seeds to soak"
    )
    soak_parser.add_argument("--seed", type=int, default=0, help="first campaign seed")
    soak_parser.add_argument(
        "--workers", type=int, default=2, metavar="N", help="fabric workers per run"
    )
    soak_parser.add_argument(
        "--progress-timeout",
        type=float,
        default=3.0,
        metavar="SECONDS",
        help="per-worker stall deadline inside the campaign (default 3)",
    )
    soak_parser.add_argument(
        "--transport",
        action="store_true",
        help="also run the real-TCP leg (lossy links + kill/suspend fault)",
    )
    soak_parser.add_argument(
        "--no-kv", action="store_true", help="skip the KV linearizability run"
    )
    soak_parser.add_argument(
        "--keep", metavar="DIR", help="preserve each campaign's scratch dir under DIR"
    )
    soak_parser.set_defaults(handler=_cmd_soak)

    args = parser.parse_args(sys.argv[1:] if argv is None else list(argv))
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
