"""Seeded, replayable chaos campaigns across the fabric and the transport.

A chaos *campaign* is a bundle of deliberate failures — worker SIGKILLs and
SIGSTOPs, a simulated coordinator death, torn journal tails, foreign journal
lines, corrupted cache entries, lossy/delaying real links — derived entirely
from one integer seed (:meth:`FaultPlan.from_seed`).  Because every injection
parameter is a deterministic function of the seed, a failing campaign is
replayed bit-identically by re-running the same seed: there is no "flaky
chaos", only reproducible evidence.

The campaign's *invariants* are the repo's actual guarantees, asserted
end-to-end by :mod:`repro.chaos.soak`:

* the fabric's merged JSONL is byte-identical to a serial run of the same
  sweep — or explicitly partial, with the exact missing indices reported;
* the folded digest manifest is unchanged by any amount of chaos;
* the replicated KV service stays linearizable under crash + loss;
* no worker/node subprocess and no temporary directory outlives its run.

Entry point::

    python -m repro.chaos soak --campaigns 2 --seed 7

See also :mod:`repro.retry` (the shared backoff policies the subsystems under
test use to survive these injections) and ``README.md`` §"Chaos & fault
injection".
"""

from .campaign import FaultPlan, Injection
from .soak import CampaignReport, run_campaign

__all__ = ["FaultPlan", "Injection", "CampaignReport", "run_campaign"]
