"""Run one seeded chaos campaign end-to-end and assert the repo's guarantees.

A campaign (see :mod:`repro.chaos.campaign` for how its parameters derive
from the seed) drives a real fabric sweep through every fault class at once:

1. **Serial reference** — every plan item executed in-process, giving the
   byte-exact merged JSONL and per-item digests any chaotic run must match.
2. **Kill + coordinator crash** — a fabric run that SIGKILLs a worker after
   *K* results and then dies itself (:class:`SimulatedCrash`) after
   ``K + C`` finished chunks, leaving a half-written state directory.  The
   thresholds are ordered so the worker kill provably fires first: a chunk
   completes only after its results, so ``completed_chunks >= K + C``
   implies ``results_seen > K``.
3. **Mutilation** — the journals are torn and salted with foreign lines,
   and cache entries are overwritten with garbage, exactly as a crash (or a
   stray writer) would leave them.
4. **Resume** — a fresh coordinator over the damaged state dir must finish
   the plan and merge byte-identically to the serial reference (or
   explicitly partial, naming exact indices — never silently short).
5. **Stall rehearsal** — a third run over a fresh state dir SIGSTOPs a busy
   worker mid-run; the per-chunk progress deadline must detect it, kill it,
   requeue its chunk, and still converge to the identical bytes: a stalled
   worker slows a run down, never hangs it.
6. **Service invariants** — the replicated KV workload stays linearizable
   under a seed-chosen crash/lossy envelope, and (``transport=True``) a
   real TCP heartbeat run under a lossy :class:`ShapedLink` plus a
   seed-chosen SIGKILL-or-SIGSTOP fault still detects its victim.
7. **Hygiene** — no child process and no temporary directory outlives the
   campaign (``TMPDIR`` is fenced into the scratch directory for the whole
   campaign, then asserted empty).

Every invariant lands in the :class:`CampaignReport` with a pass/fail and a
human detail line; ``python -m repro.chaos soak`` exits non-zero if any
failed, which is what the CI ``chaos-smoke`` job gates on.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.runner import ParameterSweep
from ..fabric.coordinator import Coordinator, FabricResult, SimulatedCrash
from ..fabric.plan import FabricPlan, plan_sweep
from ..fabric.work import ItemResult, execute_item
from ..runtime import Engine, lossy, minority, scenario
from ..runtime.cache import RunCache
from .campaign import FaultPlan, corrupt_cache_entries, mutilate_journal

__all__ = ["CampaignReport", "Invariant", "run_campaign", "soak_plan"]

#: The sweep function the soak shards: E1's per-config runner, the smallest
#: real workload that still produces determinism digests.
SOAK_FN = "repro.experiments.e1_ohp_convergence._run_one"


def soak_plan(seed: int) -> FabricPlan:
    """A 12-item E1 sweep: small enough to soak in seconds, big enough that
    every chaos threshold (kill after ≤4 results, crash after ≤7 chunks,
    stall after ≤6 results) fires with work still outstanding."""
    sweep = ParameterSweep(
        {
            "n": [3],
            "distinct_ids": [1, 3],
            "gst": [2.0],
            "delta": [0.5, 1.0],
            "fixed_timeout": [False],
        },
        repetitions=3,
        base_seed=seed,
    )
    return plan_sweep(SOAK_FN, sweep, name="soak")


@dataclass
class Invariant:
    """One checked guarantee: its verdict and the evidence line."""

    name: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass
class CampaignReport:
    """Everything one campaign did and proved, JSON-serializable."""

    seed: int
    plan: dict
    applied: list[str] = field(default_factory=list)
    invariants: list[Invariant] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(invariant.ok for invariant in self.invariants)

    def check(self, name: str, ok: bool, detail: str = "") -> None:
        self.invariants.append(Invariant(name=name, ok=bool(ok), detail=detail))

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "fault_plan": self.plan,
            "applied": list(self.applied),
            "invariants": [invariant.to_dict() for invariant in self.invariants],
            "stats": dict(self.stats),
        }


def _serial_reference(plan: FabricPlan) -> list[ItemResult]:
    """Execute every item in-process, in order — the ground truth."""
    return [execute_item(item) for item in plan.items]


def _merged_lines(results: list[ItemResult]) -> list[str]:
    return [json.dumps(result.row, sort_keys=True, default=str) for result in results]


def _child_pids() -> set[int]:
    """PIDs whose parent is this process (via /proc; empty set elsewhere)."""
    me = os.getpid()
    children: set[int] = set()
    proc = Path("/proc")
    if not proc.is_dir():
        return children
    for entry in proc.iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue  # raced with an exit
        fields = stat.rpartition(")")[2].split()
        if len(fields) > 1 and int(fields[1]) == me:
            children.add(int(entry.name))
    return children


def _check_merge(
    report: CampaignReport,
    result: FabricResult,
    serial: list[ItemResult],
    *,
    name: str,
    partial_path: Path,
) -> None:
    """Merged output == serial bytes, or explicitly partial with exact indices."""
    reference = _merged_lines(serial)
    merged = Path(result.merged_path).read_text(encoding="utf-8").splitlines()
    if not result.partial:
        ok = merged == reference
        report.check(
            name,
            ok,
            "merged JSONL byte-identical to serial"
            if ok
            else f"merged differs from serial ({len(merged)} vs {len(reference)} rows)",
        )
        return
    missing = sorted(result.quarantined)
    expected = [line for index, line in enumerate(reference) if index not in missing]
    rows_ok = merged == expected
    reported: list[int] = []
    if partial_path.exists():
        reported = json.loads(partial_path.read_text())["missing_indices"]
    report.check(
        name,
        rows_ok and reported == missing,
        f"explicit partial merge: quarantined indices {missing} "
        f"(partial.json reports {reported}; surviving rows "
        f"{'match' if rows_ok else 'DIFFER FROM'} serial)",
    )


def _check_digests(
    report: CampaignReport, result: FabricResult, serial: list[ItemResult]
) -> None:
    """Every digest record the chaotic run carried must equal the serial one."""
    reference = {item.index: item.digests for item in serial}
    mismatched = [
        result_item.index
        for result_item in result.results
        if result_item.digests and result_item.digests != reference[result_item.index]
    ]
    carried = sum(1 for result_item in result.results if result_item.digests)
    report.check(
        "digests",
        not mismatched,
        f"{carried}/{len(result.results)} items carried digests, "
        + ("all equal to serial" if not mismatched else f"MISMATCHED at {mismatched}"),
    )


def _kv_invariant(report: CampaignReport, seed: int) -> None:
    """The replicated KV service stays linearizable under a seeded fault."""
    fault = random.Random(f"chaos-kv:{seed}").choice(["crash", "lossy"])
    builder = (
        scenario(f"chaos-kv-{fault}")
        .homonyms([2, 2, 1])
        .detectors("HOmega", stabilization=10.0)
        .kv(
            clients=3,
            ops_per_client=4,
            skew="uniform",
            read_mode="log",
            think_time=1.0,
            key_space=4,
        )
        .horizon(400.0)
        .seed(seed)
    )
    if fault == "crash":
        builder = builder.crashes(minority(at=12.0, count=1))
    else:
        builder = builder.network(lossy(0.05)).adversarial()
    record = Engine().run(builder.build())
    report.check(
        "kv_linearizable",
        record.metrics.get("linearizable") is True,
        f"replicated KV under {fault}: "
        f"{record.metrics.get('ops_completed', '?')} ops completed, "
        f"linearizable={record.metrics.get('linearizable')}",
    )


def _transport_invariant(report: CampaignReport, fault_plan: FaultPlan) -> None:
    """A lossy real-TCP run under the seeded fault still detects its victim."""
    from ..transport.__main__ import build_heartbeat_spec

    suspend = fault_plan.transport_fault == "suspend"
    hb_timeout = 3.0
    spec = build_heartbeat_spec(
        nodes=3,
        hb_timeout=hb_timeout,
        seed=fault_plan.seed,
        backend="real",
        loss=fault_plan.link["loss"],
        fault_action="suspend" if suspend else "kill",
        resume_after=hb_timeout + 2.0 if suspend else None,
    )
    record = Engine().run(spec)
    report.check(
        "transport_detection",
        record.metrics.get("hb_detection_ok") is True,
        f"real backend, loss={fault_plan.link['loss']}, "
        f"fault={fault_plan.transport_fault}: "
        f"detection_ok={record.metrics.get('hb_detection_ok')}, "
        f"latency={record.metrics.get('hb_detection_time')}",
    )


def run_campaign(
    seed: int,
    *,
    scratch: str | os.PathLike,
    workers: int = 2,
    progress_timeout: float = 3.0,
    kv: bool = True,
    transport: bool = False,
) -> CampaignReport:
    """Run the full campaign for ``seed`` inside ``scratch``; see module doc.

    ``scratch`` must be a fresh directory the caller owns (and removes); the
    campaign fences ``TMPDIR`` into it so the temp-leak invariant can sweep
    one known place.  ``transport=True`` adds the real-TCP leg (seconds of
    wall clock, needs localhost sockets); ``kv=False`` skips the KV run for
    test speed.
    """
    scratch = Path(scratch)
    fault_plan = FaultPlan.from_seed(seed)
    report = CampaignReport(seed=seed, plan=fault_plan.to_dict())
    plan = soak_plan(seed)

    tmp_root = scratch / "tmp"
    tmp_root.mkdir(parents=True, exist_ok=True)
    children_before = _child_pids()
    saved_tempdir, saved_env = tempfile.tempdir, os.environ.get("TMPDIR")
    tempfile.tempdir = str(tmp_root)
    os.environ["TMPDIR"] = str(tmp_root)
    try:
        serial = _serial_reference(plan)
        cache = RunCache(scratch / "cache")
        state = scratch / "state"

        # Phase 1: a worker is SIGKILLed, then the coordinator itself dies.
        kill_after = fault_plan.kill_worker_after
        crash_after = kill_after + fault_plan.crash_after_chunks
        crashed = False
        try:
            Coordinator(
                plan,
                state_dir=state,
                workers=workers,
                cache=cache,
                progress_timeout=progress_timeout,
                chaos_kill_worker_after=kill_after,
                crash_after_chunks=crash_after,
            ).run()
        except SimulatedCrash as error:
            crashed = True
            report.applied.append(
                f"killed a worker after {kill_after} results, then {error}"
            )
        report.check(
            "coordinator_crash",
            crashed,
            f"worker SIGKILL after {kill_after} results + coordinator crash "
            f"after {crash_after} chunks "
            + ("rehearsed" if crashed else "NEVER FIRED"),
        )

        # Phase 2: damage what the crash left behind.
        mutilation_rng = random.Random(f"chaos-mutilate:{seed}")
        report.applied.extend(
            mutilate_journal(
                state / "shards",
                torn=fault_plan.torn_journal,
                foreign=fault_plan.foreign_line,
                rng=mutilation_rng,
            )
        )
        corrupted = corrupt_cache_entries(
            cache.root, fault_plan.corrupt_cache_entries, mutilation_rng
        )
        if corrupted:
            report.applied.append(f"corrupted {len(corrupted)} cache entries")

        # Phase 3: resume over the damaged state; must finish and match.
        resumed = Coordinator(
            None,
            state_dir=state,
            workers=workers,
            cache=cache,
            progress_timeout=progress_timeout,
            allow_partial=True,
        ).run()
        report.stats["resume"] = dict(resumed.stats)
        _check_merge(
            report, resumed, serial, name="merge", partial_path=state / "partial.json"
        )
        _check_digests(report, resumed, serial)

        # Phase 4: stall rehearsal — SIGSTOP a busy worker on a fresh state
        # dir; the progress deadline must recover it and converge anyway.
        stalled = Coordinator(
            plan,
            state_dir=scratch / "stall-state",
            workers=workers,
            cache=cache,
            progress_timeout=progress_timeout,
            allow_partial=True,
            chaos_stall_worker_after=fault_plan.stall_worker_after,
        ).run()
        report.stats["stall"] = dict(stalled.stats)
        report.applied.append(
            f"SIGSTOPped a busy worker after {fault_plan.stall_worker_after} results"
        )
        report.check(
            "stall_detected",
            stalled.stats["stalled_workers"] >= 1,
            f"progress deadline ({progress_timeout:g}s) killed "
            f"{stalled.stats['stalled_workers']} stalled worker(s) "
            f"after {stalled.stats['worker_deaths']} death(s) total",
        )
        _check_merge(
            report,
            stalled,
            serial,
            name="stall_merge",
            partial_path=scratch / "stall-state" / "partial.json",
        )

        # Phase 5: the service-level guarantees hold under the same seed.
        if kv:
            _kv_invariant(report, seed)
        if transport:
            _transport_invariant(report, fault_plan)
    finally:
        tempfile.tempdir = saved_tempdir
        if saved_env is None:
            os.environ.pop("TMPDIR", None)
        else:
            os.environ["TMPDIR"] = saved_env

    # Phase 6: hygiene — nothing outlives the campaign.
    leaked = sorted(_child_pids() - children_before)
    report.check(
        "no_orphans",
        not leaked,
        "no worker/node subprocess outlived the campaign"
        if not leaked
        else f"ORPHANED child PIDs: {leaked}",
    )
    leftovers = sorted(path.name for path in tmp_root.iterdir())
    report.check(
        "no_temp_leaks",
        not leftovers,
        "no temp dirs left behind"
        if not leftovers
        else f"LEAKED temp entries: {leftovers}",
    )
    return report
