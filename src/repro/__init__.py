"""repro — failure detectors and consensus for homonymous distributed systems.

This library reproduces "Failure Detectors in Homonymous Distributed Systems
(with an Application to Consensus)" (Arévalo, Fernández Anta, Imbs, Jiménez,
Raynal — ICDCS 2012): the homonymous failure-detector classes ◇HP, HΩ and HΣ,
their implementations under partial synchrony and synchrony, the reductions
relating them to the classical and anonymous classes, and the two consensus
algorithms built on top of them — all running over a deterministic
discrete-event simulation of crash-prone homonymous message-passing systems.

Typical entry points:

* :func:`repro.membership.grouped_identities` & friends — build a homonymous
  membership;
* :mod:`repro.sim` — build and run a system (``build_system`` + ``Simulation``);
* :mod:`repro.detectors` — detector oracles, views, and property checkers;
* :mod:`repro.algorithms` — the paper's detector implementations
  (Figures 3, 6, 7);
* :mod:`repro.reductions` — the paper's reductions (Figures 1, 2, 4;
  Theorems 3–4; Observation 1) and the Figure 5 relation graph;
* :mod:`repro.consensus` — the Figure 8 and Figure 9 consensus algorithms,
  baselines, and the validity/agreement/termination validator;
* :mod:`repro.workloads`, :mod:`repro.analysis`, :mod:`repro.experiments` —
  scenario generation, metrics, and the experiment harness behind
  ``EXPERIMENTS.md`` and the benchmarks.
"""

from .identity import ANONYMOUS_IDENTITY, Identity, IdentityMultiset, ProcessId
from .membership import (
    Membership,
    anonymous_identities,
    grouped_identities,
    identities_from_multiplicities,
    random_identities,
    unique_identities,
)

__version__ = "1.0.0"

__all__ = [
    "ANONYMOUS_IDENTITY",
    "Identity",
    "IdentityMultiset",
    "Membership",
    "ProcessId",
    "anonymous_identities",
    "grouped_identities",
    "identities_from_multiplicities",
    "random_identities",
    "unique_identities",
    "__version__",
]
