"""repro — failure detectors and consensus for homonymous distributed systems.

This library reproduces "Failure Detectors in Homonymous Distributed Systems
(with an Application to Consensus)" (Arévalo, Fernández Anta, Imbs, Jiménez,
Raynal — ICDCS 2012): the homonymous failure-detector classes ◇HP, HΩ and HΣ,
their implementations under partial synchrony and synchrony, the reductions
relating them to the classical and anonymous classes, and the two consensus
algorithms built on top of them — all running over a deterministic
discrete-event simulation of crash-prone homonymous message-passing systems.

Typical entry points:

* :mod:`repro.runtime` — **the front door**: declare a run with the fluent
  :func:`~repro.runtime.scenario` builder (membership shape, timing, crashes,
  detector stack, algorithm — validated against the paper's requirement
  table), serialize it as a :class:`~repro.runtime.ScenarioSpec`, and execute
  one spec or a whole sweep through the :class:`~repro.runtime.Engine`
  (serially, or multi-core via ``Engine(jobs=N)``)::

      from repro.runtime import Engine, scenario, cascading

      spec = (scenario().processes(7).homonyms([3, 2, 2])
              .crashes(cascading(4))
              .detectors("HOmega", "HSigma", stabilization=20.0)
              .consensus("homega_hsigma").build())
      record = Engine().run(spec)          # record.metrics["decided"] …

* :mod:`repro.experiments` — the E1–E8 harness behind ``EXPERIMENTS.md``
  (``python -m repro.experiments --jobs 4``), resolved through the runtime
  registry;
* lower layers, for custom programs and direct control:
  :func:`repro.membership.grouped_identities` & friends build memberships;
  :mod:`repro.sim` builds and runs systems (``build_system`` +
  ``Simulation``); :mod:`repro.detectors` has the oracles, views, and
  property checkers; :mod:`repro.algorithms` the paper's detector
  implementations (Figures 3, 6, 7); :mod:`repro.reductions` the reductions
  and the Figure 5 relation graph; :mod:`repro.consensus` the Figure 8 and
  Figure 9 algorithms, baselines, and the consensus validator;
  :mod:`repro.workloads` and :mod:`repro.analysis` scenario generators,
  metrics, and sweep aggregation.
"""

from .identity import ANONYMOUS_IDENTITY, Identity, IdentityMultiset, ProcessId
from .membership import (
    Membership,
    anonymous_identities,
    grouped_identities,
    identities_from_multiplicities,
    random_identities,
    unique_identities,
)

__version__ = "1.0.0"

__all__ = [
    "ANONYMOUS_IDENTITY",
    "Identity",
    "IdentityMultiset",
    "Membership",
    "ProcessId",
    "anonymous_identities",
    "grouped_identities",
    "identities_from_multiplicities",
    "random_identities",
    "unique_identities",
    "__version__",
]
