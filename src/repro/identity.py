"""Process identities and identity multisets for homonymous systems.

The paper distinguishes between a *process* ``p ∈ Π`` (a formalisation tool the
algorithms never see) and its *identifier* ``id(p)`` (what the algorithms do
see).  In a homonymous system several processes may carry the same identifier,
so the natural aggregate of identifiers of a set of processes ``S`` is the
multiset ``I(S) = {id(p) : p ∈ S}``.

This module provides:

* :class:`ProcessId` — the internal, globally unique handle of a process
  (``p``).  It exists only inside the simulator and the property checkers;
  algorithm code must never read it.
* ``Identity`` — the identifier ``id(p)`` visible to algorithms.  Identifiers
  are ordinary hashable, totally ordered Python values (we use ``str`` and
  ``int`` in practice).
* :class:`IdentityMultiset` — an immutable multiset (bag) of identifiers with
  the operations the paper uses: multiplicity, inclusion (``⊆``), union,
  intersection, and sub-multiset enumeration.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Hashable, Iterable, Iterator, Mapping

__all__ = ["ProcessId", "Identity", "IdentityMultiset", "ANONYMOUS_IDENTITY"]


#: The "default identifier" ``⊥`` used when modelling anonymous systems as
#: homonymous systems in which every process carries the same identifier.
ANONYMOUS_IDENTITY: str = "⊥"  # ⊥

#: Type alias for identifiers visible to algorithms.
Identity = Hashable


class ProcessId:
    """Internal, unique handle of a process ``p ∈ Π``.

    The integer ``index`` is unique within a system.  Algorithms must not use
    it: it exists so the simulator, the failure patterns, and the property
    checkers can talk about *processes* rather than (possibly shared)
    identifiers.

    Implemented as an immutable ``__slots__`` class with hand-written
    comparisons and ``hash(p) == p.index``: process ids key every delivery
    callback lookup and sort on the simulator's hot path, where the generated
    dataclass tuple machinery measurably dominated.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        object.__setattr__(self, "index", index)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"ProcessId is immutable; cannot set {name!r}")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is ProcessId:
            return self.index == other.index
        return NotImplemented

    def __hash__(self) -> int:
        return self.index

    def __lt__(self, other: "ProcessId") -> bool:
        if other.__class__ is ProcessId:
            return self.index < other.index
        return NotImplemented

    def __le__(self, other: "ProcessId") -> bool:
        if other.__class__ is ProcessId:
            return self.index <= other.index
        return NotImplemented

    def __gt__(self, other: "ProcessId") -> bool:
        if other.__class__ is ProcessId:
            return self.index > other.index
        return NotImplemented

    def __ge__(self, other: "ProcessId") -> bool:
        if other.__class__ is ProcessId:
            return self.index >= other.index
        return NotImplemented

    def __reduce__(self):
        return (ProcessId, (self.index,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"p{self.index}"


class IdentityMultiset:
    """An immutable multiset (bag) of process identifiers.

    Instances behave like the paper's ``I(S)``: the same identifier may appear
    several times, ``|I(S)| = |S|``, and ``mult_I(i)`` gives the multiplicity
    of identifier ``i``.

    The class is hashable and totally ordered (lexicographically over the
    sorted element sequence) so multisets can be used as message payloads,
    dictionary keys, and quorum labels — exactly how Figure 7 of the paper
    uses ``mset_p`` as both the label and the value of a quorum pair.
    """

    __slots__ = ("_counts", "_size", "_hash")

    def __init__(self, items: Iterable[Identity] = ()) -> None:
        counts = Counter(items)
        # Freeze into a plain dict with deterministic ordering by element.
        self._counts: dict[Identity, int] = {
            key: counts[key] for key in sorted(counts, key=_sort_key)
        }
        self._size: int = sum(self._counts.values())
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(cls, counts: Mapping[Identity, int]) -> "IdentityMultiset":
        """Build a multiset from an ``{identity: multiplicity}`` mapping.

        Zero and negative multiplicities are rejected rather than silently
        dropped, because they almost always indicate a bookkeeping bug in the
        caller.
        """
        for identity, count in counts.items():
            if count <= 0:
                raise ValueError(
                    f"multiplicity of {identity!r} must be positive, got {count}"
                )
        expanded: list[Identity] = []
        for identity, count in counts.items():
            expanded.extend([identity] * count)
        return cls(expanded)

    @classmethod
    def singleton(cls, identity: Identity, count: int = 1) -> "IdentityMultiset":
        """Return a multiset holding ``count`` copies of ``identity``."""
        return cls.from_counts({identity: count})

    @classmethod
    def uniform(cls, identity: Identity, count: int) -> "IdentityMultiset":
        """Return ``⊥^count``-style multisets (``count`` copies of one id)."""
        if count == 0:
            return cls()
        return cls.from_counts({identity: count})

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Identity]:
        for identity, count in self._counts.items():
            for _ in range(count):
                yield identity

    def __contains__(self, identity: Identity) -> bool:
        return identity in self._counts

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IdentityMultiset):
            return self._counts == other._counts
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(self._counts.items()))
        return self._hash

    def __lt__(self, other: "IdentityMultiset") -> bool:
        if not isinstance(other, IdentityMultiset):
            return NotImplemented
        return self._ordering_key() < other._ordering_key()

    def __le__(self, other: "IdentityMultiset") -> bool:
        if not isinstance(other, IdentityMultiset):
            return NotImplemented
        return self._ordering_key() <= other._ordering_key()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(item) for item in self)
        return f"IdentityMultiset({{{inner}}})"

    def _ordering_key(self) -> tuple:
        return tuple((_sort_key(identity), count) for identity, count in self._counts.items())

    # ------------------------------------------------------------------
    # Multiset queries
    # ------------------------------------------------------------------
    @property
    def counts(self) -> Mapping[Identity, int]:
        """A read-only view of the ``{identity: multiplicity}`` mapping."""
        return dict(self._counts)

    def multiplicity(self, identity: Identity) -> int:
        """Return ``mult_I(identity)`` — 0 when the identifier is absent."""
        return self._counts.get(identity, 0)

    def support(self) -> frozenset:
        """Return the *set* of distinct identifiers appearing in the bag."""
        return frozenset(self._counts)

    def is_empty(self) -> bool:
        """Return ``True`` when the multiset has no elements."""
        return self._size == 0

    def min_identity(self) -> Identity:
        """Return the smallest identifier (used for deterministic leader choice)."""
        if not self._counts:
            raise ValueError("min_identity() on an empty multiset")
        return next(iter(self._counts))

    # ------------------------------------------------------------------
    # Multiset algebra
    # ------------------------------------------------------------------
    def issubset(self, other: "IdentityMultiset") -> bool:
        """Multiset inclusion: every element appears at least as often in ``other``."""
        return all(
            count <= other.multiplicity(identity)
            for identity, count in self._counts.items()
        )

    def issuperset(self, other: "IdentityMultiset") -> bool:
        """Multiset inclusion in the other direction."""
        return other.issubset(self)

    def union(self, other: "IdentityMultiset") -> "IdentityMultiset":
        """Element-wise maximum of multiplicities."""
        merged: dict[Identity, int] = dict(self._counts)
        for identity, count in other._counts.items():
            merged[identity] = max(merged.get(identity, 0), count)
        return IdentityMultiset.from_counts(merged) if merged else IdentityMultiset()

    def sum(self, other: "IdentityMultiset") -> "IdentityMultiset":
        """Element-wise sum of multiplicities (disjoint union)."""
        merged = Counter(dict(self._counts))
        merged.update(dict(other._counts))
        return IdentityMultiset.from_counts(merged) if merged else IdentityMultiset()

    def intersection(self, other: "IdentityMultiset") -> "IdentityMultiset":
        """Element-wise minimum of multiplicities."""
        merged: dict[Identity, int] = {}
        for identity, count in self._counts.items():
            shared = min(count, other.multiplicity(identity))
            if shared > 0:
                merged[identity] = shared
        return IdentityMultiset.from_counts(merged) if merged else IdentityMultiset()

    def difference(self, other: "IdentityMultiset") -> "IdentityMultiset":
        """Element-wise truncated subtraction of multiplicities."""
        merged: dict[Identity, int] = {}
        for identity, count in self._counts.items():
            remaining = count - other.multiplicity(identity)
            if remaining > 0:
                merged[identity] = remaining
        return IdentityMultiset.from_counts(merged) if merged else IdentityMultiset()

    def add(self, identity: Identity, count: int = 1) -> "IdentityMultiset":
        """Return a new multiset with ``count`` extra copies of ``identity``."""
        if count <= 0:
            raise ValueError("count must be positive")
        return self.sum(IdentityMultiset.uniform(identity, count))

    def intersects(self, other: "IdentityMultiset") -> bool:
        """Return ``True`` when the two bags share at least one identifier."""
        smaller, larger = (self, other) if len(self._counts) <= len(other._counts) else (other, self)
        return any(identity in larger for identity in smaller._counts)

    # ------------------------------------------------------------------
    # Enumeration helpers used by the Σ→HΣ transformations and tests
    # ------------------------------------------------------------------
    def sub_multisets(self, *, nonempty: bool = True) -> Iterator["IdentityMultiset"]:
        """Yield every sub-multiset of this bag.

        The number of sub-multisets is ``∏(mult_i + 1)``; callers are expected
        to use this only for the small systems exercised in tests and in the
        Figure 1/2 label construction (``{s : s ⊆ I(Π) ∧ id(p) ∈ s}``).
        """
        identities = list(self._counts)
        ranges = [range(self._counts[identity] + 1) for identity in identities]
        for combo in itertools.product(*ranges):
            if nonempty and not any(combo):
                continue
            counts = {
                identity: count
                for identity, count in zip(identities, combo)
                if count > 0
            }
            yield IdentityMultiset.from_counts(counts) if counts else IdentityMultiset()

    def sub_multisets_containing(self, identity: Identity) -> Iterator["IdentityMultiset"]:
        """Yield the sub-multisets that contain at least one copy of ``identity``.

        This is exactly the label family ``{s : (s ⊆ I) ∧ (id(p) ∈ s)}`` used
        by the Σ → HΣ transformations (Figures 1 and 2 of the paper).
        """
        for subset in self.sub_multisets(nonempty=True):
            if identity in subset:
                yield subset


def _sort_key(identity: Identity) -> tuple[str, str]:
    """Total order over heterogeneous identifiers (sort by type name, then repr)."""
    return (type(identity).__name__, repr(identity))
