"""Adaptive seed allocation: waves, confidence intervals, early stopping.

A fixed sweep grid spends the same number of seeds on every cell, which at
paper scale means most of the budget is burned on cells whose statistic
settled after a handful of runs.  This module runs seeds in *waves* instead:

1. every cell gets ``initial_wave`` seeds;
2. after each wave the target metric's confidence interval is computed per
   cell — a normal approximation (``mean ± z·s/√n``) once there are enough
   samples, a seeded bootstrap percentile interval as the small-``n``
   fallback;
3. a cell whose CI half-width drops below the threshold (absolute, relative,
   or both) is **retired** — it receives no further seeds;
4. the remaining budget flows to the still-active cells, noisiest first,
   until every cell converges or the budget/``max_seeds_per_cell`` is hit.

Determinism: cell ``i``'s ``k``-th seed is always
``base_seed + i·max_seeds_per_cell + k`` — independent of the order cells
converge in — so two adaptive runs with the same inputs execute the same
seeds, produce identical rows, and the per-run outcomes are ordinary cache
hits for any fixed sweep (or fabric run) that covered the same cells.

Dispatch goes through a normal :class:`~repro.runtime.engine.Engine`, so a
wave fans out across the warm pool (``Engine(jobs=N)``) or is served from a
:class:`~repro.runtime.cache.RunCache` like any other sweep.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import ReproError
from ..runtime.engine import Engine

__all__ = ["AdaptiveError", "CellStats", "AdaptiveReport", "adaptive_sweep", "confidence_interval"]

#: Sample size at or above which the normal approximation is trusted;
#: below it the bootstrap percentile interval is used instead.
NORMAL_MIN_SAMPLES = 8

#: Bootstrap resamples for the small-n fallback.
BOOTSTRAP_RESAMPLES = 400


class AdaptiveError(ReproError):
    """The adaptive sweep was configured or measured inconsistently."""


def confidence_interval(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    method: str = "auto",
    seed: int = 0,
) -> tuple[float, float]:
    """``(mean, half_width)`` of a CI on the mean of ``values``.

    ``method`` is ``"normal"`` (``mean ± z·s/√n``), ``"bootstrap"`` (seeded
    percentile interval over :data:`BOOTSTRAP_RESAMPLES` resampled means —
    makes no normality assumption, so it is the fallback while ``n`` is too
    small to lean on the CLT), or ``"auto"`` (normal from
    :data:`NORMAL_MIN_SAMPLES` samples, bootstrap below).  Fewer than two
    values have no spread estimate: the half-width is infinite.
    """
    if not 0.0 < confidence < 1.0:
        raise AdaptiveError(f"confidence must be in (0, 1), got {confidence}")
    if method not in ("auto", "normal", "bootstrap"):
        raise AdaptiveError(f"unknown CI method {method!r}")
    values = [float(value) for value in values]
    if not values:
        return math.nan, math.inf
    mean = statistics.fmean(values)
    if len(values) < 2:
        return mean, math.inf
    if method == "auto":
        method = "normal" if len(values) >= NORMAL_MIN_SAMPLES else "bootstrap"
    if method == "normal":
        z = statistics.NormalDist().inv_cdf(0.5 + confidence / 2.0)
        return mean, z * statistics.stdev(values) / math.sqrt(len(values))
    rng = random.Random(seed)
    resampled = sorted(
        statistics.fmean(rng.choices(values, k=len(values)))
        for _ in range(BOOTSTRAP_RESAMPLES)
    )
    alpha = (1.0 - confidence) / 2.0
    low = resampled[int(alpha * (len(resampled) - 1))]
    high = resampled[int((1.0 - alpha) * (len(resampled) - 1))]
    # Centre the interval on the sample mean; report the half-spread.
    return mean, max(high - mean, mean - low, 0.0)


@dataclass
class CellStats:
    """One sweep cell's running state and final statistics."""

    cell: dict
    index: int
    rows: list[dict] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    seeds_used: int = 0
    mean: float = math.nan
    median: float = math.nan
    half_width: float = math.inf
    converged: bool = False

    def refresh(self, *, confidence: float, ci_seed: int) -> None:
        if self.values:
            self.mean, self.half_width = confidence_interval(
                self.values, confidence=confidence, seed=ci_seed
            )
            self.median = statistics.median(self.values)


@dataclass
class AdaptiveReport:
    """The outcome of one adaptive sweep."""

    cells: list[CellStats]
    metric: str
    total_runs: int
    fixed_grid_runs: int
    budget: int

    @property
    def all_converged(self) -> bool:
        return all(cell.converged for cell in self.cells)

    @property
    def runs_saved(self) -> int:
        """How many runs the fixed grid would have spent on top of these."""
        return self.fixed_grid_runs - self.total_runs

    @property
    def rows(self) -> list[dict]:
        return [row for cell in self.cells for row in cell.rows]

    def summary(self) -> dict:
        return {
            "metric": self.metric,
            "cells": len(self.cells),
            "total_runs": self.total_runs,
            "fixed_grid_runs": self.fixed_grid_runs,
            "runs_saved": self.runs_saved,
            "all_converged": self.all_converged,
            "max_half_width": max(cell.half_width for cell in self.cells),
        }


def adaptive_sweep(
    run_one: Callable[[dict], Mapping[str, Any]],
    cells: Iterable[Mapping[str, Any]],
    *,
    metric: str,
    engine: Engine | None = None,
    base_seed: int = 0,
    initial_wave: int = 3,
    wave: int = 2,
    max_seeds_per_cell: int = 32,
    budget: int | None = None,
    abs_tol: float | None = None,
    rel_tol: float | None = None,
    confidence: float = 0.95,
) -> AdaptiveReport:
    """Run ``run_one`` over the cells with CI-based early stopping.

    ``cells`` are seedless config dicts (the grid axes); ``run_one`` is a
    module-level function as for :meth:`Engine.sweep`, receiving each cell's
    config with ``seed`` filled in.  A cell converges when its half-width is
    ``≤ abs_tol`` and/or ``≤ rel_tol·|mean|`` (whichever are given; at least
    one is required).  ``budget`` caps total runs across all cells (default:
    the fixed grid's ``cells × max_seeds_per_cell``, i.e. no extra cap).
    """
    if abs_tol is None and rel_tol is None:
        raise AdaptiveError("need abs_tol and/or rel_tol to define convergence")
    if initial_wave < 2:
        raise AdaptiveError(f"initial_wave must be at least 2, got {initial_wave}")
    if wave < 1:
        raise AdaptiveError(f"wave must be at least 1, got {wave}")
    cell_list = [dict(cell) for cell in cells]
    if not cell_list:
        raise AdaptiveError("no cells to sweep")
    if any("seed" in cell for cell in cell_list):
        raise AdaptiveError("cells must not carry 'seed'; seeds are allocated here")
    if max_seeds_per_cell < initial_wave:
        raise AdaptiveError("max_seeds_per_cell must cover the initial wave")
    fixed_grid_runs = len(cell_list) * max_seeds_per_cell
    if budget is None:
        budget = fixed_grid_runs
    engine = engine or Engine()

    stats = [CellStats(cell=cell, index=index) for index, cell in enumerate(cell_list)]
    total_runs = 0

    def is_converged(cell: CellStats) -> bool:
        if not math.isfinite(cell.half_width):
            return False
        ok = True
        if abs_tol is not None:
            ok = ok and cell.half_width <= abs_tol
        if rel_tol is not None:
            ok = ok and cell.half_width <= rel_tol * abs(cell.mean)
        return ok

    def run_wave(allocation: list[tuple[CellStats, int]]) -> None:
        """Execute ``count`` new seeds for each allocated cell, one dispatch."""
        nonlocal total_runs
        configs = []
        owners = []
        for cell, count in allocation:
            for _ in range(count):
                seed = base_seed + cell.index * max_seeds_per_cell + cell.seeds_used
                configs.append({**cell.cell, "seed": seed})
                owners.append(cell)
                cell.seeds_used += 1
        rows = engine.sweep(run_one, configs)
        total_runs += len(configs)
        for cell, row in zip(owners, rows):
            value = row.get(metric)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise AdaptiveError(
                    f"metric {metric!r} is missing or non-numeric in row for "
                    f"cell {cell.cell} (got {value!r})"
                )
            cell.rows.append(row)
            cell.values.append(float(value))
        for cell, _ in allocation:
            cell.refresh(confidence=confidence, ci_seed=base_seed + cell.index)
            cell.converged = is_converged(cell)

    # Wave 0: every cell gets the initial sample (bounded by the budget).
    first = []
    for cell in stats:
        count = min(initial_wave, budget - total_runs - sum(c for _, c in first))
        if count > 0:
            first.append((cell, count))
    run_wave(first)

    # Subsequent waves: noisiest cells first, until convergence or exhaustion.
    while total_runs < budget:
        active = [
            cell
            for cell in stats
            if not cell.converged and cell.seeds_used < max_seeds_per_cell
        ]
        if not active:
            break
        active.sort(key=lambda cell: (-cell.half_width, cell.index))
        allocation = []
        remaining = budget - total_runs
        for cell in active:
            count = min(wave, max_seeds_per_cell - cell.seeds_used, remaining)
            if count <= 0:
                break
            allocation.append((cell, count))
            remaining -= count
        if not allocation:
            break
        run_wave(allocation)

    return AdaptiveReport(
        cells=stats,
        metric=metric,
        total_runs=total_runs,
        fixed_grid_runs=fixed_grid_runs,
        budget=budget,
    )
