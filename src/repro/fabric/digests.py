"""Folding per-run determinism digests into manifest digests.

One simulation run yields one 64-bit digest (see
:attr:`repro.sim.events.EventQueue.digest`).  A *manifest* folds an ordered
sequence of them into a single 64-bit fingerprint with an FNV-style
multiply-xor, so "these two sweeps dispatched exactly the same events, run
for run, in the same order" is one string comparison.  The fold is order
sensitive on purpose: input order is part of what the fabric guarantees.

These helpers are the single source of truth for the fold —
``benchmarks/digest_manifest.py`` (the serial / warm-pool / cold-pool gate)
and the fabric's sharded digest verification both import them, which is what
makes "sharded == serial" checkable as manifest equality.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["CORE_EXPERIMENTS", "fold_digests", "fold_named"]

_DIGEST_MASK = 0xFFFFFFFFFFFFFFFF
_FNV_PRIME = 1099511628211

#: The experiments folded into the historical ``ALL`` manifest digest.
#: Frozen at E1–E9: manifests saved before the KV workload landed must keep
#: matching, so newer experiments fold into ``FULL`` instead of moving
#: ``ALL``.
CORE_EXPERIMENTS = tuple(f"E{i}" for i in range(1, 10))


def fold_digests(digests: Iterable[int]) -> int:
    """Fold an ordered sequence of 64-bit digests into one."""
    folded = 0
    for digest in digests:
        folded = ((folded * _FNV_PRIME) ^ digest) & _DIGEST_MASK
    return folded


def fold_named(manifest: Mapping[str, str], names: Iterable[str]) -> str:
    """Fold the hex digests of ``names`` (sorted) from a manifest mapping."""
    return f"{fold_digests(int(manifest[name], 16) for name in sorted(names)):016x}"
