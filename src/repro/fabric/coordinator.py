"""The fabric coordinator: fan chunks out, journal results, merge in order.

The coordinator owns a *state directory*::

    state/
      plan.json                   # the frozen plan this state belongs to
      shards/run00-chunk0003.jsonl   # one journal line per finished item
      merged.jsonl                # final output, in global input order

and drives worker subprocesses (``python -m repro.fabric worker``) through
the :mod:`~repro.fabric.protocol`.  Every ``result`` frame is appended to the
chunk's shard journal *the moment it arrives* — the journal, not worker
memory, is the source of truth — so at any instant the state directory holds
every completed item.

**Crash story.**  A worker dying (EOF on its pipe, or an ``error`` frame)
requeues only its chunk's *unfinished* items, up to ``max_retries`` per
chunk, and a replacement worker is spawned.  The coordinator itself dying is
handled by construction: a restarted coordinator re-reads the plan, loads
every journaled result whose ``(index, key)`` still matches, and dispatches
only what is missing — resume is just "run again with the same state dir".
Items already in the shared :class:`~repro.runtime.cache.RunCache` are
likewise served without re-execution (workers consult it per item).

**Determinism.**  Results are merged by global item index, never by
completion order, so the merged JSONL — and the digest fold — is identical
for 1 worker or 40, first run or third resume, which is what the manifest
gate (``digest_manifest.py --fabric``) checks mechanically.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import repro

from ..errors import ReproError
from ..runtime.cache import RunCache
from . import protocol
from .digests import CORE_EXPERIMENTS, fold_digests, fold_named
from .plan import FabricPlan, WorkItem
from .work import ItemResult

__all__ = ["FabricError", "SimulatedCrash", "FabricResult", "Coordinator"]

#: Chunks dispatched per worker (load-balance granularity), mirroring the
#: executors' DEFAULT_CHUNK_MULTIPLIER.
DEFAULT_CHUNK_MULTIPLIER = 4


class FabricError(ReproError):
    """The fabric could not complete the plan (retries exhausted, bad state)."""


class SimulatedCrash(FabricError):
    """Raised by ``crash_after_chunks`` to rehearse coordinator death.

    The state directory is left exactly as a real mid-run SIGKILL would leave
    it (journals flushed, no merged output), which is what the resume smoke
    test relies on.
    """


@dataclass
class FabricResult:
    """A completed fabric run: ordered rows, digests, and provenance counts."""

    plan: FabricPlan
    results: list[ItemResult]
    stats: dict = field(default_factory=dict)
    merged_path: Path | None = None

    @property
    def rows(self) -> list[dict]:
        return [dict(result.row) for result in self.results]

    @property
    def digests_complete(self) -> bool:
        """Whether every item's digest record survived (see work.py)."""
        return all(result.digests_complete for result in self.results)

    def experiment_digests(self) -> dict[str, str]:
        """Per-experiment folded digests, in the serial capture order."""
        spans = self.plan.experiment_spans()
        return {
            name: f"{fold_digests(d for r in self.results[start:end] for d in r.digests):016x}"
            for name, (start, end) in spans.items()
        }

    def manifest(self) -> dict[str, str]:
        """A digest manifest shaped like ``benchmarks/digest_manifest.py``'s.

        ``ALL`` folds whichever of the frozen E1–E9 core was planned; ``FULL``
        folds every planned experiment — so a full-plan fabric manifest is
        directly comparable to a saved serial manifest.
        """
        manifest = self.experiment_digests()
        names = list(manifest)
        manifest["ALL"] = fold_named(manifest, [n for n in names if n in CORE_EXPERIMENTS])
        manifest["FULL"] = fold_named(manifest, names)
        return manifest


class _Worker:
    """One worker subprocess plus the thread draining its result stream."""

    def __init__(self, number: int, command: list[str], events: "queue.Queue") -> None:
        self.number = number
        self.chunk: "_Chunk | None" = None
        env = dict(os.environ)
        # Make the library importable in the worker no matter how the
        # coordinator itself was launched (installed, PYTHONPATH=src, tests).
        library_root = str(Path(repro.__file__).resolve().parent.parent)
        paths = env.get("PYTHONPATH", "")
        if library_root not in paths.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{library_root}{os.pathsep}{paths}" if paths else library_root
            )
        self.process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # workers share the coordinator's stderr
            env=env,
        )
        self._reader = threading.Thread(
            target=self._drain, args=(events,), daemon=True
        )
        self._reader.start()

    def _drain(self, events: "queue.Queue") -> None:
        try:
            while True:
                message = protocol.read_message(self.process.stdout)
                if message is None:
                    break
                events.put((self.number, message))
        except Exception as error:  # torn frame on kill — report as death
            events.put((self.number, {"type": protocol.ERROR, "error": str(error)}))
        events.put((self.number, None))

    def send(self, type: str, **fields: Any) -> bool:
        try:
            protocol.write_message(self.process.stdin, type, **fields)
            return True
        except (BrokenPipeError, OSError):
            return False

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)

    def reap(self) -> None:
        for stream in (self.process.stdin, self.process.stdout):
            try:
                stream.close()
            except OSError:
                pass
        self.process.wait()
        self._reader.join(timeout=5)


@dataclass
class _Chunk:
    number: int
    items: list[WorkItem]
    retries: int = 0

    @property
    def label(self) -> str:
        first, last = self.items[0], self.items[-1]
        return f"chunk {self.number} (items {first.index}..{last.index})"


class Coordinator:
    """Execute a :class:`FabricPlan` across worker subprocesses; see module doc."""

    def __init__(
        self,
        plan: FabricPlan | None = None,
        *,
        state_dir: str | os.PathLike,
        workers: int = 2,
        cache: RunCache | str | None = None,
        max_retries: int = 2,
        chunk_multiplier: int = DEFAULT_CHUNK_MULTIPLIER,
        python: str = sys.executable,
        chaos_kill_worker_after: int | None = None,
        crash_after_chunks: int | None = None,
    ) -> None:
        if workers < 1:
            raise FabricError(f"workers must be at least 1, got {workers}")
        self.state_dir = Path(state_dir)
        self.workers = workers
        self.cache = RunCache.coerce(cache)
        self.max_retries = max_retries
        self.chunk_multiplier = chunk_multiplier
        self.python = python
        self.chaos_kill_worker_after = chaos_kill_worker_after
        self.crash_after_chunks = crash_after_chunks
        self.plan = self._adopt_plan(plan)

    # -- state-directory handling --------------------------------------
    def _adopt_plan(self, plan: FabricPlan | None) -> FabricPlan:
        """Freeze the plan into the state dir, or load/verify the frozen one.

        A state directory belongs to exactly one plan: resuming with a
        different plan would merge unrelated results, so a mismatch is an
        error, not a silent overwrite.
        """
        plan_path = self.state_dir / "plan.json"
        if plan_path.exists():
            frozen = FabricPlan.read(plan_path)
            if plan is not None and plan.to_dict() != frozen.to_dict():
                raise FabricError(
                    f"state dir {self.state_dir} holds a different plan "
                    f"({len(frozen)} items, experiments {frozen.experiments}); "
                    "use a fresh directory or resume without passing a plan"
                )
            return frozen
        if plan is None:
            raise FabricError(f"no plan given and none frozen in {self.state_dir}")
        self.state_dir.mkdir(parents=True, exist_ok=True)
        plan.write(plan_path)
        return plan

    @property
    def shards_dir(self) -> Path:
        return self.state_dir / "shards"

    def _load_journaled(self) -> dict[int, ItemResult]:
        """Every journaled result whose ``(index, key)`` still matches the plan.

        Torn tails (a line cut short by a crash mid-append) and foreign lines
        are skipped: a journal line is either a complete, verifiable result or
        it does not exist.
        """
        have: dict[int, ItemResult] = {}
        items = self.plan.items
        for shard_path in sorted(self.shards_dir.glob("*.jsonl")):
            with open(shard_path, encoding="utf-8") as handle:
                for line in handle:
                    try:
                        payload = json.loads(line)
                        result = ItemResult.from_dict(payload)
                    except (ValueError, KeyError, TypeError):
                        continue
                    if 0 <= result.index < len(items) and items[result.index].key == result.key:
                        have[result.index] = result
        return have

    # -- the run -------------------------------------------------------
    def run(self, merged_path: str | os.PathLike | None = None) -> FabricResult:
        """Complete the plan (dispatch, retry, resume) and merge the output."""
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        have = self._load_journaled()
        resumed = len(have)
        pending = [item for item in self.plan.items if item.index not in have]
        stats = {
            "items": len(self.plan.items),
            "from_journal": resumed,
            "dispatched": len(pending),
            "worker_deaths": 0,
            "requeued_chunks": 0,
        }
        if pending:
            run_id = sum(1 for _ in self.shards_dir.glob("run*-chunk*.jsonl"))
            self._dispatch(pending, have, stats, run_prefix=f"run{run_id:02d}")
        missing = [item.index for item in self.plan.items if item.index not in have]
        if missing:
            raise FabricError(f"fabric run finished with {len(missing)} missing items")
        results = [have[item.index] for item in self.plan.items]
        for source in ("fresh", "run-cache", "fabric-cache"):
            stats[source.replace("-", "_")] = sum(
                1 for result in results if result.source == source
            )
        merged = Path(merged_path) if merged_path else self.state_dir / "merged.jsonl"
        with open(merged, "w", encoding="utf-8") as handle:
            for result in results:
                handle.write(json.dumps(result.row, sort_keys=True, default=str) + "\n")
        return FabricResult(
            plan=self.plan, results=results, stats=stats, merged_path=merged
        )

    def _worker_command(self) -> list[str]:
        command = [self.python, "-m", "repro.fabric", "worker"]
        if self.cache is not None:
            command += ["--cache", str(self.cache.root)]
        return command

    def _dispatch(
        self,
        pending: list[WorkItem],
        have: dict[int, ItemResult],
        stats: dict,
        *,
        run_prefix: str,
    ) -> None:
        chunk_count = min(len(pending), self.workers * self.chunk_multiplier)
        sliced = FabricPlan(items=pending).chunk(chunk_count)
        todo: "queue.Queue[_Chunk]" = queue.Queue()
        for number, items in enumerate(sliced):
            todo.put(_Chunk(number=number, items=items))
        outstanding = len(sliced)
        completed_chunks = 0
        results_seen = 0
        chaos_armed = self.chaos_kill_worker_after is not None
        events: "queue.Queue[tuple[int, dict | None]]" = queue.Queue()
        command = self._worker_command()
        fleet: dict[int, _Worker] = {}
        next_number = 0

        def spawn() -> None:
            nonlocal next_number
            worker = _Worker(next_number, command, events)
            fleet[next_number] = worker
            next_number += 1

        def assign(worker: _Worker) -> None:
            try:
                chunk = todo.get_nowait()
            except queue.Empty:
                return
            worker.chunk = chunk
            if not worker.send(
                protocol.CHUNK,
                chunk=chunk.number,
                items=[item.to_dict() for item in chunk.items],
            ):
                # Dead before the first frame: the reader thread will deliver
                # the EOF event, which requeues the chunk through _on_death.
                pass

        def journal_path(chunk: _Chunk) -> Path:
            return self.shards_dir / f"{run_prefix}-chunk{chunk.number:04d}.jsonl"

        def on_death(worker: _Worker) -> None:
            nonlocal outstanding
            stats["worker_deaths"] += 1
            chunk = worker.chunk
            worker.chunk = None
            worker.kill()
            worker.reap()
            fleet.pop(worker.number, None)
            if chunk is not None:
                remainder = [item for item in chunk.items if item.index not in have]
                if not remainder:
                    outstanding -= 1
                else:
                    if chunk.retries >= self.max_retries:
                        raise FabricError(
                            f"{chunk.label} failed {chunk.retries + 1} times; "
                            f"first unfinished item: {remainder[0].label}"
                        )
                    stats["requeued_chunks"] += 1
                    todo.put(
                        _Chunk(
                            number=chunk.number,
                            items=remainder,
                            retries=chunk.retries + 1,
                        )
                    )
            if outstanding:
                spawn()

        try:
            for _ in range(min(self.workers, outstanding)):
                spawn()
            # Dispatch loop: every event is a worker message or a death (None).
            while outstanding:
                number, message = events.get()
                worker = fleet.get(number)
                if worker is None:
                    continue  # stale event from an already-reaped worker
                if message is None or message["type"] == protocol.ERROR:
                    if message is not None:
                        print(
                            f"fabric: worker {number} failed: "
                            f"{message.get('error', 'unknown error')}",
                            file=sys.stderr,
                        )
                    on_death(worker)
                    continue
                if message["type"] == protocol.HELLO:
                    assign(worker)
                elif message["type"] == protocol.RESULT:
                    result = ItemResult.from_dict(message["result"])
                    if worker.chunk is not None:
                        with open(journal_path(worker.chunk), "a", encoding="utf-8") as handle:
                            handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
                            handle.flush()
                    have[result.index] = result
                    results_seen += 1
                    if (
                        chaos_armed
                        and results_seen >= self.chaos_kill_worker_after
                        and fleet
                    ):
                        chaos_armed = False
                        victim = fleet[min(fleet)]
                        print(
                            f"fabric: chaos-killing worker {victim.number} "
                            f"after {results_seen} results",
                            file=sys.stderr,
                        )
                        victim.kill()
                elif message["type"] == protocol.CHUNK_DONE:
                    worker.chunk = None
                    outstanding -= 1
                    completed_chunks += 1
                    if (
                        self.crash_after_chunks is not None
                        and completed_chunks >= self.crash_after_chunks
                        and outstanding
                    ):
                        raise SimulatedCrash(
                            f"simulated coordinator crash after "
                            f"{completed_chunks} chunks ({outstanding} left)"
                        )
                    assign(worker)
        finally:
            for worker in list(fleet.values()):
                worker.send(protocol.SHUTDOWN)
            for worker in list(fleet.values()):
                if worker.chunk is not None:
                    worker.kill()  # busy worker won't read the shutdown frame
                worker.reap()


def run_plan(
    plan: FabricPlan | None,
    *,
    state_dir: str | os.PathLike,
    workers: int = 2,
    cache: RunCache | str | None = None,
    **kwargs: Any,
) -> FabricResult:
    """One-call convenience: coordinate ``plan`` to completion."""
    return Coordinator(
        plan, state_dir=state_dir, workers=workers, cache=cache, **kwargs
    ).run()
