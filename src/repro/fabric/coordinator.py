"""The fabric coordinator: fan chunks out, journal results, merge in order.

The coordinator owns a *state directory*::

    state/
      plan.json                   # the frozen plan this state belongs to
      shards/run00-chunk0003.jsonl   # one journal line per finished item
      merged.jsonl                # final output, in global input order
      partial.json                # only after a degraded run: what is missing

and drives worker subprocesses (``python -m repro.fabric worker``) through
the :mod:`~repro.fabric.protocol`.  Every ``result`` frame is appended to the
chunk's shard journal *the moment it arrives* — the journal, not worker
memory, is the source of truth — so at any instant the state directory holds
every completed item.

**Crash story.**  A worker dying (EOF on its pipe, or an ``error`` frame)
requeues only its chunk's *unfinished* items, up to ``max_retries`` per
chunk, and a replacement worker is spawned — with decorrelated-jitter backoff
between consecutive deaths, so a crash-looping environment is not hammered.
A worker that stops making progress (SIGSTOP, a hung simulation, a dead NFS
mount) is detected by the per-chunk ``progress_timeout`` and killed like any
other death: a stalled worker can slow a run down, never hang it.  The
coordinator itself dying is handled by construction: a restarted coordinator
re-reads the plan, loads every journaled result whose ``(index, key)`` still
matches, and dispatches only what is missing — resume is just "run again with
the same state dir".  Items already in the shared
:class:`~repro.runtime.cache.RunCache` are likewise served without
re-execution (workers consult it per item).

**Graceful degradation.**  A chunk that exhausts its retries is *bisected*:
its unfinished half-chunks re-enter the queue with a fresh retry budget, so
one poison item (a config that reliably kills its worker) is isolated in
O(log chunk-size) rounds instead of sinking its whole chunk.  A poison item
that fails alone is **quarantined**: the run completes without it, the exact
missing indices land in ``partial.json`` (with the full per-attempt failure
history), and ``run()`` either raises a :class:`FabricError` naming them
(default) or — with ``allow_partial=True`` — returns the explicit partial
merge.  Re-running with the same state dir retries quarantined items with a
fresh budget.  Missing items *not* accounted for by quarantine are still a
hard error: silence is never an outcome.

**Determinism.**  Results are merged by global item index, never by
completion order, so the merged JSONL — and the digest fold — is identical
for 1 worker or 40, first run or third resume, which is what the manifest
gate (``digest_manifest.py --fabric``) checks mechanically.
"""

from __future__ import annotations

import json
import os
import queue
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import repro

from ..errors import ReproError
from ..retry import RetryPolicy
from ..runtime.cache import RunCache
from . import protocol
from .digests import CORE_EXPERIMENTS, fold_digests, fold_named
from .plan import FabricPlan, WorkItem
from .work import ItemResult

__all__ = ["FabricError", "SimulatedCrash", "FabricResult", "Coordinator"]

#: Chunks dispatched per worker (load-balance granularity), mirroring the
#: executors' DEFAULT_CHUNK_MULTIPLIER.
DEFAULT_CHUNK_MULTIPLIER = 4

#: Default per-worker progress deadline (seconds without a journaled result,
#: a HELLO, or a CHUNK_DONE before the worker is declared stalled and
#: killed).  Generous — a single quick-mode item takes well under a second —
#: but finite, so a SIGSTOP'd or hung worker delays a run instead of hanging
#: it.  Tests and chaos campaigns pass something much smaller.
DEFAULT_PROGRESS_TIMEOUT = 120.0

#: Backoff between a worker death and its replacement's spawn.  Healthy runs
#: never consecutive-die, so the first respawn is near-instant; a
#: crash-looping fleet (bad interpreter, OOM killer) backs off toward the cap
#: instead of fork-bombing the host.  The delays iterator is reset whenever
#: any result arrives (= the fabric is making progress again).
RESPAWN_RETRY = RetryPolicy(base=0.05, cap=2.0, max_attempts=1_000_000)


class FabricError(ReproError):
    """The fabric could not complete the plan (retries exhausted, bad state)."""


class SimulatedCrash(FabricError):
    """Raised by ``crash_after_chunks`` to rehearse coordinator death.

    The state directory is left exactly as a real mid-run SIGKILL would leave
    it (journals flushed, no merged output), which is what the resume smoke
    test relies on.
    """


@dataclass
class FabricResult:
    """A completed fabric run: ordered rows, digests, and provenance counts.

    ``quarantined`` is empty for a full run; for a partial run it maps each
    missing global index to its quarantine record (label, attempts, the
    per-attempt failure history) — the same content as ``partial.json``.
    """

    plan: FabricPlan
    results: list[ItemResult]
    stats: dict = field(default_factory=dict)
    merged_path: Path | None = None
    quarantined: dict[int, dict] = field(default_factory=dict)

    @property
    def rows(self) -> list[dict]:
        return [dict(result.row) for result in self.results]

    @property
    def partial(self) -> bool:
        return bool(self.quarantined)

    @property
    def digests_complete(self) -> bool:
        """Whether every item's digest record survived (see work.py)."""
        return not self.quarantined and all(
            result.digests_complete for result in self.results
        )

    def experiment_digests(self) -> dict[str, str]:
        """Per-experiment folded digests, in the serial capture order.

        On a partial run, experiments with quarantined items are omitted —
        a digest folded over a hole would be silently wrong.
        """
        spans = self.plan.experiment_spans()
        by_index = {result.index: result for result in self.results}
        digests = {}
        for name, (start, end) in spans.items():
            if all(index in by_index for index in range(start, end)):
                folded = fold_digests(
                    digest
                    for index in range(start, end)
                    for digest in by_index[index].digests
                )
                digests[name] = f"{folded:016x}"
        return digests

    def manifest(self) -> dict[str, str]:
        """A digest manifest shaped like ``benchmarks/digest_manifest.py``'s.

        ``ALL`` folds whichever of the frozen E1–E9 core was planned; ``FULL``
        folds every planned experiment — so a full-plan fabric manifest is
        directly comparable to a saved serial manifest.
        """
        manifest = self.experiment_digests()
        names = list(manifest)
        manifest["ALL"] = fold_named(manifest, [n for n in names if n in CORE_EXPERIMENTS])
        manifest["FULL"] = fold_named(manifest, names)
        return manifest


class _Worker:
    """One worker subprocess plus the thread draining its result stream."""

    def __init__(self, number: int, command: list[str], events: "queue.Queue") -> None:
        self.number = number
        self.chunk: "_Chunk | None" = None
        self.greeted = False  # has it sent HELLO yet?
        self.last_progress = time.monotonic()
        self.fail_cause: str | None = None  # set before a deliberate kill
        env = dict(os.environ)
        # Make the library importable in the worker no matter how the
        # coordinator itself was launched (installed, PYTHONPATH=src, tests).
        library_root = str(Path(repro.__file__).resolve().parent.parent)
        paths = env.get("PYTHONPATH", "")
        if library_root not in paths.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{library_root}{os.pathsep}{paths}" if paths else library_root
            )
        self.process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # workers share the coordinator's stderr
            env=env,
        )
        self._reader = threading.Thread(
            target=self._drain, args=(events,), daemon=True
        )
        self._reader.start()

    def _drain(self, events: "queue.Queue") -> None:
        try:
            while True:
                message = protocol.read_message(self.process.stdout)
                if message is None:
                    break
                events.put((self.number, message))
        except Exception as error:  # torn frame on kill — report as death
            events.put((self.number, {"type": protocol.ERROR, "error": str(error)}))
        events.put((self.number, None))

    def send(self, type: str, **fields: Any) -> bool:
        try:
            protocol.write_message(self.process.stdin, type, **fields)
            return True
        except (BrokenPipeError, OSError):
            return False

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)

    def reap(self) -> None:
        for stream in (self.process.stdin, self.process.stdout):
            try:
                stream.close()
            except OSError:
                pass
        self.process.wait()
        self._reader.join(timeout=5)


@dataclass
class _Chunk:
    number: int
    items: list[WorkItem]
    retries: int = 0
    #: One line per failed attempt across this chunk's whole lineage
    #: (bisected halves inherit a copy) — surfaces in quarantine records.
    history: list[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        first, last = self.items[0], self.items[-1]
        return f"chunk {self.number} (items {first.index}..{last.index})"


class Coordinator:
    """Execute a :class:`FabricPlan` across worker subprocesses; see module doc."""

    def __init__(
        self,
        plan: FabricPlan | None = None,
        *,
        state_dir: str | os.PathLike,
        workers: int = 2,
        cache: RunCache | str | None = None,
        max_retries: int = 2,
        chunk_multiplier: int = DEFAULT_CHUNK_MULTIPLIER,
        python: str = sys.executable,
        progress_timeout: float | None = DEFAULT_PROGRESS_TIMEOUT,
        allow_partial: bool = False,
        chaos_kill_worker_after: int | None = None,
        chaos_stall_worker_after: int | None = None,
        crash_after_chunks: int | None = None,
    ) -> None:
        if workers < 1:
            raise FabricError(f"workers must be at least 1, got {workers}")
        if progress_timeout is not None and progress_timeout <= 0:
            raise FabricError(
                f"progress_timeout must be positive (or None to disable stall "
                f"detection), got {progress_timeout}"
            )
        self.state_dir = Path(state_dir)
        self.workers = workers
        self.cache = RunCache.coerce(cache)
        self.max_retries = max_retries
        self.chunk_multiplier = chunk_multiplier
        self.python = python
        self.progress_timeout = progress_timeout
        self.allow_partial = allow_partial
        self.chaos_kill_worker_after = chaos_kill_worker_after
        self.chaos_stall_worker_after = chaos_stall_worker_after
        self.crash_after_chunks = crash_after_chunks
        self.plan = self._adopt_plan(plan)

    # -- state-directory handling --------------------------------------
    def _adopt_plan(self, plan: FabricPlan | None) -> FabricPlan:
        """Freeze the plan into the state dir, or load/verify the frozen one.

        A state directory belongs to exactly one plan: resuming with a
        different plan would merge unrelated results, so a mismatch is an
        error, not a silent overwrite.
        """
        plan_path = self.state_dir / "plan.json"
        if plan_path.exists():
            frozen = FabricPlan.read(plan_path)
            if plan is not None and plan.to_dict() != frozen.to_dict():
                raise FabricError(
                    f"state dir {self.state_dir} holds a different plan "
                    f"({len(frozen)} items, experiments {frozen.experiments}); "
                    "use a fresh directory or resume without passing a plan"
                )
            return frozen
        if plan is None:
            raise FabricError(f"no plan given and none frozen in {self.state_dir}")
        self.state_dir.mkdir(parents=True, exist_ok=True)
        plan.write(plan_path)
        return plan

    @property
    def shards_dir(self) -> Path:
        return self.state_dir / "shards"

    @property
    def partial_path(self) -> Path:
        return self.state_dir / "partial.json"

    def _load_journaled(self) -> dict[int, ItemResult]:
        """Every journaled result whose ``(index, key)`` still matches the plan.

        Torn tails (a line cut short by a crash mid-append) and foreign lines
        are skipped: a journal line is either a complete, verifiable result or
        it does not exist.
        """
        have: dict[int, ItemResult] = {}
        items = self.plan.items
        for shard_path in sorted(self.shards_dir.glob("*.jsonl")):
            with open(shard_path, encoding="utf-8") as handle:
                for line in handle:
                    try:
                        payload = json.loads(line)
                        result = ItemResult.from_dict(payload)
                    except (ValueError, KeyError, TypeError):
                        continue
                    if 0 <= result.index < len(items) and items[result.index].key == result.key:
                        have[result.index] = result
        return have

    # -- the run -------------------------------------------------------
    def run(self, merged_path: str | os.PathLike | None = None) -> FabricResult:
        """Complete the plan (dispatch, retry, resume) and merge the output.

        A run with quarantined items raises a :class:`FabricError` naming
        their exact indices — unless ``allow_partial``, in which case the
        merge proceeds without them and the result says so explicitly
        (``result.partial``, ``result.quarantined``, ``partial.json``).
        """
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        have = self._load_journaled()
        resumed = len(have)
        pending = [item for item in self.plan.items if item.index not in have]
        stats = {
            "items": len(self.plan.items),
            "from_journal": resumed,
            "dispatched": len(pending),
            "worker_deaths": 0,
            "stalled_workers": 0,
            "requeued_chunks": 0,
            "bisected_chunks": 0,
        }
        quarantined: dict[int, dict] = {}
        if pending:
            run_id = sum(1 for _ in self.shards_dir.glob("run*-chunk*.jsonl"))
            self._dispatch(
                pending, have, stats, quarantined, run_prefix=f"run{run_id:02d}"
            )
        stats["quarantined"] = len(quarantined)

        missing = [item.index for item in self.plan.items if item.index not in have]
        unexplained = [index for index in missing if index not in quarantined]
        if unexplained:
            # Items the dispatcher lost without quarantining them would be a
            # coordinator bug, never a degraded-but-explained outcome.
            raise FabricError(
                f"fabric run finished with {len(unexplained)} missing item(s) "
                f"not accounted for by quarantine: {unexplained[:10]}"
            )

        if quarantined:
            report = {
                "plan_items": len(self.plan.items),
                "missing_indices": sorted(quarantined),
                "items": {
                    str(index): info for index, info in sorted(quarantined.items())
                },
            }
            self.partial_path.write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
        elif self.partial_path.exists():
            self.partial_path.unlink()  # a resume completed what was missing

        if quarantined and not self.allow_partial:
            raise FabricError(
                f"{len(quarantined)} item(s) quarantined after exhausting "
                f"retries: indices {sorted(quarantined)} "
                f"(details in {self.partial_path}); re-run with the same state "
                "dir to retry them with a fresh budget, or pass "
                "allow_partial=True / --allow-partial to merge without them"
            )

        results = [
            have[item.index] for item in self.plan.items if item.index in have
        ]
        for source in ("fresh", "run-cache", "fabric-cache"):
            stats[source.replace("-", "_")] = sum(
                1 for result in results if result.source == source
            )
        merged = Path(merged_path) if merged_path else self.state_dir / "merged.jsonl"
        with open(merged, "w", encoding="utf-8") as handle:
            for result in results:
                handle.write(json.dumps(result.row, sort_keys=True, default=str) + "\n")
        return FabricResult(
            plan=self.plan,
            results=results,
            stats=stats,
            merged_path=merged,
            quarantined=quarantined,
        )

    def _worker_command(self) -> list[str]:
        command = [self.python, "-m", "repro.fabric", "worker"]
        if self.cache is not None:
            command += ["--cache", str(self.cache.root)]
        return command

    def _dispatch(
        self,
        pending: list[WorkItem],
        have: dict[int, ItemResult],
        stats: dict,
        quarantined: dict[int, dict],
        *,
        run_prefix: str,
    ) -> None:
        chunk_count = min(len(pending), self.workers * self.chunk_multiplier)
        sliced = FabricPlan(items=pending).chunk(chunk_count)
        todo: "queue.Queue[_Chunk]" = queue.Queue()
        for number, items in enumerate(sliced):
            todo.put(_Chunk(number=number, items=items))
        next_chunk_number = len(sliced)
        outstanding = len(sliced)
        completed_chunks = 0
        results_seen = 0
        chaos_kill_armed = self.chaos_kill_worker_after is not None
        chaos_stall_armed = self.chaos_stall_worker_after is not None
        events: "queue.Queue[tuple[int, dict | None]]" = queue.Queue()
        command = self._worker_command()
        fleet: dict[int, _Worker] = {}
        next_number = 0
        # Replacement spawns are deferred through this schedule (monotonic
        # deadlines) so consecutive deaths back off instead of crash-looping.
        respawn_rng = random.Random(f"fabric-respawn:{run_prefix}")
        respawn_delays = RESPAWN_RETRY.delays(respawn_rng)
        respawn_at: list[float] = []
        # The event loop ticks at least this often even when no worker says
        # anything — that is what makes stall detection and deferred respawns
        # immune to a fleet that has gone completely silent (all SIGSTOP'd).
        tick = 0.25
        if self.progress_timeout is not None:
            tick = min(tick, max(0.05, self.progress_timeout / 4))

        def spawn() -> None:
            nonlocal next_number
            worker = _Worker(next_number, command, events)
            fleet[next_number] = worker
            next_number += 1

        def capacity() -> int:
            return min(self.workers, outstanding)

        def assign(worker: _Worker) -> None:
            try:
                chunk = todo.get_nowait()
            except queue.Empty:
                return
            worker.chunk = chunk
            worker.last_progress = time.monotonic()
            if not worker.send(
                protocol.CHUNK,
                chunk=chunk.number,
                items=[item.to_dict() for item in chunk.items],
            ):
                # Dead before the first frame: the reader thread will deliver
                # the EOF event, which requeues the chunk through on_death.
                pass

        def feed_idle() -> None:
            for worker in list(fleet.values()):
                if worker.chunk is None and worker.greeted:
                    assign(worker)

        def journal_path(chunk: _Chunk) -> Path:
            return self.shards_dir / f"{run_prefix}-chunk{chunk.number:04d}.jsonl"

        def schedule_respawn() -> None:
            if len(fleet) + len(respawn_at) < capacity():
                delay = next(respawn_delays, RESPAWN_RETRY.cap)
                respawn_at.append(time.monotonic() + delay)

        def process_respawns() -> None:
            now = time.monotonic()
            for deadline in [d for d in respawn_at if d <= now]:
                respawn_at.remove(deadline)
                if len(fleet) < capacity():
                    spawn()

        def check_stalls() -> None:
            if self.progress_timeout is None:
                return
            now = time.monotonic()
            for worker in list(fleet.values()):
                if worker.fail_cause is not None:
                    continue  # already killed; waiting for its EOF event
                # A worker is on the hook when it holds a chunk, or when it
                # has not even said HELLO yet (a SIGSTOP between fork and
                # greeting would otherwise pin a fleet slot forever).
                on_the_hook = worker.chunk is not None or not worker.greeted
                if on_the_hook and now - worker.last_progress > self.progress_timeout:
                    stats["stalled_workers"] += 1
                    what = (
                        worker.chunk.label if worker.chunk is not None else "its greeting"
                    )
                    worker.fail_cause = (
                        f"stalled: no progress on {what} for "
                        f"{self.progress_timeout:g}s (suspended or hung); killed"
                    )
                    print(
                        f"fabric: worker {worker.number} {worker.fail_cause}",
                        file=sys.stderr,
                    )
                    worker.kill()  # EOF flows through the event queue → on_death

        def on_death(worker: _Worker) -> None:
            nonlocal outstanding, next_chunk_number
            stats["worker_deaths"] += 1
            cause = worker.fail_cause or "worker exited (EOF on result stream)"
            chunk = worker.chunk
            worker.chunk = None
            worker.kill()
            worker.reap()
            fleet.pop(worker.number, None)
            if chunk is not None:
                remainder = [item for item in chunk.items if item.index not in have]
                done = len(chunk.items) - len(remainder)
                chunk.history.append(
                    f"attempt {chunk.retries + 1} on {chunk.label}: {cause} "
                    f"({done}/{len(chunk.items)} item(s) journaled)"
                )
                if not remainder:
                    outstanding -= 1
                elif chunk.retries < self.max_retries:
                    stats["requeued_chunks"] += 1
                    todo.put(
                        _Chunk(
                            number=chunk.number,
                            items=remainder,
                            retries=chunk.retries + 1,
                            history=chunk.history,
                        )
                    )
                elif len(remainder) > 1:
                    # Retries exhausted with several suspects: bisect, so a
                    # single poison item is isolated in O(log n) rounds while
                    # its innocent neighbours complete.
                    stats["bisected_chunks"] += 1
                    mid = len(remainder) // 2
                    print(
                        f"fabric: {chunk.label} exhausted "
                        f"{chunk.retries + 1} attempt(s); bisecting "
                        f"{len(remainder)} unfinished item(s) to isolate the failure",
                        file=sys.stderr,
                    )
                    for half in (remainder[:mid], remainder[mid:]):
                        todo.put(
                            _Chunk(
                                number=next_chunk_number,
                                items=half,
                                history=list(chunk.history),
                            )
                        )
                        next_chunk_number += 1
                    outstanding += 1
                else:
                    item = remainder[0]
                    quarantined[item.index] = {
                        "index": item.index,
                        "label": item.label,
                        "attempts": len(chunk.history),
                        "history": list(chunk.history),
                    }
                    print(
                        f"fabric: quarantining poison item {item.label} after "
                        f"{len(chunk.history)} failed attempt(s)",
                        file=sys.stderr,
                    )
                    outstanding -= 1
            if outstanding:
                schedule_respawn()
                feed_idle()

        try:
            for _ in range(min(self.workers, outstanding)):
                spawn()
            # Dispatch loop: every event is a worker message or a death
            # (None); the timeout tick keeps stall detection and deferred
            # respawns running even when no worker can speak.
            while outstanding:
                try:
                    number, message = events.get(timeout=tick)
                except queue.Empty:
                    check_stalls()
                    process_respawns()
                    continue
                process_respawns()
                worker = fleet.get(number)
                if worker is None:
                    continue  # stale event from an already-reaped worker
                if message is None or message["type"] == protocol.ERROR:
                    if message is not None:
                        print(
                            f"fabric: worker {number} failed: "
                            f"{message.get('error', 'unknown error')}",
                            file=sys.stderr,
                        )
                        if worker.fail_cause is None:
                            worker.fail_cause = message.get("error", "unknown error")
                    on_death(worker)
                    continue
                if message["type"] == protocol.HELLO:
                    worker.greeted = True
                    worker.last_progress = time.monotonic()
                    assign(worker)
                elif message["type"] == protocol.RESULT:
                    worker.last_progress = time.monotonic()
                    respawn_delays = RESPAWN_RETRY.delays(respawn_rng)  # healthy again
                    result = ItemResult.from_dict(message["result"])
                    if worker.chunk is not None:
                        with open(journal_path(worker.chunk), "a", encoding="utf-8") as handle:
                            handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
                            handle.flush()
                    have[result.index] = result
                    results_seen += 1
                    if (
                        chaos_kill_armed
                        and results_seen >= self.chaos_kill_worker_after
                        and fleet
                    ):
                        chaos_kill_armed = False
                        victim = fleet[min(fleet)]
                        print(
                            f"fabric: chaos-killing worker {victim.number} "
                            f"after {results_seen} results",
                            file=sys.stderr,
                        )
                        victim.kill()
                    if (
                        chaos_stall_armed
                        and results_seen >= self.chaos_stall_worker_after
                        and fleet
                    ):
                        chaos_stall_armed = False
                        busy = [w for w in fleet.values() if w.chunk is not None]
                        victim = min(busy or fleet.values(), key=lambda w: w.number)
                        print(
                            f"fabric: chaos-stalling worker {victim.number} "
                            f"(SIGSTOP) after {results_seen} results",
                            file=sys.stderr,
                        )
                        if victim.process.poll() is None:
                            victim.process.send_signal(signal.SIGSTOP)
                elif message["type"] == protocol.CHUNK_DONE:
                    worker.chunk = None
                    worker.last_progress = time.monotonic()
                    outstanding -= 1
                    completed_chunks += 1
                    if (
                        self.crash_after_chunks is not None
                        and completed_chunks >= self.crash_after_chunks
                        and outstanding
                    ):
                        raise SimulatedCrash(
                            f"simulated coordinator crash after "
                            f"{completed_chunks} chunks ({outstanding} left)"
                        )
                    assign(worker)
        finally:
            for worker in list(fleet.values()):
                worker.send(protocol.SHUTDOWN)
            for worker in list(fleet.values()):
                if worker.chunk is not None or worker.fail_cause is not None:
                    worker.kill()  # busy/stalled worker won't read the frame
                try:
                    worker.process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    # e.g. an idle worker SIGSTOP'd by chaos: it will never
                    # read the shutdown frame, so the polite exit is off.
                    worker.kill()
                worker.reap()


def run_plan(
    plan: FabricPlan | None,
    *,
    state_dir: str | os.PathLike,
    workers: int = 2,
    cache: RunCache | str | None = None,
    **kwargs: Any,
) -> FabricResult:
    """One-call convenience: coordinate ``plan`` to completion."""
    return Coordinator(
        plan, state_dir=state_dir, workers=workers, cache=cache, **kwargs
    ).run()
