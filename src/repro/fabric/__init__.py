"""``repro.fabric`` — the distributed sweep fabric.

The paper's tables are statistics over large seed sweeps; one warm pool made
a single host fast, and this package makes *many* processes (and, later,
many hosts) routine.  Four pieces, each usable on its own:

* :mod:`~repro.fabric.plan` — the **deterministic shard planner**: enumerate
  every work item of a registered experiment (or a raw
  :class:`~repro.analysis.runner.ParameterSweep`) *without executing any of
  it*, assign global input-order indices, and partition the item list into
  JSON chunk manifests.  Items are keyed exactly like the
  :class:`~repro.runtime.cache.RunCache` (``(canonical-spec-hash, seed)`` for
  declarative specs, function-name + canonical config for sweep functions),
  so the plan, the cache, and the workers all speak the same key space;
* :mod:`~repro.fabric.coordinator` — the **coordinator**: fan chunks out to
  worker subprocesses over a transport-agnostic length-prefixed JSON protocol
  (the same framing as :mod:`repro.transport` — an ssh pipe carries it as
  readily as a local pipe), journal every result to per-chunk shard files the
  moment it arrives, requeue chunks whose worker died (bounded retries), and
  **merge deterministically into input order** — the merged JSONL is
  byte-identical to a serial run's, regardless of worker count, completion
  order, crashes, or restarts;
* **resume** — a restarted coordinator re-plans, re-reads its shard journals
  and the shared :class:`RunCache`, skips every item already completed, and
  finishes the sweep idempotently.  Determinism digests travel with every
  result (captured in the worker, stored in the journal and the cache), so
  even a run resumed three crashes deep still proves itself bit-identical to
  serial execution;
* :mod:`~repro.fabric.adaptive` — **adaptive seed allocation**: run seeds in
  waves, compute a per-cell confidence interval on the target metric
  (normal approximation, bootstrap fallback at small n), retire a cell once
  its CI half-width is below threshold, and spend the remaining seed budget
  on the cells that are still noisy.

Command line::

    python -m repro.fabric plan E1 E9 -o plan.json --chunks 4   # plan + chunks
    python -m repro.fabric run  E1 E9 --dir /tmp/fab --workers 4
    python -m repro.fabric run --dir /tmp/fab --workers 4       # resume
    python -m repro.fabric merge --dir /tmp/fab                 # re-merge shards
    python -m repro.fabric digests --dir /tmp/fab               # manifest

``python -m repro.experiments --shard i/N`` executes one shard of the same
plan in-process (no coordinator), for job arrays and ssh loops.
"""

from .adaptive import AdaptiveReport, CellStats, adaptive_sweep, confidence_interval
from .coordinator import Coordinator, FabricResult
from .digests import CORE_EXPERIMENTS, fold_digests, fold_named
from .plan import FabricPlan, PlanningEngine, WorkItem, plan_experiments, plan_sweep
from .work import execute_item

__all__ = [
    "AdaptiveReport",
    "CellStats",
    "adaptive_sweep",
    "confidence_interval",
    "Coordinator",
    "FabricResult",
    "CORE_EXPERIMENTS",
    "fold_digests",
    "fold_named",
    "FabricPlan",
    "PlanningEngine",
    "WorkItem",
    "plan_experiments",
    "plan_sweep",
    "execute_item",
]
