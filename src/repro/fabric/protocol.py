"""The coordinator ↔ worker wire protocol: length-prefixed JSON messages.

The frame format is exactly :mod:`repro.transport.framing` (4-byte big-endian
length + UTF-8 JSON), reused here over *synchronous* binary streams — a
worker's stdin/stdout pipes today, an ssh channel or TCP socket tomorrow; the
protocol never assumes it is talking to a local subprocess.

Message types (every message is ``{"type": …, …}``):

* ``hello`` (worker → coordinator) — ``{pid}``: the worker imported the
  library and is ready for chunks;
* ``chunk`` (coordinator → worker) — ``{chunk, items}``: execute these work
  items (plan dicts), in order;
* ``result`` (worker → coordinator) — ``{chunk, result}``: one finished
  item (:class:`~repro.fabric.work.ItemResult` dict), streamed as it
  completes so the coordinator can journal incrementally;
* ``chunk_done`` (worker → coordinator) — ``{chunk}``: every item of the
  chunk was executed and its results sent;
* ``error`` (worker → coordinator) — ``{chunk, error}``: an item raised; the
  worker is poisoned and will exit (the coordinator requeues the chunk's
  remainder against its retry budget);
* ``shutdown`` (coordinator → worker) — exit cleanly.
"""

from __future__ import annotations

import json
import struct
from typing import Any, BinaryIO

from ..transport.framing import MAX_FRAME_BYTES, FramingError, encode_frame

__all__ = [
    "HELLO",
    "CHUNK",
    "RESULT",
    "CHUNK_DONE",
    "ERROR",
    "SHUTDOWN",
    "write_message",
    "read_message",
]

HELLO = "hello"
CHUNK = "chunk"
RESULT = "result"
CHUNK_DONE = "chunk_done"
ERROR = "error"
SHUTDOWN = "shutdown"

_LENGTH = struct.Struct(">I")


def write_message(stream: BinaryIO, type: str, **fields: Any) -> None:
    """Frame and flush one message onto a binary stream."""
    stream.write(encode_frame({"type": type, **fields}))
    stream.flush()


def _read_exact(stream: BinaryIO, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on clean EOF before any byte."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        piece = stream.read(remaining)
        if not piece:
            if not chunks:
                return None
            raise FramingError("stream closed mid-frame")
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def read_message(stream: BinaryIO) -> dict | None:
    """Read one framed message; ``None`` on clean EOF between frames."""
    header = _read_exact(stream, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FramingError(f"announced frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = _read_exact(stream, length)
    if body is None:
        raise FramingError("stream closed mid-frame")
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict) or "type" not in payload:
        raise FramingError(f"malformed fabric message: {payload!r}")
    return payload
