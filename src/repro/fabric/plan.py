"""The deterministic shard planner: experiments → ordered work items → chunks.

A *plan* is the full list of work items a sweep would execute, in exactly the
order a serial engine would execute them, each tagged with its global index
and its :class:`~repro.runtime.cache.RunCache` key.  Plans are produced
without running any simulation: the experiment's ``run`` function executes
against a :class:`PlanningEngine` that records what is dispatched instead of
dispatching it.

Three item kinds cover every engine entry point the experiments use:

* ``"sweep"`` — ``Engine.sweep(run_one, sweep)``: the payload names the
  module-level function (``module.qualname``) and carries its config; the
  result row is ``merge_row(config, outcome)``, exactly what the engine
  emits to JSONL;
* ``"map"`` — ``Engine.map(fn, items)``: like ``"sweep"`` but the function's
  return value *is* the row (the engine does not merge or emit for ``map``);
* ``"spec"`` — ``Engine.run`` / ``run_many`` / ``run_sweep``: the payload is
  the spec's ``to_dict()`` and the row is the executed
  :class:`~repro.runtime.engine.RunRecord`'s ``to_dict()`` (again matching
  the engine's JSONL emission), keyed on ``(canonical-spec-hash, seed)``.

Because an item is plain JSON, a chunk manifest — a contiguous slice of the
item list, cut by the same :func:`~repro.analysis.runner.shard_bounds` math
as ``ParameterSweep.slice`` and ``--shard i/N`` — is a self-contained work
order: any process that can import the library can execute it, and
concatenating the chunks' results in chunk order reproduces serial output
exactly.

Planning is only valid for experiments whose dispatch structure does not
depend on earlier results (an experiment that inspected sweep rows to decide
its *next* sweep would record a truncated plan).  Every registered
deterministic experiment (E1–E12) dispatches its full grid unconditionally;
the planner records every engine call first and only then lets the
experiment's aggregation see placeholder rows, so a late ``KeyError`` in a
summary cannot truncate the plan — it is caught and ignored.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from ..analysis.runner import ParameterSweep, merge_row, shard_bounds
from ..errors import ReproError
from ..runtime.cache import RunCache
from ..runtime.engine import RunRecord
from ..runtime.registry import EXPERIMENTS
from ..runtime.spec import ScenarioSpec

__all__ = [
    "PlanningError",
    "WorkItem",
    "FabricPlan",
    "PlanningEngine",
    "plan_experiments",
    "plan_sweep",
]

PLAN_SCHEMA = "fabric-plan/1"
CHUNK_SCHEMA = "fabric-chunk/1"


class PlanningError(ReproError):
    """An experiment's work could not be enumerated as a shardable plan."""


def _function_name(fn: Callable[..., Any]) -> str:
    """``module.qualname`` of a plannable function, or raise.

    Mirrors the cache's cacheability rule: lambdas and nested functions have
    ambiguous qualified names, cannot be re-imported by a worker, and are
    rejected at planning time (the pool executors would reject them at
    pickling time anyway).
    """
    module = getattr(fn, "__module__", "") or ""
    qualname = getattr(fn, "__qualname__", "") or ""
    if not module or not qualname or "<lambda>" in qualname or "<locals>" in qualname:
        raise PlanningError(
            f"cannot plan over {fn!r}: only module-level functions can be "
            "named in a chunk manifest and re-imported by a worker"
        )
    return f"{module}.{qualname}"


@dataclass(frozen=True)
class WorkItem:
    """One executable unit of a plan (see the module docstring for kinds)."""

    index: int
    kind: str  # "sweep" | "map" | "spec"
    payload: Mapping[str, Any]
    key: str
    experiment: str = ""
    call: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("sweep", "map", "spec"):
            raise PlanningError(f"unknown work item kind {self.kind!r}")
        object.__setattr__(self, "payload", dict(self.payload))

    @property
    def label(self) -> str:
        """A short human identification for logs and error messages."""
        if self.kind == "spec":
            spec = self.payload.get("spec", {})
            return f"{spec.get('name') or self.experiment}[seed={spec.get('seed')}]"
        config = self.payload.get("config", {})
        return f"{self.experiment or self.payload.get('fn')}[seed={config.get('seed')}]"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "payload": dict(self.payload),
            "key": self.key,
            "experiment": self.experiment,
            "call": self.call,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkItem":
        return cls(
            index=int(payload["index"]),
            kind=str(payload["kind"]),
            payload=dict(payload["payload"]),
            key=str(payload["key"]),
            experiment=str(payload.get("experiment", "")),
            call=int(payload.get("call", 0)),
        )


class _PlaceholderRow(dict):
    """A result row whose every missing key reads as ``None``.

    Returned by the planning engine so experiment aggregation code that runs
    *after* the sweeps (``all(row["converged"] …)``, ``aggregate_rows``) can
    usually complete without real metrics; code that genuinely needs values
    (``sum``, arithmetic) raises and is caught by the planner.
    """

    def __missing__(self, key: str) -> None:
        return None


def _jsonable(value: Any, what: str) -> Any:
    """Round-trip ``value`` through JSON, or raise a planning error."""
    try:
        rounded = json.loads(json.dumps(value))
    except (TypeError, ValueError) as error:
        raise PlanningError(f"{what} is not JSON-serializable: {error}") from error
    if rounded != value:
        raise PlanningError(
            f"{what} does not survive a JSON round-trip; a chunk manifest "
            "would silently alter it (tuples? non-string keys?)"
        )
    return rounded


class PlanningEngine:
    """An Engine stand-in that records dispatched work instead of running it.

    Implements every entry point the experiments call (``sweep``,
    ``run_sweep``, ``run_many``, ``run``, ``map``) by appending
    :class:`WorkItem`\\ s — in dispatch order — to :attr:`items` and returning
    placeholder results.  ``call`` numbers each engine invocation so a plan
    records where one sweep ends and the next begins.
    """

    def __init__(self, experiment: str = "") -> None:
        self.experiment = experiment
        self.items: list[WorkItem] = []
        self._calls = 0

    # -- recording helpers ---------------------------------------------
    def _add(self, kind: str, payload: Mapping[str, Any], key: str) -> None:
        self.items.append(
            WorkItem(
                index=len(self.items),
                kind=kind,
                payload=payload,
                key=key,
                experiment=self.experiment,
                call=self._calls,
            )
        )

    def _next_call(self) -> int:
        self._calls += 1
        return self._calls - 1

    # -- Engine interface ----------------------------------------------
    def sweep(self, run_one, sweep, *, stream: bool = False):
        fn_name = _function_name(run_one)
        self._next_call()
        rows = []
        for config in sweep:
            config = _jsonable(dict(config), f"sweep config for {fn_name}")
            self._add(
                "sweep",
                {"fn": fn_name, "config": config},
                RunCache.outcome_key_named(fn_name, config),
            )
            rows.append(_PlaceholderRow(merge_row(config, {})))
        return iter(rows) if stream else rows

    def map(self, fn, items):
        fn_name = _function_name(fn)
        self._next_call()
        rows = []
        for item in items:
            if not isinstance(item, Mapping):
                raise PlanningError(
                    f"cannot plan Engine.map over non-mapping item {item!r}"
                )
            config = _jsonable(dict(item), f"map item for {fn_name}")
            self._add(
                "map",
                {"fn": fn_name, "config": config},
                RunCache.outcome_key_named(fn_name, config),
            )
            rows.append(_PlaceholderRow())
        return rows

    def _record_spec(self, spec: ScenarioSpec) -> RunRecord:
        if spec.backend != "sim":
            raise PlanningError(
                f"cannot plan non-sim spec {spec.name!r}: real-backend runs "
                "are wall-clock measurements with no deterministic digest"
            )
        payload = _jsonable(spec.to_dict(), f"spec {spec.name!r}")
        self._add("spec", {"spec": payload}, RunCache.record_key(spec))
        return RunRecord(scenario=spec.name, seed=spec.seed, config=payload)

    def run(self, spec: ScenarioSpec) -> RunRecord:
        self._next_call()
        return self._record_spec(spec)

    def run_many(self, specs, *, stream: bool = False):
        self._next_call()
        records = [self._record_spec(spec) for spec in specs]
        return iter(records) if stream else records

    def run_sweep(self, make_spec, sweep, *, stream: bool = False):
        self._next_call()
        rows = []
        for config in sweep:
            config = dict(config)
            self._record_spec(make_spec(dict(config)))
            rows.append(_PlaceholderRow(merge_row(config, {})))
        return iter(rows) if stream else rows

    def close(self) -> None:
        """Nothing to release (present for Engine interface parity)."""


@dataclass
class FabricPlan:
    """An ordered, JSON-serializable list of work items plus its provenance."""

    items: list[WorkItem] = field(default_factory=list)
    experiments: tuple[str, ...] = ()
    quick: bool = True
    seed: int = 0

    def __len__(self) -> int:
        return len(self.items)

    def experiment_spans(self) -> dict[str, tuple[int, int]]:
        """``{experiment: [start, end)}`` over the global item order.

        Experiments are planned one after another, so each one's items are a
        contiguous index range — which is what lets sharded digests be folded
        back into per-experiment manifest digests.
        """
        spans: dict[str, tuple[int, int]] = {}
        for item in self.items:
            start, end = spans.get(item.experiment, (item.index, item.index))
            spans[item.experiment] = (min(start, item.index), max(end, item.index) + 1)
        return spans

    # -- chunking ------------------------------------------------------
    def chunk(self, chunks: int) -> list[list[WorkItem]]:
        """Partition the items into ``chunks`` contiguous, balanced slices.

        Uses the same :func:`~repro.analysis.runner.shard_bounds` math as
        ``ParameterSweep.slice`` and ``--shard i/N``; empty slices (more
        chunks than items) are dropped.
        """
        out = []
        for chunk in range(chunks):
            start, end = shard_bounds(len(self.items), chunk, chunks)
            if end > start:
                out.append(self.items[start:end])
        return out

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "experiments": list(self.experiments),
            "quick": self.quick,
            "seed": self.seed,
            "items": [item.to_dict() for item in self.items],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FabricPlan":
        if payload.get("schema") != PLAN_SCHEMA:
            raise PlanningError(f"not a fabric plan (schema {payload.get('schema')!r})")
        return cls(
            items=[WorkItem.from_dict(item) for item in payload.get("items", [])],
            experiments=tuple(payload.get("experiments", ())),
            quick=bool(payload.get("quick", True)),
            seed=int(payload.get("seed", 0)),
        )

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def read(cls, path: str | Path) -> "FabricPlan":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def write_chunks(self, directory: str | Path, chunks: int) -> list[Path]:
        """Write ``chunk-NNNN.json`` manifests and return their paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for number, chunk_items in enumerate(self.chunk(chunks)):
            path = directory / f"chunk-{number:04d}.json"
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "schema": CHUNK_SCHEMA,
                        "chunk": number,
                        "items": [item.to_dict() for item in chunk_items],
                    },
                    handle,
                    indent=1,
                    sort_keys=True,
                )
                handle.write("\n")
            paths.append(path)
        return paths


def plan_experiments(
    names: Iterable[str], *, quick: bool = True, seed: int = 0
) -> FabricPlan:
    """Enumerate the work of the named registered experiments, in order.

    The returned plan's item order is exactly the order a serial engine would
    execute (and a serial digest manifest would capture): experiments in the
    given order, engine calls in program order, items in sweep order.
    """
    from .. import experiments  # noqa: F401  (importing registers E1–E12)

    names = [name.upper() for name in names]
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise PlanningError(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(EXPERIMENTS.names())}"
        )
    items: list[WorkItem] = []
    for name in names:
        runner = EXPERIMENTS.resolve(name)
        recorder = PlanningEngine(experiment=name)
        try:
            runner(quick=quick, seed=seed, engine=recorder)
        except PlanningError:
            raise
        except Exception:
            # Placeholder rows carry no metrics, so aggregation/summary code
            # may legitimately raise *after* every engine call was recorded;
            # dispatch itself never depends on results (module docstring).
            pass
        if not recorder.items:
            raise PlanningError(f"experiment {name} dispatched no work to plan")
        for item in recorder.items:
            items.append(
                WorkItem(
                    index=len(items),
                    kind=item.kind,
                    payload=item.payload,
                    key=item.key,
                    experiment=item.experiment,
                    call=item.call,
                )
            )
    return FabricPlan(items=items, experiments=tuple(names), quick=quick, seed=seed)


def plan_sweep(
    run_one: Callable[[dict], Mapping[str, Any]] | str,
    sweep: ParameterSweep | Iterable[Mapping[str, Any]],
    *,
    name: str = "sweep",
) -> FabricPlan:
    """Plan a raw sweep of a module-level function (no experiment involved).

    ``run_one`` may be the function itself or its ``module.qualname`` string
    (what a chunk manifest stores).
    """
    fn_name = run_one if isinstance(run_one, str) else _function_name(run_one)
    items: list[WorkItem] = []
    for config in sweep:
        config = _jsonable(dict(config), f"sweep config for {fn_name}")
        items.append(
            WorkItem(
                index=len(items),
                kind="sweep",
                payload={"fn": fn_name, "config": config},
                key=RunCache.outcome_key_named(fn_name, config),
                experiment=name,
            )
        )
    if not items:
        raise PlanningError("the sweep yielded no configurations")
    return FabricPlan(items=items, experiments=(name,))
