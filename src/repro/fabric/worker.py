"""The fabric worker: a stateless chunk executor on the end of a pipe.

Spawned by the coordinator as ``python -m repro.fabric worker [--cache DIR]``
with the protocol of :mod:`repro.fabric.protocol` on stdin/stdout.  The
worker holds no state between chunks and owns no files — results stream back
one frame per item and the *coordinator* journals them — so a worker can be
SIGKILLed at any instant and the only loss is its in-flight chunk, which the
coordinator requeues.  That statelessness is also what makes the worker
transport-agnostic: running it at the far end of ``ssh host python -m
repro.fabric worker`` changes nothing above the pipe.

stdout is reserved for protocol frames: the real stream is captured at
startup and ``sys.stdout`` is rebound to stderr, so a stray ``print`` in
experiment code degrades to log noise instead of corrupting the framing.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import BinaryIO

from ..runtime.cache import RunCache
from . import protocol
from .plan import WorkItem
from .work import execute_item

__all__ = ["main", "serve"]


def serve(
    inbound: BinaryIO, outbound: BinaryIO, *, cache: RunCache | None = None
) -> int:
    """The worker loop: read chunks, execute items, stream results back."""
    protocol.write_message(outbound, protocol.HELLO, pid=os.getpid())
    while True:
        message = protocol.read_message(inbound)
        if message is None or message["type"] == protocol.SHUTDOWN:
            return 0
        if message["type"] != protocol.CHUNK:
            protocol.write_message(
                outbound,
                protocol.ERROR,
                chunk=message.get("chunk"),
                error=f"unexpected message type {message['type']!r}",
            )
            return 1
        chunk_id = message["chunk"]
        try:
            for payload in message["items"]:
                result = execute_item(WorkItem.from_dict(payload), cache)
                protocol.write_message(
                    outbound, protocol.RESULT, chunk=chunk_id, result=result.to_dict()
                )
        except Exception as error:  # noqa: BLE001 — reported, then exit
            protocol.write_message(
                outbound,
                protocol.ERROR,
                chunk=chunk_id,
                error=f"{type(error).__name__}: {error}",
            )
            return 1
        protocol.write_message(outbound, protocol.CHUNK_DONE, chunk=chunk_id)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric worker",
        description="fabric worker (spawned by the coordinator; speaks the "
        "length-prefixed JSON protocol on stdin/stdout)",
    )
    parser.add_argument("--cache", metavar="DIR", help="shared run-cache directory")
    args = parser.parse_args(argv)
    inbound = sys.stdin.buffer
    outbound = sys.stdout.buffer
    sys.stdout = sys.stderr  # keep stray prints out of the frame stream
    return serve(inbound, outbound, cache=RunCache.coerce(args.cache))


if __name__ == "__main__":
    sys.exit(main())
