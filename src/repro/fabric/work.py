"""Executing one planned work item — with digests, against the shared cache.

This is the worker side of the fabric, but it is deliberately a plain
function (:func:`execute_item`) so the experiment CLI's ``--shard i/N`` mode
and the tests can run items in-process without a coordinator.

Every fresh execution captures the determinism digests of the simulations it
ran (via :data:`repro.sim.scheduler.DIGEST_SINK`, the same mechanism the
digest manifest uses inside pool workers), so results carry the proof of
bit-identical behaviour with them.  Caching is two-level against one shared
:class:`~repro.runtime.cache.RunCache` directory:

* the **plain entry** under the item's own key is exactly what an ordinary
  ``Engine(cache=…)`` run would store (a ``RunRecord`` dict for spec items,
  the outcome mapping for sweep items) — fabric runs and engine runs
  populate each other's hits;
* the **fabric entry** (``derived_key("fab", key)``) additionally stores the
  finished row *and* the digest list, so a resumed or repeated fabric run
  reproduces not just the output but the digest manifest.

A plain-entry hit for a sweep item has no digest record (the engine never
captures digests for custom functions); such a result is marked
``digests_complete=False`` and the digest-verification path refuses to trust
a fold containing one.  Spec records carry their digest, so their plain hits
stay complete.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..analysis.runner import merge_row
from ..errors import ReproError
from ..runtime.cache import RunCache
from ..runtime.engine import execute_spec
from ..runtime.spec import ScenarioSpec
from ..sim import scheduler as _scheduler_module
from .plan import WorkItem

__all__ = ["ItemResult", "execute_item", "resolve_function"]


class WorkError(ReproError):
    """A work item could not be executed (unresolvable function, bad spec)."""


def resolve_function(name: str) -> Callable[..., Any]:
    """Import ``module.qualname`` back into the function object."""
    module_name, _, qualname = name.rpartition(".")
    while module_name:
        try:
            target: Any = importlib.import_module(module_name)
            break
        except ImportError:
            # The split is ambiguous ("pkg.mod.fn" vs "pkg.mod.Class.method"):
            # walk left until a prefix imports, then getattr the rest.
            module_name, _, rest = module_name.rpartition(".")
            qualname = f"{rest}.{qualname}"
    else:
        raise WorkError(f"cannot resolve function {name!r}: no importable module prefix")
    for part in qualname.split("."):
        try:
            target = getattr(target, part)
        except AttributeError as error:
            raise WorkError(f"cannot resolve function {name!r}: {error}") from error
    if not callable(target):
        raise WorkError(f"{name!r} resolved to non-callable {target!r}")
    return target


@dataclass(frozen=True)
class ItemResult:
    """The outcome of one work item: its row, its digests, its provenance."""

    index: int
    key: str
    row: Mapping[str, Any] = field(default_factory=dict)
    digests: tuple[int, ...] = ()
    source: str = "fresh"  # "fresh" | "fabric-cache" | "run-cache"
    digests_complete: bool = True

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "key": self.key,
            "row": dict(self.row),
            "digests": list(self.digests),
            "source": self.source,
            "digests_complete": self.digests_complete,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ItemResult":
        return cls(
            index=int(payload["index"]),
            key=str(payload["key"]),
            row=dict(payload.get("row", {})),
            digests=tuple(int(d) for d in payload.get("digests", ())),
            source=str(payload.get("source", "fresh")),
            digests_complete=bool(payload.get("digests_complete", True)),
        )


def _canonical_row(row: Mapping[str, Any]) -> dict:
    """The row as it will appear in JSONL: one canonicalisation, up front.

    The engine emits ``json.dumps(row, sort_keys=True, default=str)``; doing
    the same ``default=str`` round-trip here makes the row frame-safe for the
    worker protocol *and* guarantees the coordinator's merged line is
    byte-identical to the engine's.
    """
    return json.loads(json.dumps(row, sort_keys=True, default=str))


def _fresh(item: WorkItem) -> tuple[dict, list[int], Mapping[str, Any] | None]:
    """Execute the item, returning (row, digests, plain-cache payload)."""
    sink: list[int] = []
    previous = _scheduler_module.DIGEST_SINK
    _scheduler_module.DIGEST_SINK = sink
    try:
        if item.kind == "spec":
            record = execute_spec(ScenarioSpec.from_dict(item.payload["spec"]))
            return _canonical_row(record.to_dict()), sink, record.to_dict()
        fn = resolve_function(item.payload["fn"])
        config = dict(item.payload["config"])
        outcome = dict(fn(dict(config)))
        if item.kind == "sweep":
            return _canonical_row(merge_row(config, outcome)), sink, outcome
        return _canonical_row(outcome), sink, None  # "map": the row IS the outcome
    finally:
        _scheduler_module.DIGEST_SINK = previous


def execute_item(item: WorkItem, cache: RunCache | None = None) -> ItemResult:
    """Execute (or rehydrate) one work item; see the module docstring."""
    fab_key = RunCache.derived_key("fab", item.key)
    if cache is not None:
        entry = cache.get(fab_key)
        if isinstance(entry, dict) and "row" in entry:
            return ItemResult(
                index=item.index,
                key=item.key,
                row=entry["row"],
                digests=tuple(int(d) for d in entry.get("digests", ())),
                source="fabric-cache",
            )
        plain = cache.get(item.key)
        if plain is not None:
            if item.kind == "spec":
                digest = str(plain.get("digest", ""))
                return ItemResult(
                    index=item.index,
                    key=item.key,
                    row=_canonical_row(plain),
                    digests=(int(digest, 16),) if digest else (),
                    source="run-cache",
                    digests_complete=bool(digest),
                )
            if item.kind == "sweep":
                row = _canonical_row(merge_row(dict(item.payload["config"]), plain))
                return ItemResult(
                    index=item.index,
                    key=item.key,
                    row=row,
                    source="run-cache",
                    digests_complete=False,
                )
            # "map" items have no plain-entry convention (Engine.map never
            # caches); fall through to fresh execution.
    row, digests, plain_payload = _fresh(item)
    if cache is not None:
        if plain_payload is not None:
            cache.put(item.key, plain_payload)
        cache.put(fab_key, {"row": row, "digests": list(digests)})
    return ItemResult(index=item.index, key=item.key, row=row, digests=tuple(digests))
