"""Command-line entry point for the distributed sweep fabric.

Examples::

    python -m repro.fabric plan E1 E2 -o plan.json --chunks 4 --chunks-dir chunks/
    python -m repro.fabric run E1 --workers 3 --dir state/ --cache .run-cache
    python -m repro.fabric run --dir state/            # resume a crashed run
    python -m repro.fabric merge --dir state/          # journals -> merged.jsonl
    python -m repro.fabric digests --dir state/        # manifest of a finished run
    python -m repro.fabric worker                      # (spawned by coordinators)

``run`` is idempotent: re-running with the same ``--dir`` (and the same plan,
which is frozen into it) executes only the items whose results are not yet
journaled, then rewrites the merged output.  ``--chaos-kill-worker`` and
``--crash-after`` exist so CI can rehearse worker death and coordinator death
deterministically.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .coordinator import DEFAULT_PROGRESS_TIMEOUT, Coordinator, FabricError, FabricResult
from .plan import FabricPlan, plan_experiments
from .work import ItemResult
from .worker import main as worker_main

__all__ = ["main"]


def _add_selection(parser: argparse.ArgumentParser, *, required: bool) -> None:
    parser.add_argument(
        "experiments",
        nargs="+" if required else "*",
        metavar="EXPERIMENT",
        help="experiment ids to plan (e.g. E1 E2 E9)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="plan the full parameter sweeps instead of the quick ones",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed (default 0)")


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = plan_experiments(args.experiments, quick=not args.full, seed=args.seed)
    if args.output:
        plan.write(args.output)
        print(f"plan: {len(plan)} items -> {args.output}", file=sys.stderr)
    else:
        json.dump(plan.to_dict(), sys.stdout, indent=1, sort_keys=True)
        print()
    if args.chunks:
        directory = args.chunks_dir or "chunks"
        paths = plan.write_chunks(directory, args.chunks)
        print(f"chunks: {len(paths)} manifests -> {directory}", file=sys.stderr)
    return 0


def _resolve_plan(args: argparse.Namespace) -> FabricPlan | None:
    """The plan for a run: explicit file > named experiments > frozen state."""
    if args.plan:
        return FabricPlan.read(args.plan)
    if args.experiments:
        return plan_experiments(args.experiments, quick=not args.full, seed=args.seed)
    return None  # resume: Coordinator loads the frozen plan from the state dir


def _cmd_run(args: argparse.Namespace) -> int:
    coordinator = Coordinator(
        _resolve_plan(args),
        state_dir=args.dir,
        workers=args.workers,
        cache=args.cache,
        progress_timeout=args.progress_timeout,
        allow_partial=args.allow_partial,
        chaos_kill_worker_after=args.chaos_kill_worker,
        chaos_stall_worker_after=args.chaos_stall_worker,
        crash_after_chunks=args.crash_after,
    )
    result = coordinator.run(merged_path=args.merged)
    print(json.dumps(result.stats, sort_keys=True), file=sys.stderr)
    if result.partial:
        print(
            f"fabric: PARTIAL merge — {len(result.quarantined)} item(s) "
            f"quarantined (see {coordinator.partial_path})",
            file=sys.stderr,
        )
    print(result.merged_path)
    return 0


def _completed_result(state_dir: str) -> FabricResult:
    """Rebuild a :class:`FabricResult` from a state dir's journals alone."""
    coordinator = Coordinator(None, state_dir=state_dir)
    have = coordinator._load_journaled()
    missing = [item for item in coordinator.plan.items if item.index not in have]
    if missing:
        raise FabricError(
            f"{len(missing)} of {len(coordinator.plan)} items have no journaled "
            f"result (first: {missing[0].label}); run "
            f"`python -m repro.fabric run --dir {state_dir}` to finish the plan"
        )
    results: list[ItemResult] = [have[item.index] for item in coordinator.plan.items]
    return FabricResult(plan=coordinator.plan, results=results)


def _cmd_merge(args: argparse.Namespace) -> int:
    result = _completed_result(args.dir)
    merged = Path(args.merged) if args.merged else Path(args.dir) / "merged.jsonl"
    with open(merged, "w", encoding="utf-8") as handle:
        for item_result in result.results:
            handle.write(json.dumps(item_result.row, sort_keys=True, default=str) + "\n")
    print(merged)
    return 0


def _cmd_digests(args: argparse.Namespace) -> int:
    result = _completed_result(args.dir)
    if not result.digests_complete:
        raise FabricError(
            "some results were served from plain cache entries that carry no "
            "digest record; re-run against a fresh state/cache to fold digests"
        )
    json.dump(result.manifest(), sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # The worker parses its own flags (it is spawned with exactly this form).
    if argv[:1] == ["worker"]:
        return worker_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric",
        description="Shard experiment sweeps across worker processes, "
        "deterministically (see src/repro/fabric/__init__.py).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan_parser = commands.add_parser(
        "plan", help="enumerate an experiment's work as a shardable plan"
    )
    _add_selection(plan_parser, required=True)
    plan_parser.add_argument("-o", "--output", metavar="FILE", help="write plan.json here")
    plan_parser.add_argument(
        "--chunks", type=int, metavar="N", help="also cut N chunk manifests"
    )
    plan_parser.add_argument(
        "--chunks-dir", metavar="DIR", help="chunk manifest directory (default: chunks/)"
    )
    plan_parser.set_defaults(handler=_cmd_plan)

    run_parser = commands.add_parser(
        "run", help="execute a plan across workers (resumes if --dir has state)"
    )
    _add_selection(run_parser, required=False)
    run_parser.add_argument(
        "--dir", required=True, metavar="DIR", help="coordinator state directory"
    )
    run_parser.add_argument("--plan", metavar="FILE", help="use this plan.json")
    run_parser.add_argument(
        "--workers", type=int, default=2, metavar="N", help="worker processes (default 2)"
    )
    run_parser.add_argument("--cache", metavar="DIR", help="shared run-cache directory")
    run_parser.add_argument(
        "--merged", metavar="FILE", help="merged JSONL path (default: DIR/merged.jsonl)"
    )
    run_parser.add_argument(
        "--progress-timeout",
        type=float,
        default=DEFAULT_PROGRESS_TIMEOUT,
        metavar="SECONDS",
        help="kill a worker that makes no progress for this long "
        f"(default {DEFAULT_PROGRESS_TIMEOUT:g}s; stalled workers delay a "
        "run, never hang it)",
    )
    run_parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="merge without quarantined poison items instead of failing; "
        "the exact missing indices land in DIR/partial.json",
    )
    run_parser.add_argument(
        "--chaos-kill-worker",
        type=int,
        metavar="N",
        help="SIGKILL one worker after N results (crash-recovery rehearsal)",
    )
    run_parser.add_argument(
        "--chaos-stall-worker",
        type=int,
        metavar="N",
        help="SIGSTOP one busy worker after N results (stall-detection rehearsal)",
    )
    run_parser.add_argument(
        "--crash-after",
        type=int,
        metavar="N",
        help="abort the coordinator after N finished chunks (resume rehearsal)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    merge_parser = commands.add_parser(
        "merge", help="merge a completed state dir's journals into ordered JSONL"
    )
    merge_parser.add_argument("--dir", required=True, metavar="DIR")
    merge_parser.add_argument("--merged", metavar="FILE")
    merge_parser.set_defaults(handler=_cmd_merge)

    digests_parser = commands.add_parser(
        "digests", help="print the digest manifest of a completed state dir"
    )
    digests_parser.add_argument("--dir", required=True, metavar="DIR")
    digests_parser.set_defaults(handler=_cmd_digests)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FabricError as error:
        print(f"fabric: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
