"""Observation 1: HΩ from ◇HP without any communication.

Each process periodically sets ``h_leader`` to the smallest identifier of the
◇HP detector's ``h_trusted`` multiset and ``h_multiplicity`` to that
identifier's multiplicity.  Once ``h_trusted`` has converged to ``I(Correct)``
at every correct process, all of them agree on the same correct identifier and
its correct multiplicity — the HΩ election property.
"""

from __future__ import annotations

from ..detectors.base import OutputKeys
from ..detectors.views import HOmegaView
from ..identity import Identity
from ..sim.process import ProcessContext
from .base import PeriodicReductionProgram

__all__ = ["DiamondHPToHOmega"]

KEYS = OutputKeys()


class DiamondHPToHOmega(PeriodicReductionProgram):
    """The Observation 1 transformation (code for one process)."""

    def __init__(self, *, source_detector: str = "DiamondHP", **kwargs) -> None:
        super().__init__(source_detector=source_detector, **kwargs)
        self.h_leader: Identity | None = None
        self.h_multiplicity: int = 0

    def emulated_view(self) -> HOmegaView:
        return HOmegaView(lambda: (self.h_leader, self.h_multiplicity))

    def on_setup(self, ctx: ProcessContext) -> None:
        self.h_leader = ctx.identity
        self.h_multiplicity = 1

    def refresh(self, ctx: ProcessContext) -> None:
        trusted = ctx.detector(self.source_detector).h_trusted
        if not trusted.is_empty():
            self.h_leader = trusted.min_identity()
            self.h_multiplicity = trusted.multiplicity(self.h_leader)
        if self.record_outputs:
            ctx.record(KEYS.H_LEADER, self.h_leader)
            ctx.record(KEYS.H_MULTIPLICITY, self.h_multiplicity)

    def describe(self) -> str:
        return "Observation-1 ◇HP→HΩ"
