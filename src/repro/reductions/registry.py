"""The Figure 5 relation graph between failure-detector classes.

Nodes are :class:`~repro.detectors.classes.DetectorClass` members; a directed
edge ``X → X′`` means "class X is stronger than class X′ in the given system
model" — i.e. a detector of class X′ can be emulated from any detector of
class X.  Edges carry the system model in which the relation holds and the
paper item (theorem, lemma, observation, or prior work) establishing it.

The graph lets experiments ask reachability questions ("can HΩ be obtained
from AP in an anonymous asynchronous system?") and lets E3 verify that every
edge the paper proves is backed by a working reduction in this code base.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..detectors.classes import DetectorClass

__all__ = ["Relation", "paper_relations", "relation_graph", "is_stronger", "equivalent_classes"]

#: Marker for relations that hold in any of the models considered.
ANY_MODEL = "any"


@dataclass(frozen=True)
class Relation:
    """One "stronger than" edge of Figure 5."""

    source: DetectorClass
    target: DetectorClass
    model: str
    established_by: str
    implemented_by: str | None = None


def paper_relations() -> tuple[Relation, ...]:
    """All the relations shown in (or trivially implied by) Figure 5."""
    C = DetectorClass
    return (
        # --- Relations proven in this paper -------------------------------
        Relation(C.SIGMA, C.H_SIGMA, "AS", "Theorem 1 (Figures 1 and 2)",
                 "repro.reductions.SigmaToHSigmaUnknownMembership"),
        Relation(C.H_SIGMA, C.SIGMA, "AS", "Theorem 2 (Figure 4)",
                 "repro.reductions.HSigmaToSigma"),
        Relation(C.A_SIGMA, C.H_SIGMA, "AAS", "Theorem 3",
                 "repro.reductions.ASigmaToHSigma"),
        Relation(C.AP, C.DIAMOND_HP, "AAS", "Lemma 2 / Theorem 4",
                 "repro.reductions.APToDiamondHP"),
        Relation(C.AP, C.H_SIGMA, "AAS", "Lemma 3 / Theorem 4",
                 "repro.reductions.APToHSigma"),
        Relation(C.DIAMOND_HP, C.H_OMEGA, ANY_MODEL, "Observation 1",
                 "repro.reductions.DiamondHPToHOmega"),
        # --- Relations from Bonnet & Raynal recalled by the paper ---------
        Relation(C.SIGMA, C.A_SIGMA, "AS", "Bonnet & Raynal [6]", None),
        Relation(C.A_SIGMA, C.SIGMA, "AS", "Bonnet & Raynal [6]", None),
        Relation(C.AP, C.A_SIGMA, "AAS", "Bonnet & Raynal [6]", None),
        # --- Trivial relations (dotted arrows) -----------------------------
        Relation(C.P, C.DIAMOND_P, ANY_MODEL, "trivial (P is stronger than ◇P̄)", None),
        Relation(C.DIAMOND_P, C.OMEGA, "AS", "trivial (leader = min trusted id)", None),
        Relation(C.DIAMOND_P, C.DIAMOND_HP, "AS",
                 "trivial (with unique ids a set is a multiset)", None),
        Relation(C.DIAMOND_HP, C.DIAMOND_P, "AS",
                 "trivial (with unique ids a multiset is a set)", None),
        Relation(C.H_OMEGA, C.OMEGA, "AS",
                 "trivial (with unique ids HΩ and Ω coincide)", None),
        Relation(C.OMEGA, C.H_OMEGA, "AS",
                 "trivial (with unique ids HΩ and Ω coincide)", None),
    )


def relation_graph(*, model: str | None = None) -> nx.DiGraph:
    """Build the relation graph, optionally restricted to one system model.

    Relations tagged ``ANY_MODEL`` are included in every restriction.
    """
    graph = nx.DiGraph()
    for detector_class in DetectorClass:
        graph.add_node(detector_class)
    for relation in paper_relations():
        if model is not None and relation.model not in (model, ANY_MODEL):
            continue
        graph.add_edge(
            relation.source,
            relation.target,
            model=relation.model,
            established_by=relation.established_by,
            implemented_by=relation.implemented_by,
        )
    return graph


def is_stronger(
    source: DetectorClass, target: DetectorClass, *, model: str | None = None
) -> bool:
    """Return ``True`` when ``target`` can be obtained from ``source`` (transitively)."""
    graph = relation_graph(model=model)
    if source == target:
        return True
    return nx.has_path(graph, source, target)


def equivalent_classes(*, model: str | None = None) -> list[frozenset]:
    """Groups of classes that are mutually obtainable in the given model.

    In ``AS`` (unique identifiers) this recovers Corollary 1: Σ, HΣ, and AΣ
    form one equivalence class.
    """
    graph = relation_graph(model=model)
    components = nx.strongly_connected_components(graph)
    return [frozenset(component) for component in components if len(component) > 1]
