"""Theorem 1: building HΣ from Σ in a system with unique identifiers.

Two variants, exactly as in the paper:

* **Figure 1** (:class:`SigmaToHSigmaWithMembership`): the membership
  ``I(Π)`` is known initially, so ``h_labels`` can be set once to every
  sub-multiset of ``I(Π)`` containing the process's own identifier and never
  changed.  No communication is needed.
* **Figure 2** (:class:`SigmaToHSigmaUnknownMembership`): the membership is
  learned by exchanging ``IDENT`` messages; ``h_labels`` is recomputed as the
  identifiers become known, and therefore only ever grows.

In both variants the quorum pairs are ``(q, q)`` where ``q`` is the current
value of the underlying Σ detector's ``trusted`` set.
"""

from __future__ import annotations

from ..detectors.base import OutputKeys
from ..detectors.views import HSigmaView
from ..errors import ReductionError
from ..identity import IdentityMultiset
from ..sim.message import Message
from ..sim.process import ProcessContext
from .base import PeriodicReductionProgram

__all__ = ["SigmaToHSigmaWithMembership", "SigmaToHSigmaUnknownMembership"]

KEYS = OutputKeys()


class _SigmaToHSigmaBase(PeriodicReductionProgram):
    """Shared state and recording logic of the two Figure 1/2 variants."""

    def __init__(self, *, source_detector: str = "Sigma", **kwargs) -> None:
        super().__init__(source_detector=source_detector, **kwargs)
        self.h_labels: frozenset = frozenset()
        self.h_quora: frozenset = frozenset()

    def emulated_view(self) -> HSigmaView:
        return HSigmaView(lambda: self.h_quora, lambda: self.h_labels)

    def _append_quorum_from_sigma(self, ctx: ProcessContext) -> None:
        trusted = ctx.detector(self.source_detector).trusted
        quorum = IdentityMultiset(trusted)
        if len(quorum.support()) != len(quorum):
            raise ReductionError(
                "the Σ → HΣ transformation is only defined for systems with unique "
                f"identifiers; the Σ quorum {sorted(map(repr, trusted))} has homonyms"
            )
        if not quorum.is_empty():
            self.h_quora = self.h_quora | {(quorum, quorum)}

    def _record(self, ctx: ProcessContext) -> None:
        if self.record_outputs:
            ctx.record(KEYS.H_QUORA, self.h_quora)
            ctx.record(KEYS.H_LABELS, self.h_labels)


class SigmaToHSigmaWithMembership(_SigmaToHSigmaBase):
    """Figure 1: the membership ``I(Π)`` is known initially."""

    def __init__(self, membership_identities: IdentityMultiset, **kwargs) -> None:
        super().__init__(**kwargs)
        if len(membership_identities.support()) != len(membership_identities):
            raise ReductionError(
                "Figure 1 is only defined for systems with unique identifiers"
            )
        self._membership_identities = membership_identities

    def on_setup(self, ctx: ProcessContext) -> None:
        # Line 2: h_labels ← {s : (s ⊆ I(Π)) ∧ (id(p) ∈ s)}, fixed forever.
        self.h_labels = frozenset(
            self._membership_identities.sub_multisets_containing(ctx.identity)
        )

    def refresh(self, ctx: ProcessContext) -> None:
        self._append_quorum_from_sigma(ctx)
        self._record(ctx)

    def describe(self) -> str:
        return "Figure-1 Σ→HΣ (known membership)"


class SigmaToHSigmaUnknownMembership(_SigmaToHSigmaBase):
    """Figure 2: the membership is learned through ``IDENT`` broadcasts."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._mship: set = set()

    def on_setup(self, ctx: ProcessContext) -> None:
        ctx.on("IDENT_SIGMA", lambda msg: self._on_ident(ctx, msg))

    def refresh(self, ctx: ProcessContext) -> None:
        # Task T1: broadcast one's identifier and fold the Σ quorum into h_quora.
        ctx.broadcast("IDENT_SIGMA", identity=ctx.identity)
        self._append_quorum_from_sigma(ctx)
        self._record(ctx)

    def _on_ident(self, ctx: ProcessContext, message: Message) -> None:
        # Task T2: learn an identifier and rebuild h_labels from the known membership.
        identity = message["identity"]
        if identity in self._mship:
            return
        self._mship.add(identity)
        known = IdentityMultiset(self._mship)
        self.h_labels = frozenset(known.sub_multisets_containing(ctx.identity))
        self._record(ctx)

    def describe(self) -> str:
        return "Figure-2 Σ→HΣ (unknown membership)"
