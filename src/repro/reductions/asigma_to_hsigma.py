"""Theorem 3: building HΣ from AΣ in ``AAS[∅]`` without communication.

In an anonymous system every process carries the default identifier ``⊥``.
For each pair ``(x, y)`` of the AΣ detector, the reduction inserts label ``x``
into ``h_labels`` and the pair ``(x, ⊥^y)`` into ``h_quora`` (replacing any
previous pair with the same label — AΣ monotonicity guarantees the new ``y``
is no larger, so the HΣ monotonicity requirement ``m' ⊆ m`` is preserved).
"""

from __future__ import annotations

from ..detectors.base import OutputKeys
from ..detectors.views import HSigmaView
from ..identity import ANONYMOUS_IDENTITY, IdentityMultiset
from ..sim.process import ProcessContext
from .base import PeriodicReductionProgram

__all__ = ["ASigmaToHSigma"]

KEYS = OutputKeys()


class ASigmaToHSigma(PeriodicReductionProgram):
    """The Theorem 3 transformation (code for one process)."""

    def __init__(
        self,
        *,
        source_detector: str = "ASigma",
        default_identity=ANONYMOUS_IDENTITY,
        **kwargs,
    ) -> None:
        super().__init__(source_detector=source_detector, **kwargs)
        self._default_identity = default_identity
        self.h_labels: frozenset = frozenset()
        self._quora_by_label: dict = {}

    @property
    def h_quora(self) -> frozenset:
        """The current emulated ``h_quora`` set of ``(label, multiset)`` pairs."""
        return frozenset(self._quora_by_label.items())

    def emulated_view(self) -> HSigmaView:
        return HSigmaView(lambda: self.h_quora, lambda: self.h_labels)

    def refresh(self, ctx: ProcessContext) -> None:
        pairs = ctx.detector(self.source_detector).a_sigma
        for label, size in pairs:
            self.h_labels = self.h_labels | {label}
            self._quora_by_label[label] = IdentityMultiset.uniform(
                self._default_identity, size
            )
        if self.record_outputs:
            ctx.record(KEYS.H_QUORA, self.h_quora)
            ctx.record(KEYS.H_LABELS, self.h_labels)

    def describe(self) -> str:
        return "Theorem-3 AΣ→HΣ"
