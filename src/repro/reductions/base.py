"""Common machinery for the reduction programs.

All reductions share the same shape: they periodically query the source
detector (attached to the process under a configurable name), update the
emulated target variables, record them under the standard trace keys, and
optionally expose the emulated detector under a new name for co-located
programs.  The period plays the role of the paper's "repeat forever" loop
executed at a bounded (but possibly unknown) step speed.
"""

from __future__ import annotations

from ..sim.process import ProcessContext, ProcessProgram

__all__ = ["PeriodicReductionProgram"]


class PeriodicReductionProgram(ProcessProgram):
    """Base class for reductions driven by a periodic local task."""

    def __init__(
        self,
        *,
        source_detector: str,
        period: float = 1.0,
        record_outputs: bool = True,
        emulated_name: str | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError("the reduction period must be positive")
        self.source_detector = source_detector
        self.period = period
        self.record_outputs = record_outputs
        self.emulated_name = emulated_name

    # Subclasses implement these three hooks. ---------------------------------
    def on_setup(self, ctx: ProcessContext) -> None:
        """Register handlers / initialise state.  Called once at start."""

    def refresh(self, ctx: ProcessContext) -> None:
        """One iteration of the emulation loop (query source, update target)."""
        raise NotImplementedError

    def emulated_view(self):
        """The view of the emulated detector (or ``None`` when not applicable)."""
        return None

    # Wiring -------------------------------------------------------------------
    def setup(self, ctx: ProcessContext) -> None:
        self.on_setup(ctx)
        view = self.emulated_view()
        if self.emulated_name is not None and view is not None:
            ctx.attach_detector(self.emulated_name, view)
        ctx.spawn(lambda: self._refresh_loop(ctx), name=f"{type(self).__name__}-loop")

    def _refresh_loop(self, ctx: ProcessContext):
        while True:
            self.refresh(ctx)
            yield ctx.sleep(self.period)
